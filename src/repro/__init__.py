"""repro — reproduction of Pang & Tan, *Authenticating Query Results in
Edge Computing* (ICDE 2004).

The package implements the paper's Verifiable B-tree (VB-tree) and the
full stack around it:

* :mod:`repro.crypto` — hashes, the commutative combinator, RSA signing.
* :mod:`repro.db` — a miniature relational engine (tables, B+-tree,
  executor, materialized views, 2PL locking).
* :mod:`repro.core` — the VB-tree, verification objects, client-side
  verification, and authenticated updates.
* :mod:`repro.baselines` — the paper's Naive scheme and a Devanbu-style
  Merkle-tree baseline.
* :mod:`repro.edge` — central server / edge server / client simulation
  with adversaries and replication.
* :mod:`repro.sql` — a small SQL front-end.
* :mod:`repro.analysis` — the closed-form cost models of Section 4
  (these regenerate Figures 8-13).
* :mod:`repro.workloads` — synthetic data and query generators.

Quickstart (see ``examples/quickstart.py`` for the narrated version)::

    from repro import quick_setup

    central, edge, client = quick_setup(rows=1000)
    response = edge.range_query("items", low=100, high=120)
    verdict = client.verify(response)
    assert verdict.ok
"""

from repro._version import __version__
from repro.quickstart import quick_setup

__all__ = ["__version__", "quick_setup"]
