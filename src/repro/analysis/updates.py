"""Update cost models — Section 4.4, formulas (11) and (12).

**Insert** (formula 11).  The central server hashes the ``N_c``
attribute values, combines them into the tuple digest (``N_c - 1``
folds), then folds the tuple digest into each of the ``H_vb`` node
digests on the root-to-leaf path (one ``Cost_c`` each under the
commutative scheme).  Every modified digest must be re-signed:
``N_c`` attribute signatures + 1 tuple signature + ``H_vb`` node
signatures.

**Delete** (formula 12).  A contiguous range of ``Q_r`` tuples empties
out the interior of its enveloping subtree (height ``H_env``) and
leaves partial nodes at the top/left/right boundaries — at most
``2 H_env + 1`` nodes with up to ``f_vb - 1`` children each, all of
whose digests must be *recomputed* (the exponent fold cannot be
reversed).  The ``H_vb - H_env`` nodes above the envelope recompute
from up to ``f_vb`` children each.  The paper notes node merges are
rare (lazy deletion per Johnson & Shasha [9]) and excludes them.

The paper gives the formulas but plots no figure; the update bench
generates the table the formulas imply and cross-checks the measured
system against the shapes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.params import Parameters

__all__ = [
    "UpdateCost",
    "insert_cost",
    "delete_cost",
    "delete_series",
]


@dataclass(frozen=True)
class UpdateCost:
    """Operation counts and weighted total for one update."""

    hashes: int
    combines: int
    signs: int
    total: float


def insert_cost(params: Parameters, include_signing: bool = True) -> UpdateCost:
    """Formula (11): cost of inserting one tuple."""
    height = params.vbtree_geometry().height_for(params.num_rows)
    hashes = params.num_cols
    combines = (params.num_cols - 1) + height
    signs = (params.num_cols + 1 + height) if include_signing else 0
    total = (
        hashes * params.cost_hash
        + combines * params.cost_combine
        + signs * params.cost_sign
    )
    return UpdateCost(hashes=hashes, combines=combines, signs=signs, total=total)


def delete_cost(
    params: Parameters,
    deleted_rows: int,
    include_signing: bool = True,
) -> UpdateCost:
    """Formula (12): cost of deleting ``deleted_rows`` contiguous tuples."""
    geometry = params.vbtree_geometry()
    fanout = geometry.internal_fanout()
    height = geometry.height_for(params.num_rows)
    h_env = geometry.envelope_height_for(deleted_rows)
    boundary_nodes = 2 * h_env + 1
    combines = boundary_nodes * (fanout - 1) + (height - h_env) * fanout
    signs = (boundary_nodes + (height - h_env)) if include_signing else 0
    total = combines * params.cost_combine + signs * params.cost_sign
    return UpdateCost(hashes=0, combines=combines, signs=signs, total=total)


def delete_series(
    params: Parameters | None = None,
    deleted_row_counts: Sequence[int] = (1, 10, 100, 1_000, 10_000, 100_000),
) -> list[tuple[int, float, float]]:
    """(Q_r deleted, delete cost, insert cost for reference) — the
    Section 4.4 comparison the paper describes in prose."""
    params = params or Parameters()
    ins = insert_cost(params).total
    return [
        (n, delete_cost(params, n).total, ins) for n in deleted_row_counts
    ]
