"""Communication cost models — Section 4.2, Figures 10 and 11.

**VB-tree** (formula 9).  The edge server ships, per query:

* the result tuples themselves — ``Q_r * Q_c * |A|`` bytes;
* ``D_P`` — one signed digest per filtered attribute per result tuple:
  ``Q_r * (N_c - Q_c)`` digests (Lemma 2);
* ``D_S`` — at most ``f_vb - 1`` digests in each of the top node and the
  leftmost/rightmost nodes at every level of the enveloping subtree,
  i.e. ``(2 * H_env - 1) * (f_vb - 1)`` digests for a contiguous result
  in a fully packed tree (Section 4.2);
* ``D_N`` — the one signed digest of the envelope's top node.

**Naive** (appendix).  Per result tuple: the tuple's signed digest, the
returned attribute values, and one signed digest per filtered
attribute::

    C = Q_r * ( |D| + Q_c*|A| + (N_c - Q_c)*|D| )

The difference is ``Q_r * |D|`` (Naive's per-tuple signatures) minus the
VB-tree's envelope digests — which is why VB-tree wins at every
selectivity and the gap grows linearly (Figure 10), and why the curves
converge *relatively* but not absolutely as attributes grow
(Figure 11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.params import Parameters

__all__ = [
    "CommCost",
    "vbtree_comm_cost",
    "naive_comm_cost",
    "fig10_series",
    "fig11_series",
    "DEFAULT_SELECTIVITIES",
]

#: Selectivity sweep used by Figures 10 and 12 (0..100 %).
DEFAULT_SELECTIVITIES = tuple(s / 100 for s in range(0, 101, 5))


@dataclass(frozen=True)
class CommCost:
    """Byte breakdown of one scheme's response."""

    data_bytes: float
    dp_bytes: float
    ds_bytes: float
    dn_bytes: float
    per_tuple_sig_bytes: float = 0.0

    @property
    def total(self) -> float:
        """Total bytes shipped."""
        return (
            self.data_bytes
            + self.dp_bytes
            + self.ds_bytes
            + self.dn_bytes
            + self.per_tuple_sig_bytes
        )


def envelope_digests(params: Parameters, result_rows: int) -> int:
    """``|D_S|`` upper bound: ``(2 H_env - 1)(f_vb - 1)`` (Section 4.2)."""
    if result_rows <= 0:
        return 0
    geometry = params.vbtree_geometry()
    h_env = geometry.envelope_height_for(result_rows)
    fanout = geometry.internal_fanout()
    return (2 * h_env - 1) * (fanout - 1)


def vbtree_comm_cost(params: Parameters, selectivity: float) -> CommCost:
    """Formula (9): VB-tree response bytes at a selectivity factor."""
    qr = params.result_rows(selectivity)
    data = qr * params.query_cols * params.attr_size
    dp = qr * (params.num_cols - params.query_cols) * params.digest_len
    ds = envelope_digests(params, qr) * params.digest_len
    dn = params.digest_len if qr > 0 else params.digest_len  # D_N always ships
    return CommCost(data_bytes=data, dp_bytes=dp, ds_bytes=ds, dn_bytes=dn)


def naive_comm_cost(params: Parameters, selectivity: float) -> CommCost:
    """Appendix formula: Naive response bytes at a selectivity factor."""
    qr = params.result_rows(selectivity)
    data = qr * params.query_cols * params.attr_size
    dp = qr * (params.num_cols - params.query_cols) * params.digest_len
    sigs = qr * params.digest_len
    return CommCost(
        data_bytes=data,
        dp_bytes=dp,
        ds_bytes=0.0,
        dn_bytes=0.0,
        per_tuple_sig_bytes=sigs,
    )


def fig10_series(
    query_cols: int,
    params: Parameters | None = None,
    selectivities: Sequence[float] = DEFAULT_SELECTIVITIES,
) -> list[tuple[float, float, float]]:
    """Figure 10 (a/b/c for ``query_cols`` in {2, 5, 8}):
    (selectivity %, Naive bytes, VB-tree bytes)."""
    params = (params or Parameters()).with_(query_cols=query_cols)
    return [
        (
            sel * 100,
            naive_comm_cost(params, sel).total,
            vbtree_comm_cost(params, sel).total,
        )
        for sel in selectivities
    ]


# Default attrFactor sweep, evaluated once (never mutated).
_ATTR_FACTORS = tuple(range(0, 7))


def fig11_series(
    params: Parameters | None = None,
    attr_factors: Sequence[float] = _ATTR_FACTORS,
    selectivities: Sequence[float] = (0.2, 0.8),
) -> list[tuple[float, dict[str, float]]]:
    """Figure 11: attribute size = ``attrFactor * |D|``; full projection
    (``Q_c = N_c``).

    Returns:
        ``(attr_factor, {"naive(20%)": ..., "vbtree(20%)": ..., ...})``
        per sweep point.
    """
    base = params or Parameters()
    rows = []
    for factor in attr_factors:
        p = base.with_(
            attr_size=factor * base.digest_len, query_cols=base.num_cols
        )
        entry: dict[str, float] = {}
        for sel in selectivities:
            label = f"{round(sel * 100)}%"
            entry[f"naive({label})"] = naive_comm_cost(p, sel).total
            entry[f"vbtree({label})"] = vbtree_comm_cost(p, sel).total
        rows.append((float(factor), entry))
    return rows
