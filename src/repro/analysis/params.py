"""Table 1 — the parameters of the paper's analytical evaluation.

All cost formulas in :mod:`repro.analysis` take a :class:`Parameters`
instance; the defaults reproduce the paper's settings, and the benches
sweep individual fields exactly as the figures do.

Cost units follow Section 4.3: ``Cost_a`` (deriving one attribute
digest) is the unit; ``Cost_c`` (combining two digests) is ``Cost_a /
ratio`` with ratio = 10 (Table 1's last row); ``Cost_v`` (decrypting a
signature) is ``X * Cost_a`` with X swept over {5, 10, 100} in
Figure 12; ``Cost_s`` (generating a signature) defaults to 100x a
verification, the hash : verify : sign ≈ 1 : 100 : 10000 proportion the
paper cites from Rivest & Shamir [15].
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro import constants
from repro.db.page import PageGeometry

__all__ = ["Parameters"]


@dataclass(frozen=True)
class Parameters:
    """The paper's Table 1, as a value object.

    Attributes:
        digest_len: ``|D|`` signed digest length (bytes).
        key_len: ``|K|`` search key length (bytes).
        pointer_len: ``|P|`` node pointer length (bytes).
        block_size: ``|B|`` block/node size (bytes).
        num_rows: ``N_r`` tuples in the table.
        num_cols: ``N_c`` attributes per tuple.
        query_cols: ``Q_c`` attributes in the query result.
        attr_size: ``|A_i|`` average attribute size (bytes).
        cost_hash: ``Cost_a`` — cost of one attribute digest (the unit).
        hash_combine_ratio: ``Cost_a / Cost_c`` (Table 1: 10).
        x_ratio: ``X = Cost_v / Cost_a`` (Figure 12: 5, 10, 100).
        sign_verify_ratio: ``Cost_s / Cost_v`` (paper cites ~100).
    """

    digest_len: int = constants.DIGEST_LEN
    key_len: int = constants.KEY_LEN
    pointer_len: int = constants.POINTER_LEN
    block_size: int = constants.BLOCK_SIZE
    num_rows: int = constants.NUM_ROWS
    num_cols: int = constants.NUM_COLS
    query_cols: int = constants.QUERY_COLS
    attr_size: float = constants.ATTR_SIZE
    cost_hash: float = 1.0
    hash_combine_ratio: float = constants.COST_RATIO_ATTR_TO_COMBINE
    x_ratio: float = constants.DEFAULT_X
    sign_verify_ratio: float = 100.0

    # ------------------------------------------------------------------
    # Derived cost units
    # ------------------------------------------------------------------

    @property
    def cost_combine(self) -> float:
        """``Cost_c`` in units of ``Cost_a``."""
        return self.cost_hash / self.hash_combine_ratio

    @property
    def cost_verify(self) -> float:
        """``Cost_v`` in units of ``Cost_a``."""
        return self.x_ratio * self.cost_hash

    @property
    def cost_sign(self) -> float:
        """``Cost_s`` in units of ``Cost_a``."""
        return self.sign_verify_ratio * self.cost_verify

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    def btree_geometry(self) -> PageGeometry:
        """Plain B-tree page geometry (no digests)."""
        return PageGeometry(
            block_size=self.block_size,
            key_len=self.key_len,
            pointer_len=self.pointer_len,
            digest_len=0,
        )

    def vbtree_geometry(self) -> PageGeometry:
        """VB-tree page geometry (one signed digest per entry)."""
        return PageGeometry(
            block_size=self.block_size,
            key_len=self.key_len,
            pointer_len=self.pointer_len,
            digest_len=self.digest_len,
        )

    def result_rows(self, selectivity: float) -> int:
        """``Q_r`` for a selectivity factor in [0, 1]."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity out of [0,1]: {selectivity}")
        return round(self.num_rows * selectivity)

    def with_(self, **changes: Any) -> "Parameters":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **changes)
