"""Storage cost models — Section 4.1, Figures 8 and 9.

Fan-out (formula 6 and its B-tree counterpart) and fully-packed tree
heights (formula 7) come straight from the shared
:class:`~repro.db.page.PageGeometry`; this module adds the table-level
overheads and the figure sweeps."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.params import Parameters

__all__ = [
    "StorageCosts",
    "storage_costs",
    "fig8_series",
    "fig9_series",
]


@dataclass(frozen=True)
class StorageCosts:
    """Storage accounting for one parameter set."""

    table_bytes: int
    table_digest_overhead: int
    btree_fanout: int
    vbtree_fanout: int
    btree_height: int
    vbtree_height: int
    btree_nodes: int
    vbtree_nodes: int
    btree_index_bytes: int
    vbtree_index_bytes: int
    #: Extra bytes per VB-tree node vs B-tree (``f_vb * |D|``).
    node_overhead_bytes: int


def _node_count(num_rows: int, leaf_capacity: int, fanout: int) -> int:
    """Nodes of a fully packed tree with the given capacities."""
    if num_rows == 0:
        return 1
    level = math.ceil(num_rows / leaf_capacity)
    total = level
    while level > 1:
        level = math.ceil(level / fanout)
        total += level
    return total


def storage_costs(params: Parameters) -> StorageCosts:
    """All Section 4.1 storage quantities for ``params``.

    * Base-table digest overhead: one signed digest per attribute —
      ``N_r * N_c * |D|`` bytes.
    * Index sizes: node count x block size for fully packed trees.
    """
    b = params.btree_geometry()
    vb = params.vbtree_geometry()
    table_bytes = round(params.num_rows * params.num_cols * params.attr_size)
    overhead = params.num_rows * params.num_cols * params.digest_len
    b_nodes = _node_count(params.num_rows, b.leaf_capacity(), b.internal_fanout())
    vb_nodes = _node_count(
        params.num_rows, vb.leaf_capacity(), vb.internal_fanout()
    )
    return StorageCosts(
        table_bytes=table_bytes,
        table_digest_overhead=overhead,
        btree_fanout=b.internal_fanout(),
        vbtree_fanout=vb.internal_fanout(),
        btree_height=b.height_for(params.num_rows),
        vbtree_height=vb.height_for(params.num_rows),
        btree_nodes=b_nodes,
        vbtree_nodes=vb_nodes,
        btree_index_bytes=b_nodes * params.block_size,
        vbtree_index_bytes=vb_nodes * params.block_size,
        node_overhead_bytes=vb.internal_fanout() * params.digest_len,
    )


# Default figure sweeps, evaluated once (never mutated).
_LOG2_KEY_SIZES = tuple(range(0, 9))


def fig8_series(
    params: Parameters | None = None,
    log2_key_sizes: Sequence[int] = _LOG2_KEY_SIZES,
) -> list[tuple[int, int, int]]:
    """Figure 8: (log2 |K|, B-tree fan-out, VB-tree fan-out)."""
    params = params or Parameters()
    rows = []
    for log_k in log2_key_sizes:
        p = params.with_(key_len=2**log_k)
        rows.append(
            (
                log_k,
                p.btree_geometry().internal_fanout(),
                p.vbtree_geometry().internal_fanout(),
            )
        )
    return rows


def fig9_series(
    params: Parameters | None = None,
    log2_key_sizes: Sequence[int] = _LOG2_KEY_SIZES,
) -> list[tuple[int, int, int]]:
    """Figure 9: (log2 |K|, B-tree height, VB-tree height) at ``N_r``."""
    params = params or Parameters()
    rows = []
    for log_k in log2_key_sizes:
        p = params.with_(key_len=2**log_k)
        rows.append(
            (
                log_k,
                p.btree_geometry().height_for(p.num_rows),
                p.vbtree_geometry().height_for(p.num_rows),
            )
        )
    return rows
