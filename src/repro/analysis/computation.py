"""Client computation cost models — Section 4.3, Figures 12 and 13.

**VB-tree** (formula 10).  The client:

1. hashes the ``Q_r * Q_c`` returned attribute values —
   ``Q_r * Q_c * Cost_a``;
2. decrypts the ``Q_r (N_c - Q_c)`` digests in ``D_P``, the
   ``(2 H_env - 1)(f_vb - 1)`` digests in ``D_S``, and ``D_N`` —
   each at ``Cost_v``;
3. combines everything back into the top digest — ``Cost_c`` per
   pairwise fold: ``N_c - 1`` folds per tuple, plus one fold per tuple
   digest and per ``D_S`` entry into the envelope product, plus the
   final exponentiation.

For large results the hash term dominates and the whole thing is
O(``Q_r``) — the linearity the paper observes.

**Naive** (appendix).  Per result tuple: ``Q_c`` hashes, ``N_c - Q_c``
filtered-attribute decryptions, **one tuple-digest decryption**, and
``N_c - 1`` combines.  The extra ``Q_r * Cost_v`` term is the entire
story of Figure 12: the gap between the schemes is the per-tuple
signature decryption, so it scales with ``X``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.communication import DEFAULT_SELECTIVITIES, envelope_digests
from repro.analysis.params import Parameters

__all__ = [
    "CompCost",
    "vbtree_comp_cost",
    "naive_comp_cost",
    "fig12_series",
    "fig13a_series",
    "fig13b_series",
]


@dataclass(frozen=True)
class CompCost:
    """Operation counts and weighted total for one verification."""

    hashes: int
    decryptions: int
    combines: int
    total: float


def vbtree_comp_cost(params: Parameters, selectivity: float) -> CompCost:
    """Formula (10): client cost of verifying a VB-tree result."""
    qr = params.result_rows(selectivity)
    ds = envelope_digests(params, qr)
    filtered = params.num_cols - params.query_cols
    hashes = qr * params.query_cols
    decryptions = qr * filtered + ds + 1
    combines = (
        qr * (params.num_cols - 1)  # fold attr digests into tuple digests
        + qr                        # fold tuple digests into the envelope
        + ds                        # fold D_S digests into the envelope
        + 1                         # final display exponentiation
    )
    total = (
        hashes * params.cost_hash
        + decryptions * params.cost_verify
        + combines * params.cost_combine
    )
    return CompCost(
        hashes=hashes, decryptions=decryptions, combines=combines, total=total
    )


def naive_comp_cost(params: Parameters, selectivity: float) -> CompCost:
    """Appendix formula: client cost under the Naive scheme."""
    qr = params.result_rows(selectivity)
    filtered = params.num_cols - params.query_cols
    hashes = qr * params.query_cols
    decryptions = qr * filtered + qr  # filtered attrs + one per tuple
    combines = qr * (params.num_cols - 1)
    total = (
        hashes * params.cost_hash
        + decryptions * params.cost_verify
        + combines * params.cost_combine
    )
    return CompCost(
        hashes=hashes, decryptions=decryptions, combines=combines, total=total
    )


def fig12_series(
    x_ratio: float,
    params: Parameters | None = None,
    selectivities: Sequence[float] = DEFAULT_SELECTIVITIES,
) -> list[tuple[float, float, float]]:
    """Figure 12 (a/b/c for X in {5, 10, 100}):
    (selectivity %, Naive Cost_h units, VB-tree Cost_h units)."""
    params = (params or Parameters()).with_(x_ratio=x_ratio)
    return [
        (
            sel * 100,
            naive_comp_cost(params, sel).total,
            vbtree_comp_cost(params, sel).total,
        )
        for sel in selectivities
    ]


def fig13a_series(
    params: Parameters | None = None,
    cost_ratios: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    selectivities: Sequence[float] = (0.2, 0.8),
) -> list[tuple[float, dict[str, float]]]:
    """Figure 13(a): sweep ``Cost_c / Cost_a`` from 0 to 3 at X = 10.

    Returns ``(ratio, {"naive(20%)": ..., "vbtree(20%)": ..., ...})``.
    """
    base = (params or Parameters()).with_(x_ratio=10)
    rows = []
    for ratio in cost_ratios:
        # hash_combine_ratio is Cost_a/Cost_c; the figure sweeps its
        # inverse.  ratio == 0 means free combines.
        p = (
            base.with_(hash_combine_ratio=float("inf"))
            if ratio == 0
            else base.with_(hash_combine_ratio=1.0 / ratio)
        )
        entry: dict[str, float] = {}
        for sel in selectivities:
            label = f"{round(sel * 100)}%"
            entry[f"naive({label})"] = naive_comp_cost(p, sel).total
            entry[f"vbtree({label})"] = vbtree_comp_cost(p, sel).total
        rows.append((ratio, entry))
    return rows


# Default Q_c sweep, evaluated once (never mutated).
_QUERY_COLS_SWEEP = tuple(range(0, 11))


def fig13b_series(
    params: Parameters | None = None,
    query_cols_sweep: Sequence[int] = _QUERY_COLS_SWEEP,
    selectivities: Sequence[float] = (0.2, 0.8),
) -> list[tuple[int, dict[str, float]]]:
    """Figure 13(b): sweep ``Q_c`` from 0 to N_c at X = 10.

    Returns ``(q_c, {"naive(20%)": ..., "vbtree(20%)": ..., ...})``.
    """
    base = (params or Parameters()).with_(x_ratio=10)
    rows = []
    for qc in query_cols_sweep:
        p = base.with_(query_cols=qc)
        entry: dict[str, float] = {}
        for sel in selectivities:
            label = f"{round(sel * 100)}%"
            entry[f"naive({label})"] = naive_comp_cost(p, sel).total
            entry[f"vbtree({label})"] = vbtree_comp_cost(p, sel).total
        rows.append((qc, entry))
    return rows
