"""Closed-form cost models of the paper's Section 4.

These functions regenerate every figure of the evaluation at the
paper's scale (1M rows) — see ``benchmarks/`` for the harnesses that
print the series and EXPERIMENTS.md for paper-vs-ours notes."""

from repro.analysis.communication import (
    CommCost,
    DEFAULT_SELECTIVITIES,
    envelope_digests,
    fig10_series,
    fig11_series,
    naive_comm_cost,
    vbtree_comm_cost,
)
from repro.analysis.computation import (
    CompCost,
    fig12_series,
    fig13a_series,
    fig13b_series,
    naive_comp_cost,
    vbtree_comp_cost,
)
from repro.analysis.params import Parameters
from repro.analysis.storage import (
    StorageCosts,
    fig8_series,
    fig9_series,
    storage_costs,
)
from repro.analysis.updates import (
    UpdateCost,
    delete_cost,
    delete_series,
    insert_cost,
)

__all__ = [
    "CommCost",
    "CompCost",
    "DEFAULT_SELECTIVITIES",
    "Parameters",
    "StorageCosts",
    "UpdateCost",
    "delete_cost",
    "delete_series",
    "envelope_digests",
    "fig10_series",
    "fig11_series",
    "fig12_series",
    "fig13a_series",
    "fig13b_series",
    "fig8_series",
    "fig9_series",
    "insert_cost",
    "naive_comm_cost",
    "naive_comp_cost",
    "storage_costs",
    "vbtree_comm_cost",
    "vbtree_comp_cost",
]
