"""The trusted central DBMS (Figure 2, left).

Owns the master database, the signing key pair, the key ring, and the
VB-trees; applies all updates (only it can sign digests) and replicates
them to edge servers as signed **deltas** over a per-table log
(DESIGN.md section 6): eager mode pushes each delta as it commits, lazy
mode coalesces the pending log into batches on
:meth:`CentralServer.propagate`, and a full snapshot ships only on edge
bootstrap, log gap, or key rotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Optional, Sequence

from repro.constants import RSA_BITS
from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.secondary import SecondaryVBTree
from repro.core.update import AuthenticatedUpdater
from repro.core.vbtree import VBTree
from repro.core.wire import snapshot_to_bytes
from repro.baselines.naive import NaiveStore
from repro.crypto.keyring import KeyRing
from repro.crypto.rsa import RSAKeyPair, generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.mview import MaterializedJoinView
from repro.db.rows import Row
from repro.db.schema import Catalog, TableSchema
from repro.db.table import Table
from repro.db.transactions import TransactionManager
from repro.edge.replication import Replicator
from repro.exceptions import (
    DeltaGapError,
    ReplicaDeltaError,
    ReplicationError,
    SchemaError,
)

__all__ = ["CentralServer", "ReplicationMode", "ClientConfig"]


class ReplicationMode(Enum):
    """How updates reach the edge servers (Section 3.4)."""

    EAGER = "eager"    # push each signed delta per transaction
    LAZY = "lazy"      # deltas accumulate; edges pull coalesced batches


@dataclass(frozen=True)
class ClientConfig:
    """Everything a client needs to verify results from this server."""

    db_name: str
    policy: DigestPolicy
    keyring: KeyRing


class CentralServer:
    """The trusted central DBMS.

    Args:
        db_name: Logical database name (hashed into every digest).
        rsa_bits: Signing key size (512 keeps simulations fast).
        seed: Deterministic key generation seed.
        policy: Digest policy for all VB-trees.
        replication: Eager or lazy replica maintenance.
        enable_naive: Also maintain the Naive baseline's per-tuple
            signature store for every table (needed by the comparison
            benches; costs one extra signature pass per insert).
        max_log_entries: Per-table delta-log retention; edges that fall
            further behind than this resync via full snapshot.
    """

    def __init__(
        self,
        db_name: str,
        rsa_bits: int = RSA_BITS,
        seed: int | None = None,
        policy: DigestPolicy = DigestPolicy.FLATTENED,
        replication: ReplicationMode = ReplicationMode.EAGER,
        enable_naive: bool = False,
        max_log_entries: int = 1024,
    ) -> None:
        self.db_name = db_name
        self.policy = policy
        self.replication = replication
        self.enable_naive = enable_naive
        self.replicator = Replicator(max_log_entries=max_log_entries)
        self.keyring = KeyRing()
        self._keypair: RSAKeyPair = generate_keypair(bits=rsa_bits, seed=seed)
        self.keyring.register(self._keypair.public)
        self._signer = DigestSigner.from_keypair(
            self._keypair, epoch=self.keyring.current_epoch
        )
        self.catalog = Catalog(db_name)
        self.tables: dict[str, Table] = {}
        self.vbtrees: dict[str, VBTree] = {}
        self.naive_stores: dict[str, NaiveStore] = {}
        self.views: dict[str, MaterializedJoinView] = {}
        self._updaters: dict[str, AuthenticatedUpdater] = {}
        self._secondary_of: dict[str, list[str]] = {}
        self.txn_manager = TransactionManager()
        self._edges: list["EdgeServer"] = []

    # ------------------------------------------------------------------
    # Signing plumbing
    # ------------------------------------------------------------------

    def _signing_engine(self) -> SigningDigestEngine:
        engine = DigestEngine(self.db_name, policy=self.policy)
        return SigningDigestEngine(engine, self._signer)

    @property
    def public_key(self):
        """Current public key (current epoch)."""
        return self._keypair.public

    def client_config(self) -> ClientConfig:
        """Bundle of verification parameters for clients."""
        return ClientConfig(
            db_name=self.db_name, policy=self.policy, keyring=self.keyring
        )

    def make_client(self, meter=None):
        """Construct a :class:`~repro.edge.client.Client` wired to this
        server's key ring and digest parameters."""
        from repro.edge.client import Client

        return Client(self.client_config(), meter=meter)

    # ------------------------------------------------------------------
    # Schema / data management
    # ------------------------------------------------------------------

    def create_table(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]] = (),
        fanout_override: int | None = None,
    ) -> Table:
        """Create a base table, build its VB-tree, seed it with rows."""
        self.catalog.register(schema)
        table = Table(schema)
        for values in rows:
            table.insert(values)
        self.tables[schema.name] = table
        vbt = VBTree.build(
            schema,
            table.scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[schema.name] = vbt
        self._updaters[schema.name] = AuthenticatedUpdater(vbt)
        if self.enable_naive:
            self.naive_stores[schema.name] = NaiveStore.build(
                schema, table.scan(), self._signing_engine()
            )
        return table

    def create_join_view(
        self,
        name: str,
        left: str,
        right: str,
        left_column: str,
        right_column: str,
        fanout_override: int | None = None,
    ) -> MaterializedJoinView:
        """Materialize an equi-join and build a VB-tree over it
        (Section 3.3's join strategy)."""
        view = MaterializedJoinView(
            name,
            self._table(left),
            self._table(right),
            left_column,
            right_column,
        )
        self.catalog.register(view.schema)
        self.views[name] = view
        self.tables[name] = view.table
        vbt = VBTree.build(
            view.schema,
            view.table.scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[name] = vbt
        self._updaters[name] = AuthenticatedUpdater(vbt)
        if self.enable_naive:
            self.naive_stores[name] = NaiveStore.build(
                view.schema, view.table.scan(), self._signing_engine()
            )
        return view

    def create_secondary_index(
        self,
        table: str,
        attribute: str,
        fanout_override: int | None = None,
    ) -> str:
        """Build a secondary VB-tree on ``attribute`` (the paper's
        "one or more VB-trees" per table; see
        :mod:`repro.core.secondary`).

        Returns:
            The index name (``<table>__by_<attribute>``), which edge
            servers address via
            :meth:`~repro.edge.edge_server.EdgeServer.secondary_range_query`.
        """
        schema = self.catalog.get(table)
        name = f"{table}__by_{attribute}"
        if name in self.vbtrees:
            raise SchemaError(f"secondary index {name!r} already exists")
        vbt = SecondaryVBTree.build_on(
            schema,
            attribute,
            self._table(table).scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[name] = vbt
        self._updaters[name] = AuthenticatedUpdater(vbt)
        self._secondary_of.setdefault(table, []).append(name)
        self.propagate(name)
        return name

    def secondary_index_name(self, table: str, attribute: str) -> str:
        """Canonical name of a secondary index."""
        return f"{table}__by_{attribute}"

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def _vbtree(self, name: str) -> VBTree:
        try:
            return self.vbtrees[name]
        except KeyError:
            raise SchemaError(f"no VB-tree for {name!r}") from None

    # ------------------------------------------------------------------
    # Updates (Section 3.4 — updates go through the central server)
    # ------------------------------------------------------------------

    def insert(self, table: str, values: Sequence[Any]) -> Row:
        """Insert one row: base table, VB-tree digests, naive store,
        join views, and (eager) replica propagation."""
        tbl = self._table(table)
        row = tbl.insert(values)
        txn = self.txn_manager.begin()
        try:
            self._updaters[table].insert(row, txn=txn)
            txn.commit()
        except Exception:
            txn.abort()
            tbl.delete(row.key)
            raise
        if table in self.naive_stores:
            self.naive_stores[table].add(row)
        for index_name in self._secondary_of.get(table, ()):
            self._updaters[index_name].insert(row)
            self._after_update(index_name)
        self._maintain_views_on_insert(table, row)
        self._after_update(table)
        return row

    def delete(self, table: str, key: Any) -> Row:
        """Delete one row everywhere (table, digests, views, replicas)."""
        tbl = self._table(table)
        txn = self.txn_manager.begin()
        try:
            row = self._updaters[table].delete(key, txn=txn)
            txn.commit()
        except Exception:
            txn.abort()
            raise
        tbl.delete(key)
        if table in self.naive_stores:
            self.naive_stores[table].remove(key)
        for index_name in self._secondary_of.get(table, ()):
            secondary = self.vbtrees[index_name]
            self._updaters[index_name].delete(secondary.key_of(row))
            self._after_update(index_name)
        self._maintain_views_on_delete(table, row)
        self._after_update(table)
        return row

    def _maintain_views_on_insert(self, table: str, row: Row) -> None:
        for view in self.views.values():
            added: list[Row] = []
            if view.left.schema.name == table:
                added = view.on_left_insert(row)
            elif view.right.schema.name == table:
                added = view.on_right_insert(row)
            if added:
                updater = self._updaters[view.name]
                for vrow in added:
                    updater.insert(vrow)
                if view.name in self.naive_stores:
                    for vrow in added:
                        self.naive_stores[view.name].add(vrow)
                self._after_update(view.name)

    def _maintain_views_on_delete(self, table: str, row: Row) -> None:
        for view in self.views.values():
            removed: list[Row] = []
            if view.left.schema.name == table:
                removed = view.on_left_delete(row)
            elif view.right.schema.name == table:
                removed = view.on_right_delete(row)
            if removed:
                updater = self._updaters[view.name]
                for vrow in removed:
                    updater.delete(vrow.key)
                if view.name in self.naive_stores:
                    for vrow in removed:
                        self.naive_stores[view.name].remove(vrow.key)
                self._after_update(view.name)

    # ------------------------------------------------------------------
    # Key rotation (Section 3.4's stale-data defence)
    # ------------------------------------------------------------------

    def rotate_key(self, rsa_bits: int | None = None, seed: int | None = None) -> int:
        """Generate a new key pair, register a new epoch, and re-sign
        every digest.  Edge replicas become stale until propagated.

        Returns:
            The new epoch number.
        """
        bits = rsa_bits or self._keypair.bits
        self._keypair = generate_keypair(bits=bits, seed=seed)
        self.keyring.register(self._keypair.public)
        self._signer = DigestSigner.from_keypair(
            self._keypair, epoch=self.keyring.current_epoch
        )
        for name, vbt in list(self.vbtrees.items()):
            override = (
                vbt.tree.max_children
                if vbt.tree.max_children < vbt.geometry.internal_fanout()
                else None
            )
            if isinstance(vbt, SecondaryVBTree):
                rebuilt: VBTree = SecondaryVBTree.build_on(
                    vbt.schema,
                    vbt.attribute,
                    list(vbt.rows()),
                    self._signing_engine(),
                    fanout_override=override,
                )
            else:
                rebuilt = VBTree.build(
                    vbt.schema,
                    list(vbt.rows()),
                    self._signing_engine(),
                    fanout_override=override,
                )
            rebuilt.version = vbt.version + 1
            self.vbtrees[name] = rebuilt
            self._updaters[name] = AuthenticatedUpdater(rebuilt)
        for name, table in self.tables.items():
            if name in self.naive_stores:
                self.naive_stores[name] = NaiveStore.build(
                    table.schema, table.scan(), self._signing_engine()
                )
        # Every signature in every log entry is now obsolete: consume an
        # LSN barrier per table so laggard edges detect the gap and
        # resync via snapshot (their epoch check catches it too).
        for name in self.vbtrees:
            self.replicator.log_for(name).barrier()
        if self.replication is ReplicationMode.EAGER:
            self.propagate()
        return self.keyring.current_epoch

    # ------------------------------------------------------------------
    # Edge servers & replication
    # ------------------------------------------------------------------

    def spawn_edge_server(self, name: str):
        """Create an edge server, bootstrapping every table's replica
        via a snapshot transfer."""
        from repro.edge.edge_server import EdgeServer

        edge = EdgeServer(name=name, central=self)
        for table in self.vbtrees:
            self._ship_snapshot(edge, table)
        self._edges.append(edge)
        return edge

    def propagate(self, table: str | None = None, force_snapshot: bool = False) -> int:
        """Bring every edge server up to date.

        Edges with pending log entries receive them as one coalesced,
        signed delta batch; edges that cannot catch up from the log
        (no replica yet, log gap, or key rotation) receive a full
        snapshot.  With ``force_snapshot`` every edge receives a
        snapshot regardless — the seed's clone-shipping behaviour, kept
        as the comparison baseline for ``bench_replication``.

        Returns:
            Number of transfers shipped (deltas + snapshots).
        """
        shipped = 0
        names = [table] if table else list(self.vbtrees)
        memo: dict = {}
        for name in names:
            if name not in self.vbtrees:
                raise ReplicationError(f"no VB-tree for {name!r}")
            for edge in self._edges:
                if force_snapshot:
                    self._ship_snapshot(edge, name)
                    shipped += 1
                else:
                    shipped += self._sync_replica(edge, name, memo)
        return shipped

    def _sync_replica(self, edge, table: str, memo: dict | None = None) -> int:
        """Catch one edge's replica of ``table`` up; returns transfers
        shipped (0 when already current).

        ``memo`` caches sealed batch payloads per (table, cursor) for
        the duration of one propagation sweep: edges at the same cursor
        receive byte-identical batches, so the coalesce + signature
        runs once, not once per edge.
        """
        sig_len = self.public_key.signature_len
        needs_snapshot = (
            table not in edge.replicas
            or edge.replica_epochs.get(table) != self.keyring.current_epoch
        )
        if not needs_snapshot:
            cursor = edge.replica_lsns.get(table, 0)
            key = (table, cursor)
            try:
                if memo is not None and key in memo:
                    payload = memo[key]
                else:
                    payload = self.replicator.batch_since(
                        table, cursor, self._signer, sig_len
                    )
                    if memo is not None:
                        memo[key] = payload
            except DeltaGapError:
                needs_snapshot = True
            else:
                if payload is None:
                    return 0
                edge.replication_channel.send(len(payload), kind="delta")
                try:
                    edge.apply_delta(table, payload)
                except ReplicaDeltaError:
                    # The replica rejected or choked on a delta the log
                    # says it should accept — it has diverged (at-rest
                    # tampering, partial batch application, ...).  Heal
                    # it with a full snapshot; one bad edge must never
                    # wedge replication for the others or fail the
                    # central write.  Two transfers went out: the
                    # failed delta and the healing snapshot.
                    self._ship_snapshot(edge, table)
                    return 2
                return 1
        if needs_snapshot:
            self._ship_snapshot(edge, table)
        return 1

    def _ship_snapshot(self, edge, table: str) -> None:
        """Full replica transfer: the bootstrap / gap / rotation path."""
        vbt = self.vbtrees[table]
        naive = self.naive_stores.get(table)
        nbytes = len(snapshot_to_bytes(vbt, self.public_key.signature_len))
        edge.replication_channel.send(nbytes, kind="snapshot")
        edge.receive_replica(
            table,
            vbt.clone(),
            naive.clone() if naive is not None else None,
            lsn=self.replicator.log_for(table).last_lsn,
            epoch=self.keyring.current_epoch,
        )

    def _after_update(self, table: str) -> None:
        """Record every pending delta in the log; push when eager.

        Draining the whole queue matters: one logical update can emit
        several deltas (view maintenance inserts one row per joined
        tuple before this runs once)."""
        for delta in self._updaters[table].take_deltas():
            self.replicator.record(
                table, delta, self._signer, self.public_key.signature_len
            )
        if self.replication is ReplicationMode.EAGER:
            memo: dict = {}
            for edge in self._edges:
                self._sync_replica(edge, table, memo)

    @property
    def edges(self) -> list:
        """Attached edge servers."""
        return list(self._edges)
