"""The trusted central DBMS (Figure 2, left).

Owns the master database, the signing key pair, the key ring, and the
VB-trees; applies all updates (only it can sign digests) and replicates
them to edge servers as signed **deltas** over a per-table log
(DESIGN.md section 6), delivered through the message transport
(DESIGN.md section 7): eager mode pumps the fan-out engine after each
update commits, lazy mode coalesces the pending log into batches on
:meth:`CentralServer.propagate`, and a full snapshot ships only on edge
bootstrap, log gap, key rotation, or divergence healing.

Edge servers are reached *only* through serialized transport frames —
the central server never hands an edge a live object, and an edge holds
no reference back (the paper's trust boundary, now structural).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Sequence

from repro.constants import RSA_BITS
from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.secondary import SecondaryVBTree, secondary_index_name
from repro.core.update import AuthenticatedUpdater
from repro.core.vbtree import VBTree
from repro.baselines.naive import NaiveStore
from repro.crypto.keyring import KeyRing
from repro.crypto.rsa import RSAKeyPair, generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.mview import MaterializedJoinView
from repro.db.rows import Row
from repro.db.schema import Catalog, TableSchema
from repro.db.table import Table
from repro.db.transactions import TransactionManager
from repro.edge.fanout import FanoutEngine
from repro.edge.replication import Replicator
from repro.edge.transport import FaultInjector, InProcessTransport
from repro.exceptions import (
    DuplicateKeyError,
    ReplicationError,
    SchemaError,
)

__all__ = [
    "CentralServer",
    "ReplicationMode",
    "ClientConfig",
    "RemoteEdgeHandle",
]


class ReplicationMode(Enum):
    """How updates reach the edge servers (Section 3.4)."""

    EAGER = "eager"    # pump the fan-out engine per committed update
    LAZY = "lazy"      # deltas accumulate; edges catch up on propagate()


@dataclass(frozen=True)
class ClientConfig:
    """Everything a client needs to verify results from this server."""

    db_name: str
    policy: DigestPolicy
    keyring: KeyRing


@dataclass
class RemoteEdgeHandle:
    """Central-side stand-in for an edge living in another process.

    The central server never holds the remote
    :class:`~repro.edge.edge_server.EdgeServer` object — only its name
    and the transport link the fan-out engine delivers through.
    """

    name: str


class CentralServer:
    """The trusted central DBMS.

    Args:
        db_name: Logical database name (hashed into every digest).
        rsa_bits: Signing key size (512 keeps simulations fast).
        seed: Deterministic key generation seed.
        policy: Digest policy for all VB-trees.
        replication: Eager or lazy replica maintenance.
        enable_naive: Also maintain the Naive baseline's per-tuple
            signature store for every table (needed by the comparison
            benches; costs one extra signature pass per insert).
        max_log_entries: Per-table delta-log retention; edges that fall
            further behind than this resync via full snapshot.
        fanout_window: Initial per-edge bound on unacknowledged
            in-flight replication frames (flow control — see
            :class:`~repro.edge.fanout.FanoutEngine`).
        fanout_workers: Thread-pool size for concurrent per-edge
            delivery; 1 (default) is a deterministic serial sweep.
        fanout_window_min: Adaptive-window floor (see
            :class:`~repro.edge.fanout.AdaptiveWindow`).
        fanout_window_max: Adaptive-window ceiling; ``None`` pins the
            window at ``fanout_window`` — the fixed, deterministic
            default.  Raise it to let fast links grow their pipeline.
        ack_every: Ack-coalescing frame threshold pushed to every edge
            (DESIGN.md section 10).  ``1`` (default) acknowledges every
            replication frame — the exact pre-batching cadence;
            deployments and benches raise it to cut ack traffic (one
            cumulative cursor ack per ``ack_every`` frames).
        ack_bytes: Ack-coalescing byte threshold pushed to every edge.
        shard_id: This server's slot in a sharded central plane
            (see :class:`~repro.edge.sharding.ShardedCentral`); ``-1``
            (default) means standalone — the single-signer deployment,
            wire-compatible with every pre-sharding peer.
    """

    def __init__(
        self,
        db_name: str,
        rsa_bits: int = RSA_BITS,
        seed: int | None = None,
        policy: DigestPolicy = DigestPolicy.FLATTENED,
        replication: ReplicationMode = ReplicationMode.EAGER,
        enable_naive: bool = False,
        max_log_entries: int = 1024,
        fanout_window: int = 8,
        fanout_workers: int = 1,
        fanout_window_min: int = 1,
        fanout_window_max: int | None = None,
        ack_every: int = 1,
        ack_bytes: int = 1 << 18,
        shard_id: int = -1,
    ) -> None:
        self.db_name = db_name
        self.shard_id = shard_id
        self.policy = policy
        self.replication = replication
        self.enable_naive = enable_naive
        self.ack_every = max(1, ack_every)
        self.ack_bytes = max(1, ack_bytes)
        self.replicator = Replicator(max_log_entries=max_log_entries)
        self.keyring = KeyRing()
        self._keypair: RSAKeyPair = generate_keypair(bits=rsa_bits, seed=seed)
        self.keyring.register(self._keypair.public)
        self._signer = DigestSigner.from_keypair(
            self._keypair, epoch=self.keyring.current_epoch
        )
        self.catalog = Catalog(db_name)
        self.tables: dict[str, Table] = {}
        self.vbtrees: dict[str, VBTree] = {}
        self.naive_stores: dict[str, NaiveStore] = {}
        self.views: dict[str, MaterializedJoinView] = {}
        self._updaters: dict[str, AuthenticatedUpdater] = {}
        self._secondary_of: dict[str, list[str]] = {}
        self.txn_manager = TransactionManager()
        self._edges: list = []
        self.fanout = FanoutEngine(
            self,
            window=fanout_window,
            workers=fanout_workers,
            window_min=fanout_window_min,
            window_max=fanout_window_max,
        )

    # ------------------------------------------------------------------
    # Signing plumbing
    # ------------------------------------------------------------------

    def _signing_engine(self) -> SigningDigestEngine:
        engine = DigestEngine(self.db_name, policy=self.policy)
        return SigningDigestEngine(engine, self._signer)

    @property
    def public_key(self):
        """Current public key (current epoch)."""
        return self._keypair.public

    def client_config(self) -> ClientConfig:
        """Bundle of verification parameters for clients."""
        return ClientConfig(
            db_name=self.db_name, policy=self.policy, keyring=self.keyring
        )

    def edge_config(self) -> ClientConfig:
        """Bundle of public parameters an edge server is allowed to
        hold — identical to :meth:`client_config`: edges and clients
        trust exactly the same PKI-distributed verification bundle."""
        return self.client_config()

    def make_client(self, meter=None):
        """Construct a :class:`~repro.edge.client.Client` wired to this
        server's key ring and digest parameters."""
        from repro.edge.client import Client

        return Client(self.client_config(), meter=meter)

    def make_router(
        self,
        edges: Sequence | None = None,
        policy="round_robin",
        channels: Sequence | None = None,
        **kwargs,
    ):
        """A :class:`~repro.edge.router.VerifyingRouter` over in-process
        edge servers, on dedicated query links (never the replication
        links — queries and replication must not share a flow-control
        window).

        Staleness hints are seeded from the fan-out engine's ack-fed
        cursors, so a ``freshest`` router routes sensibly before any
        edge has answered a single query.

        Args:
            edges: Edge servers to route over (default: every attached
                in-process edge).
            policy: Routing policy name or enum.
            channels: Pre-built query channels (overrides ``edges`` —
                the hook for custom per-edge latency models).
            **kwargs: Forwarded to :class:`~repro.edge.router.EdgeRouter`.
        """
        from repro.edge.edge_server import EdgeServer
        from repro.edge.router import (
            EdgeRouter,
            VerifyingRouter,
            in_process_query_channel,
        )

        if channels is None:
            if edges is None:
                edges = [e for e in self._edges if isinstance(e, EdgeServer)]
            if not edges:
                raise ReplicationError(
                    "no in-process edge servers to route over"
                )
            channels = [in_process_query_channel(edge) for edge in edges]
        router = EdgeRouter(channels, policy=policy, **kwargs)
        router.seed_from_fanout(self.fanout)
        return VerifyingRouter(router, self.make_client())

    # ------------------------------------------------------------------
    # Schema / data management
    # ------------------------------------------------------------------

    def create_table(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]] = (),
        fanout_override: int | None = None,
    ) -> Table:
        """Create a base table, build its VB-tree, seed it with rows."""
        self.catalog.register(schema)
        table = Table(schema)
        for values in rows:
            table.insert(values)
        self.tables[schema.name] = table
        vbt = VBTree.build(
            schema,
            table.scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[schema.name] = vbt
        self._updaters[schema.name] = AuthenticatedUpdater(vbt)
        if self.enable_naive:
            self.naive_stores[schema.name] = NaiveStore.build(
                schema, table.scan(), self._signing_engine()
            )
        return table

    def create_join_view(
        self,
        name: str,
        left: str,
        right: str,
        left_column: str,
        right_column: str,
        fanout_override: int | None = None,
    ) -> MaterializedJoinView:
        """Materialize an equi-join and build a VB-tree over it
        (Section 3.3's join strategy)."""
        view = MaterializedJoinView(
            name,
            self._table(left),
            self._table(right),
            left_column,
            right_column,
        )
        self.catalog.register(view.schema)
        self.views[name] = view
        self.tables[name] = view.table
        vbt = VBTree.build(
            view.schema,
            view.table.scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[name] = vbt
        self._updaters[name] = AuthenticatedUpdater(vbt)
        if self.enable_naive:
            self.naive_stores[name] = NaiveStore.build(
                view.schema, view.table.scan(), self._signing_engine()
            )
        return view

    def create_secondary_index(
        self,
        table: str,
        attribute: str,
        fanout_override: int | None = None,
    ) -> str:
        """Build a secondary VB-tree on ``attribute`` (the paper's
        "one or more VB-trees" per table; see
        :mod:`repro.core.secondary`).

        Returns:
            The index name (``<table>__by_<attribute>``), which edge
            servers address via
            :meth:`~repro.edge.edge_server.EdgeServer.secondary_range_query`.
        """
        schema = self.catalog.get(table)
        name = secondary_index_name(table, attribute)
        if name in self.vbtrees:
            raise SchemaError(f"secondary index {name!r} already exists")
        vbt = SecondaryVBTree.build_on(
            schema,
            attribute,
            self._table(table).scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[name] = vbt
        self._updaters[name] = AuthenticatedUpdater(vbt)
        self._secondary_of.setdefault(table, []).append(name)
        self.propagate(name)
        return name

    def secondary_index_name(self, table: str, attribute: str) -> str:
        """Canonical name of a secondary index."""
        return secondary_index_name(table, attribute)

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def _vbtree(self, name: str) -> VBTree:
        try:
            return self.vbtrees[name]
        except KeyError:
            raise SchemaError(f"no VB-tree for {name!r}") from None

    # ------------------------------------------------------------------
    # Updates (Section 3.4 — updates go through the central server)
    #
    # One logical update touches several trees: the base table's
    # VB-tree, every secondary index, and every affected join view.
    # All of them commit under ONE transaction whose locks are acquired
    # up front — a denied lock (or any planning failure) aborts with
    # every tree untouched and nothing in the replication log, so base
    # table and indexes can never come apart.
    # ------------------------------------------------------------------

    def insert(self, table: str, values: Sequence[Any]) -> Row:
        """Insert one row: base table, VB-tree digests, naive store,
        secondary indexes, join views — atomically — then (eager)
        replica propagation."""
        tbl = self._table(table)
        row = Row(tbl.schema, tbl.schema.validate_row(values))
        if row.key in tbl:
            raise DuplicateKeyError(
                f"duplicate key {row.key!r} in table {table!r}"
            )
        txn = self.txn_manager.begin()
        try:
            # Phase 1 — plan + lock every digest path the update needs.
            self._updaters[table].lock_path(
                self.vbtrees[table].key_of(row), txn
            )
            index_names = list(self._secondary_of.get(table, ()))
            for index_name in index_names:
                self._updaters[index_name].lock_path(
                    self.vbtrees[index_name].key_of(row), txn
                )
            view_plan = []
            for view in self.views.values():
                if view.left.schema.name == table:
                    joined = view.peek_left_insert(row)
                elif view.right.schema.name == table:
                    joined = view.peek_right_insert(row)
                else:
                    continue
                if not joined:
                    continue
                for key in view.next_keys(len(joined)):
                    self._updaters[view.name].lock_path(key, txn)
                view_plan.append((view, joined))
        except Exception:
            txn.abort()
            raise
        affected = [table, *index_names]
        try:
            # Phase 2 — mutate everything under the held locks.
            tbl.insert(row)
            self._updaters[table].insert(row, txn=txn)
            if table in self.naive_stores:
                self.naive_stores[table].add(row)
            for index_name in index_names:
                self._updaters[index_name].insert(row, txn=txn)
            for view, joined in view_plan:
                updater = self._updaters[view.name]
                for joined_values in joined:
                    vrow = view.materialize(joined_values)
                    updater.insert(vrow, txn=txn)
                    if view.name in self.naive_stores:
                        self.naive_stores[view.name].add(vrow)
                affected.append(view.name)
            txn.commit()
        except BaseException:
            txn.abort()
            raise
        for name in affected:
            self._record_deltas(name)
        self._replicate(affected)
        return row

    def delete(self, table: str, key: Any) -> Row:
        """Delete one row everywhere (table, digests, indexes, views)
        atomically, then (eager) replica propagation."""
        tbl = self._table(table)
        row = tbl.get(key)  # KeyNotFoundError before anything mutates
        txn = self.txn_manager.begin()
        try:
            self._updaters[table].lock_path(
                self.vbtrees[table].key_of(row), txn
            )
            index_names = list(self._secondary_of.get(table, ()))
            for index_name in index_names:
                self._updaters[index_name].lock_path(
                    self.vbtrees[index_name].key_of(row), txn
                )
            view_plan = []
            for view in self.views.values():
                if view.left.schema.name == table:
                    removed = view.peek_left_delete(row)
                elif view.right.schema.name == table:
                    removed = view.peek_right_delete(row)
                else:
                    continue
                if not removed:
                    continue
                for vrow in removed:
                    self._updaters[view.name].lock_path(vrow.key, txn)
                view_plan.append((view, removed))
        except Exception:
            txn.abort()
            raise
        affected = [table, *index_names]
        try:
            self._updaters[table].delete(key, txn=txn)
            tbl.delete(key)
            if table in self.naive_stores:
                self.naive_stores[table].remove(key)
            for index_name in index_names:
                secondary = self.vbtrees[index_name]
                self._updaters[index_name].delete(secondary.key_of(row), txn=txn)
            for view, removed in view_plan:
                updater = self._updaters[view.name]
                view.drop_rows(removed)
                for vrow in removed:
                    updater.delete(vrow.key, txn=txn)
                    if view.name in self.naive_stores:
                        self.naive_stores[view.name].remove(vrow.key)
                affected.append(view.name)
            txn.commit()
        except BaseException:
            txn.abort()
            raise
        for name in affected:
            self._record_deltas(name)
        self._replicate(affected)
        return row

    def _record_deltas(self, table: str) -> None:
        """Move every pending delta the updater emitted into the log.

        Draining the whole queue matters: one logical update can emit
        several deltas (view maintenance inserts one row per joined
        tuple)."""
        for delta in self._updaters[table].take_deltas():
            self.replicator.record(
                table, delta, self._signer, self.public_key.signature_len
            )

    def _replicate(self, tables: Sequence[str] | None = None) -> None:
        """Eagerly pump the fan-out engine for ``tables``.

        The write path only *enqueues* (records deltas in the log); this
        pump delivers them — and heals diverged replicas via snapshot —
        after the update has committed, so a wedged edge can never fail
        or delay the central write."""
        if self.replication is ReplicationMode.EAGER:
            self.fanout.pump(tables)

    # ------------------------------------------------------------------
    # Key rotation (Section 3.4's stale-data defence)
    # ------------------------------------------------------------------

    def rotate_key(self, rsa_bits: int | None = None, seed: int | None = None) -> int:
        """Generate a new key pair, register a new epoch, and re-sign
        every digest.  Edge replicas become stale until propagated.

        Returns:
            The new epoch number.
        """
        bits = rsa_bits or self._keypair.bits
        self._keypair = generate_keypair(bits=bits, seed=seed)
        self.keyring.register(self._keypair.public)
        self._signer = DigestSigner.from_keypair(
            self._keypair, epoch=self.keyring.current_epoch
        )
        for name, vbt in list(self.vbtrees.items()):
            override = (
                vbt.tree.max_children
                if vbt.tree.max_children < vbt.geometry.internal_fanout()
                else None
            )
            if isinstance(vbt, SecondaryVBTree):
                rebuilt: VBTree = SecondaryVBTree.build_on(
                    vbt.schema,
                    vbt.attribute,
                    list(vbt.rows()),
                    self._signing_engine(),
                    fanout_override=override,
                )
            else:
                rebuilt = VBTree.build(
                    vbt.schema,
                    list(vbt.rows()),
                    self._signing_engine(),
                    fanout_override=override,
                )
            rebuilt.version = vbt.version + 1
            self.vbtrees[name] = rebuilt
            self._updaters[name] = AuthenticatedUpdater(rebuilt)
        for name, table in self.tables.items():
            if name in self.naive_stores:
                self.naive_stores[name] = NaiveStore.build(
                    table.schema, table.scan(), self._signing_engine()
                )
        # Every signature in every log entry is now obsolete: consume an
        # LSN barrier per table so laggard edges detect the gap and
        # resync via snapshot (their epoch check catches it too).
        for name in self.vbtrees:
            self.replicator.log_for(name).barrier()
        if self.replication is ReplicationMode.EAGER:
            self.propagate()
        return self.keyring.current_epoch

    # ------------------------------------------------------------------
    # Edge servers & replication
    # ------------------------------------------------------------------

    def spawn_edge_server(
        self,
        name: str,
        faults: FaultInjector | None = None,
        transport: InProcessTransport | None = None,
    ):
        """Create an edge server reachable only through a transport
        link, bootstrapping every table's replica via serialized
        snapshot frames.

        Args:
            name: Edge server name (also the link label).
            faults: Initial fault state for the link (fault injection).
            transport: A pre-built link (custom channels); one is
                created if not given.
        """
        from repro.edge.edge_server import EdgeServer

        edge = EdgeServer(
            name=name,
            config=self.edge_config(),
            ack_every=self.ack_every,
            ack_bytes=self.ack_bytes,
        )
        link = transport or InProcessTransport(name, faults=faults)
        edge.attach_transport(link)
        self.fanout.attach(name, link)
        self._edges.append(edge)
        self.fanout.bootstrap(name)
        return edge

    def spawn_edge_fleet(self, names: Sequence[str]) -> list:
        """Spawn many in-process edge servers, sharing bootstrap work.

        Identical to calling :meth:`spawn_edge_server` per name except
        that every snapshot payload is serialized **once** for the
        whole fleet (the per-sweep payload cache is shared across the
        bootstraps), which is what makes attaching thousands of
        simulated edges affordable — the per-edge cost is applying the
        snapshot, not re-signing and re-serializing it.

        Returns:
            The edge servers, in ``names`` order.
        """
        from repro.edge.edge_server import EdgeServer

        payloads: dict = {}
        edges = []
        for name in names:
            edge = EdgeServer(
                name=name,
                config=self.edge_config(),
                ack_every=self.ack_every,
                ack_bytes=self.ack_bytes,
            )
            link = InProcessTransport(name)
            edge.attach_transport(link)
            self.fanout.attach(name, link)
            self._edges.append(edge)
            self.fanout.bootstrap(name, payloads)
            edges.append(edge)
        return edges

    def attach_remote_edge(
        self,
        name: str,
        transport,
        cursors: Sequence[tuple[str, int, int]] = (),
        config_epoch: int | None = None,
    ) -> RemoteEdgeHandle:
        """Register an edge living in another process, reachable only
        through ``transport`` (normally a
        :class:`~repro.edge.socket_transport.TcpTransport` over an
        accepted connection).

        Re-attaching an already known name replaces its link and
        central-side peer state — the reconnect path.  ``cursors`` (the
        edge's registration handshake) seed the fan-out engine's
        ack-fed cursors, so a transiently disconnected edge resumes
        delta delivery where it left off, while a restarted (fresh,
        replica-less) edge registers empty and is healed via snapshot
        by the next pump's epoch check.  ``config_epoch`` is the key
        epoch of the verification bundle actually delivered in the
        handshake (see :meth:`~repro.edge.fanout.FanoutEngine.attach`).

        Returns:
            The :class:`RemoteEdgeHandle` now standing in for the edge.
        """
        previous = self.fanout.peers.get(name)
        if previous is not None and previous.transport is not transport:
            previous.transport.close()
        handle = RemoteEdgeHandle(name=name)
        # The hello is untrusted input: drop cursors for replicas this
        # server does not have, and clamp each LSN to the log head — a
        # lying (or central-restart-surviving) cursor ahead of the log
        # would otherwise suppress every future send for that table.
        sane: list[tuple[str, int, int]] = []
        for table, lsn, epoch in cursors:
            if table not in self.vbtrees:
                continue
            log = self.replicator.logs.get(table)
            limit = log.last_lsn if log is not None else 0
            sane.append((table, min(lsn, limit), epoch))
        self.fanout.attach(
            name, transport, cursors=sane, config_epoch=config_epoch
        )
        self._edges = [*(e for e in self._edges if e.name != name), handle]
        return handle

    def propagate(self, table: str | None = None, force_snapshot: bool = False) -> int:
        """Bring every edge server up to date through the fan-out
        engine.

        Edges with pending log entries receive them as one coalesced,
        signed delta batch; edges that cannot catch up from the log
        (no replica yet, log gap, or key rotation) receive a full
        snapshot.  With ``force_snapshot`` every edge receives a
        snapshot regardless — the seed's clone-shipping behaviour, kept
        as the comparison baseline for ``bench_replication``.

        Returns:
            Number of frames shipped (deltas + snapshots).
        """
        if table is not None and table not in self.vbtrees:
            raise ReplicationError(f"no VB-tree for {table!r}")
        tables = [table] if table else None
        return self.fanout.pump(tables, force_snapshot=force_snapshot)

    def staleness(self, edge, table: str) -> int:
        """LSNs the edge's replica of ``table`` lags behind the delta
        log, per the fan-out engine's ack-fed cursors.

        Args:
            edge: Edge name or :class:`~repro.edge.edge_server.EdgeServer`.
            table: Replica name.
        """
        name = getattr(edge, "name", edge)
        return self.fanout.staleness(name, table)

    @property
    def edges(self) -> list:
        """Attached edge servers."""
        return list(self._edges)
