"""The trusted central DBMS (Figure 2, left).

Owns the master database, the signing key pair, the key ring, and the
VB-trees; applies all updates (only it can sign digests) and propagates
replicas to edge servers either eagerly (per update) or lazily (on
:meth:`CentralServer.propagate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Optional, Sequence

from repro.constants import RSA_BITS
from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.secondary import SecondaryVBTree
from repro.core.update import AuthenticatedUpdater
from repro.core.vbtree import VBTree
from repro.baselines.naive import NaiveStore
from repro.crypto.keyring import KeyRing
from repro.crypto.rsa import RSAKeyPair, generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.mview import MaterializedJoinView
from repro.db.rows import Row
from repro.db.schema import Catalog, TableSchema
from repro.db.table import Table
from repro.db.transactions import TransactionManager
from repro.exceptions import ReplicationError, SchemaError

__all__ = ["CentralServer", "ReplicationMode", "ClientConfig"]


class ReplicationMode(Enum):
    """How updates reach the edge servers (Section 3.4)."""

    EAGER = "eager"    # lock-and-update all replicas per transaction
    LAZY = "lazy"      # periodic propagation; detected via key epochs


@dataclass(frozen=True)
class ClientConfig:
    """Everything a client needs to verify results from this server."""

    db_name: str
    policy: DigestPolicy
    keyring: KeyRing


class CentralServer:
    """The trusted central DBMS.

    Args:
        db_name: Logical database name (hashed into every digest).
        rsa_bits: Signing key size (512 keeps simulations fast).
        seed: Deterministic key generation seed.
        policy: Digest policy for all VB-trees.
        replication: Eager or lazy replica maintenance.
        enable_naive: Also maintain the Naive baseline's per-tuple
            signature store for every table (needed by the comparison
            benches; costs one extra signature pass per insert).
    """

    def __init__(
        self,
        db_name: str,
        rsa_bits: int = RSA_BITS,
        seed: int | None = None,
        policy: DigestPolicy = DigestPolicy.FLATTENED,
        replication: ReplicationMode = ReplicationMode.EAGER,
        enable_naive: bool = False,
    ) -> None:
        self.db_name = db_name
        self.policy = policy
        self.replication = replication
        self.enable_naive = enable_naive
        self.keyring = KeyRing()
        self._keypair: RSAKeyPair = generate_keypair(bits=rsa_bits, seed=seed)
        self.keyring.register(self._keypair.public)
        self._signer = DigestSigner.from_keypair(
            self._keypair, epoch=self.keyring.current_epoch
        )
        self.catalog = Catalog(db_name)
        self.tables: dict[str, Table] = {}
        self.vbtrees: dict[str, VBTree] = {}
        self.naive_stores: dict[str, NaiveStore] = {}
        self.views: dict[str, MaterializedJoinView] = {}
        self._updaters: dict[str, AuthenticatedUpdater] = {}
        self._secondary_of: dict[str, list[str]] = {}
        self.txn_manager = TransactionManager()
        self._edges: list["EdgeServer"] = []

    # ------------------------------------------------------------------
    # Signing plumbing
    # ------------------------------------------------------------------

    def _signing_engine(self) -> SigningDigestEngine:
        engine = DigestEngine(self.db_name, policy=self.policy)
        return SigningDigestEngine(engine, self._signer)

    @property
    def public_key(self):
        """Current public key (current epoch)."""
        return self._keypair.public

    def client_config(self) -> ClientConfig:
        """Bundle of verification parameters for clients."""
        return ClientConfig(
            db_name=self.db_name, policy=self.policy, keyring=self.keyring
        )

    def make_client(self, meter=None):
        """Construct a :class:`~repro.edge.client.Client` wired to this
        server's key ring and digest parameters."""
        from repro.edge.client import Client

        return Client(self.client_config(), meter=meter)

    # ------------------------------------------------------------------
    # Schema / data management
    # ------------------------------------------------------------------

    def create_table(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]] = (),
        fanout_override: int | None = None,
    ) -> Table:
        """Create a base table, build its VB-tree, seed it with rows."""
        self.catalog.register(schema)
        table = Table(schema)
        for values in rows:
            table.insert(values)
        self.tables[schema.name] = table
        vbt = VBTree.build(
            schema,
            table.scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[schema.name] = vbt
        self._updaters[schema.name] = AuthenticatedUpdater(vbt)
        if self.enable_naive:
            self.naive_stores[schema.name] = NaiveStore.build(
                schema, table.scan(), self._signing_engine()
            )
        return table

    def create_join_view(
        self,
        name: str,
        left: str,
        right: str,
        left_column: str,
        right_column: str,
        fanout_override: int | None = None,
    ) -> MaterializedJoinView:
        """Materialize an equi-join and build a VB-tree over it
        (Section 3.3's join strategy)."""
        view = MaterializedJoinView(
            name,
            self._table(left),
            self._table(right),
            left_column,
            right_column,
        )
        self.catalog.register(view.schema)
        self.views[name] = view
        self.tables[name] = view.table
        vbt = VBTree.build(
            view.schema,
            view.table.scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[name] = vbt
        self._updaters[name] = AuthenticatedUpdater(vbt)
        if self.enable_naive:
            self.naive_stores[name] = NaiveStore.build(
                view.schema, view.table.scan(), self._signing_engine()
            )
        return view

    def create_secondary_index(
        self,
        table: str,
        attribute: str,
        fanout_override: int | None = None,
    ) -> str:
        """Build a secondary VB-tree on ``attribute`` (the paper's
        "one or more VB-trees" per table; see
        :mod:`repro.core.secondary`).

        Returns:
            The index name (``<table>__by_<attribute>``), which edge
            servers address via
            :meth:`~repro.edge.edge_server.EdgeServer.secondary_range_query`.
        """
        schema = self.catalog.get(table)
        name = f"{table}__by_{attribute}"
        if name in self.vbtrees:
            raise SchemaError(f"secondary index {name!r} already exists")
        vbt = SecondaryVBTree.build_on(
            schema,
            attribute,
            self._table(table).scan(),
            self._signing_engine(),
            fanout_override=fanout_override,
        )
        self.vbtrees[name] = vbt
        self._updaters[name] = AuthenticatedUpdater(vbt)
        self._secondary_of.setdefault(table, []).append(name)
        self.propagate(name)
        return name

    def secondary_index_name(self, table: str, attribute: str) -> str:
        """Canonical name of a secondary index."""
        return f"{table}__by_{attribute}"

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def _vbtree(self, name: str) -> VBTree:
        try:
            return self.vbtrees[name]
        except KeyError:
            raise SchemaError(f"no VB-tree for {name!r}") from None

    # ------------------------------------------------------------------
    # Updates (Section 3.4 — updates go through the central server)
    # ------------------------------------------------------------------

    def insert(self, table: str, values: Sequence[Any]) -> Row:
        """Insert one row: base table, VB-tree digests, naive store,
        join views, and (eager) replica propagation."""
        tbl = self._table(table)
        row = tbl.insert(values)
        txn = self.txn_manager.begin()
        try:
            self._updaters[table].insert(row, txn=txn)
            txn.commit()
        except Exception:
            txn.abort()
            tbl.delete(row.key)
            raise
        if table in self.naive_stores:
            self.naive_stores[table].add(row)
        for index_name in self._secondary_of.get(table, ()):
            self._updaters[index_name].insert(row)
            self._after_update(index_name)
        self._maintain_views_on_insert(table, row)
        self._after_update(table)
        return row

    def delete(self, table: str, key: Any) -> Row:
        """Delete one row everywhere (table, digests, views, replicas)."""
        tbl = self._table(table)
        txn = self.txn_manager.begin()
        try:
            row = self._updaters[table].delete(key, txn=txn)
            txn.commit()
        except Exception:
            txn.abort()
            raise
        tbl.delete(key)
        if table in self.naive_stores:
            self.naive_stores[table].remove(key)
        for index_name in self._secondary_of.get(table, ()):
            secondary = self.vbtrees[index_name]
            self._updaters[index_name].delete(secondary.key_of(row))
            self._after_update(index_name)
        self._maintain_views_on_delete(table, row)
        self._after_update(table)
        return row

    def _maintain_views_on_insert(self, table: str, row: Row) -> None:
        for view in self.views.values():
            added: list[Row] = []
            if view.left.schema.name == table:
                added = view.on_left_insert(row)
            elif view.right.schema.name == table:
                added = view.on_right_insert(row)
            if added:
                updater = self._updaters[view.name]
                for vrow in added:
                    updater.insert(vrow)
                if view.name in self.naive_stores:
                    for vrow in added:
                        self.naive_stores[view.name].add(vrow)
                self._after_update(view.name)

    def _maintain_views_on_delete(self, table: str, row: Row) -> None:
        for view in self.views.values():
            removed: list[Row] = []
            if view.left.schema.name == table:
                removed = view.on_left_delete(row)
            elif view.right.schema.name == table:
                removed = view.on_right_delete(row)
            if removed:
                updater = self._updaters[view.name]
                for vrow in removed:
                    updater.delete(vrow.key)
                if view.name in self.naive_stores:
                    for vrow in removed:
                        self.naive_stores[view.name].remove(vrow.key)
                self._after_update(view.name)

    # ------------------------------------------------------------------
    # Key rotation (Section 3.4's stale-data defence)
    # ------------------------------------------------------------------

    def rotate_key(self, rsa_bits: int | None = None, seed: int | None = None) -> int:
        """Generate a new key pair, register a new epoch, and re-sign
        every digest.  Edge replicas become stale until propagated.

        Returns:
            The new epoch number.
        """
        bits = rsa_bits or self._keypair.bits
        self._keypair = generate_keypair(bits=bits, seed=seed)
        self.keyring.register(self._keypair.public)
        self._signer = DigestSigner.from_keypair(
            self._keypair, epoch=self.keyring.current_epoch
        )
        for name, vbt in list(self.vbtrees.items()):
            override = (
                vbt.tree.max_children
                if vbt.tree.max_children < vbt.geometry.internal_fanout()
                else None
            )
            if isinstance(vbt, SecondaryVBTree):
                rebuilt: VBTree = SecondaryVBTree.build_on(
                    vbt.schema,
                    vbt.attribute,
                    list(vbt.rows()),
                    self._signing_engine(),
                    fanout_override=override,
                )
            else:
                rebuilt = VBTree.build(
                    vbt.schema,
                    list(vbt.rows()),
                    self._signing_engine(),
                    fanout_override=override,
                )
            rebuilt.version = vbt.version + 1
            self.vbtrees[name] = rebuilt
            self._updaters[name] = AuthenticatedUpdater(rebuilt)
        for name, table in self.tables.items():
            if name in self.naive_stores:
                self.naive_stores[name] = NaiveStore.build(
                    table.schema, table.scan(), self._signing_engine()
                )
        if self.replication is ReplicationMode.EAGER:
            self.propagate()
        return self.keyring.current_epoch

    # ------------------------------------------------------------------
    # Edge servers & replication
    # ------------------------------------------------------------------

    def spawn_edge_server(self, name: str):
        """Create an edge server with replicas of every table."""
        from repro.edge.edge_server import EdgeServer

        edge = EdgeServer(name=name, central=self)
        for table in self.vbtrees:
            naive = self.naive_stores.get(table)
            edge.receive_replica(
                table,
                self.vbtrees[table].clone(),
                naive.clone() if naive is not None else None,
            )
        self._edges.append(edge)
        return edge

    def propagate(self, table: str | None = None) -> int:
        """Push fresh replicas to every edge server.

        Returns:
            Number of replicas shipped.
        """
        shipped = 0
        names = [table] if table else list(self.vbtrees)
        for name in names:
            if name not in self.vbtrees:
                raise ReplicationError(f"no VB-tree for {name!r}")
            naive = self.naive_stores.get(name)
            for edge in self._edges:
                edge.receive_replica(
                    name,
                    self.vbtrees[name].clone(),
                    naive.clone() if naive is not None else None,
                )
                shipped += 1
        return shipped

    def _after_update(self, table: str) -> None:
        if self.replication is ReplicationMode.EAGER:
            self.propagate(table)

    @property
    def edges(self) -> list:
        """Attached edge servers."""
        return list(self._edges)
