"""Swallowed-error telemetry: a counter where silence used to be.

The serve loops and transports deliberately survive torn sockets,
half-finished handshakes, and peers dying mid-frame — a fabric that
fell over every time an edge was SIGKILLed could not heal anything.
But "survive" used to mean ``except Exception: pass``, which also
swallowed *unexpected* errors: a framing bug, a verification error, a
typo in a handler all vanished into the same silence as a routine
``ECONNRESET``.

This module is the sweep's landing pad (ISSUE 9).  Every formerly
silent handler now catches the *narrow* expected errors (usually
``OSError`` on a torn socket) and routes anything else — and,
optionally, the expected ones too — through :func:`note`, which
increments a process-wide counter keyed ``site:ExceptionType`` and
emits one ``repro.edge`` log line.  Tests and the chaos battery assert
on the counters: an unexpected-error counter that moves during a
healthy run is a bug, full stop.

The counters are process-global and lock-guarded (the serve loops note
from accept/reader threads).  They are telemetry, not control flow —
nothing reads them to make decisions.
"""

from __future__ import annotations

import logging
import threading
from collections import Counter

__all__ = ["note", "counters", "total", "unexpected_total", "reset"]

log = logging.getLogger("repro.edge")

_lock = threading.Lock()
_counters: Counter[str] = Counter()


def note(site: str, exc: BaseException, detail: str = "") -> None:
    """Record one swallowed exception at ``site``.

    Args:
        site: Stable dotted label for the swallow site, e.g.
            ``"relay.accept_loop.unexpected"``.  Sites ending in
            ``.unexpected`` are the ones tests gate on.
        exc: The exception being swallowed.
        detail: Optional extra context for the log line.
    """
    key = f"{site}:{type(exc).__name__}"
    with _lock:
        _counters[key] += 1
    log.warning(
        "swallowed %s at %s: %s%s",
        type(exc).__name__,
        site,
        exc,
        f" ({detail})" if detail else "",
    )


def counters() -> dict[str, int]:
    """Snapshot of all counters as ``{"site:ExcType": count}``."""
    with _lock:
        return dict(_counters)


def total(prefix: str = "") -> int:
    """Sum of counters whose site starts with ``prefix``.

    ``total("")`` is everything; ``total("relay.")`` is the relay's
    swallows; the chaos invariant is
    ``total_unexpected := sum over keys containing ".unexpected:"``,
    exposed here as ``total(prefix)`` over an ``.unexpected`` site
    prefix or via :func:`counters` filtering.
    """
    with _lock:
        return sum(v for k, v in _counters.items() if k.startswith(prefix))


def unexpected_total() -> int:
    """Sum of counters at ``*.unexpected`` sites — the chaos gate."""
    with _lock:
        return sum(
            v for k, v in _counters.items() if ".unexpected:" in k
        )


def reset() -> None:
    """Zero every counter (test isolation)."""
    with _lock:
        _counters.clear()
