"""Sharded multi-signer central plane (scale-out of Figure 2's left box).

One :class:`~repro.edge.central.CentralServer` signs every update on a
single core, so write throughput is flat no matter how many cores the
host has.  This module splits the central plane into N **share-nothing
signer shards**: each shard is a full ``CentralServer`` with its *own*
signing key pair, key-ring epochs, per-table LSN logs, and
:class:`~repro.edge.fanout.FanoutEngine` — there is no cross-shard
coordination on the write path, so signed-insert throughput scales
~linearly with shard count (WedgeChain's signer/serving split, and the
multi-authority topology the edge-integrity survey treats as the
deployment norm).

Placement is described by a versioned :class:`ShardMap`:

* small tables live whole on one shard, chosen by a **seeded stable
  hash** of the table name (:func:`stable_hash` — never the builtin
  ``hash()``, which is randomized per process and would scatter the
  same table to different shards in different processes);
* large tables are **range-partitioned**: ``nshards - 1`` integer
  boundaries split the key domain into contiguous half-open ranges
  ``[b_{i-1}, b_i)``, shard ``i`` owning range ``i``.  The half-open
  convention makes boundary ownership exact: a key equal to a boundary
  lands in the *right* shard, and in exactly one shard.

Queries scatter/gather through
:class:`~repro.edge.router.ScatterGatherRouter`: a range query is
planned against the map, each overlapping shard answers its sub-range
through that shard's verify-or-failover router (verified against that
shard's public keys), and the verified sub-results merge — in shard
order, which *is* key order for a range partition — into one verified
answer.  A REJECT quarantines only the tampering shard's edge; every
other shard's verified sub-result is kept.

The map travels to edges and routers in the handshake
:class:`~repro.edge.transport.ConfigFrame` (optional trailing fields —
a single-shard deployment emits byte-identical frames to the pre-shard
protocol).

Role and ownership: everything here is **trusted central plane** —
each shard holds its own *private* signing key, and a shard's results
verify only against that shard's public records.  The
:class:`ShardMap` itself is public control-plane data (it routes, it
does not authenticate) and is safe to hand to edges, relays, and
routers verbatim.  Threading follows the share-nothing split: each
shard's write path runs wherever its caller runs, with no cross-shard
lock; the sharded *deployment* serves all shards' accepted links from
one reactor thread (DESIGN.md section 11), which owns the sockets but
never the keys."""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.constants import RSA_BITS
from repro.core.digests import DigestPolicy
from repro.crypto.encoding import encode_value
from repro.db.schema import TableSchema
from repro.edge.central import CentralServer, ClientConfig, ReplicationMode
from repro.exceptions import ReplicationError, SchemaError

__all__ = [
    "stable_hash",
    "ShardMap",
    "ShardedCentral",
]


def stable_hash(value: Any, seed: int = 0) -> int:
    """A seeded, cross-process-stable 64-bit hash of ``value``.

    Built on ``blake2b`` over the canonical wire encoding of ``value``
    (:func:`repro.crypto.encoding.encode_value`), keyed by ``seed`` —
    so shard assignment is a pure function of ``(value, seed)`` and two
    processes (or two runs months apart) always agree.  The builtin
    ``hash()`` must never route data: ``PYTHONHASHSEED`` randomizes it
    per process, which would send the same table to different shards on
    the two sides of a wire.

    Args:
        value: Any wire-encodable value (str/int/bytes/None/bool/float).
        seed: Placement seed; different seeds give independent hashes.
    """
    digest = hashlib.blake2b(
        encode_value(value),
        digest_size=8,
        key=seed.to_bytes(8, "big", signed=True),
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class _Placement:
    """Where one table lives.

    Attributes:
        kind: ``"hash"`` (whole table on one shard) or ``"range"``
            (contiguous key ranges across every shard).
        shard: Owning shard for a hash placement (-1 for range).
        boundaries: ``nshards - 1`` sorted integer split points for a
            range placement — shard ``i`` owns ``[b_{i-1}, b_i)`` with
            open outer ends (empty for hash).
    """

    kind: str
    shard: int = -1
    boundaries: tuple[int, ...] = ()


class ShardMap:
    """Versioned table → shard placement map.

    The map is the *only* shared state of a sharded central plane, and
    it is control-plane state: it changes on DDL (placing a table),
    never per write, and every change bumps :attr:`version` so edges
    and routers can detect a stale map.

    Args:
        nshards: Number of signer shards.
        seed: Placement seed for :func:`stable_hash` table assignment.
    """

    def __init__(self, nshards: int, seed: int = 0) -> None:
        if nshards < 1:
            raise ReplicationError("a shard map needs nshards >= 1")
        self.nshards = nshards
        self.seed = seed
        self.version = 0
        self._placements: dict[str, _Placement] = {}

    # ------------------------------------------------------------------
    # Placement (DDL time)
    # ------------------------------------------------------------------

    def place_table(self, name: str, shard: int | None = None) -> int:
        """Place a whole table on one shard (hash placement).

        Args:
            name: Table name.
            shard: Explicit shard override; defaults to
                ``stable_hash(name, seed) % nshards``.

        Returns:
            The owning shard id.
        """
        if name in self._placements:
            raise SchemaError(f"table {name!r} is already placed")
        if shard is None:
            shard = stable_hash(name, self.seed) % self.nshards
        if not 0 <= shard < self.nshards:
            raise ReplicationError(
                f"shard {shard} out of range for {self.nshards} shards"
            )
        self._placements[name] = _Placement(kind="hash", shard=shard)
        self.version += 1
        return shard

    def place_range_table(
        self, name: str, boundaries: Sequence[int]
    ) -> tuple[int, ...]:
        """Range-partition a table across *every* shard.

        Args:
            name: Table name.
            boundaries: ``nshards - 1`` sorted integer split points;
                shard ``i`` owns the half-open range ``[b_{i-1}, b_i)``
                (unbounded at both outer ends).

        Returns:
            The boundaries as stored.
        """
        if name in self._placements:
            raise SchemaError(f"table {name!r} is already placed")
        bounds = tuple(boundaries)
        if len(bounds) != self.nshards - 1:
            raise ReplicationError(
                f"range placement needs {self.nshards - 1} boundaries, "
                f"got {len(bounds)}"
            )
        if any(b2 < b1 for b1, b2 in zip(bounds, bounds[1:], strict=False)):
            raise ReplicationError("boundaries must be sorted ascending")
        self._placements[name] = _Placement(kind="range", boundaries=bounds)
        self.version += 1
        return bounds

    # ------------------------------------------------------------------
    # Routing (hot path — pure lookups)
    # ------------------------------------------------------------------

    def tables(self) -> tuple[str, ...]:
        """Every placed table name."""
        return tuple(self._placements)

    def placement(self, table: str) -> _Placement:
        try:
            return self._placements[table]
        except KeyError:
            raise SchemaError(f"table {table!r} is not placed") from None

    def shard_for(self, table: str, key: Any) -> int:
        """The single shard that owns ``key`` of ``table``.

        Hash tables ignore the key; range tables bisect the boundary
        list — a key equal to a boundary belongs to the range *starting*
        at that boundary (half-open ``[lo, hi)``), so every key lands
        in exactly one shard.
        """
        placement = self.placement(table)
        if placement.kind == "hash":
            return placement.shard
        return bisect_right(placement.boundaries, key)

    def shards_for_table(self, table: str) -> tuple[int, ...]:
        """Every shard holding a replica of ``table``."""
        placement = self.placement(table)
        if placement.kind == "hash":
            return (placement.shard,)
        return tuple(range(self.nshards))

    def plan(
        self, table: str, low: Any = None, high: Any = None
    ) -> list[tuple[int, Any, Any]]:
        """Scatter plan for an *inclusive* key-range query.

        Returns:
            ``(shard, sub_low, sub_high)`` per overlapping shard, in
            shard (= key) order, with inclusive sub-bounds clamped to
            the shard's half-open range (``None`` = unbounded).  Range
            boundaries are integers, so the inclusive upper clamp of a
            range ending (exclusively) at ``b`` is ``b - 1``.
        """
        placement = self.placement(table)
        if placement.kind == "hash":
            return [(placement.shard, low, high)]
        plan: list[tuple[int, Any, Any]] = []
        bounds = placement.boundaries
        for shard in range(self.nshards):
            lo = bounds[shard - 1] if shard > 0 else None
            hi = bounds[shard] if shard < len(bounds) else None
            if lo is not None and hi is not None and lo >= hi:
                continue  # empty range (duplicate boundaries)
            if hi is not None and low is not None and low >= hi:
                continue
            if lo is not None and high is not None and high < lo:
                continue
            sub_low = lo if low is None else (low if lo is None else max(low, lo))
            if hi is None:
                sub_high = high
            elif high is None:
                sub_high = hi - 1
            else:
                sub_high = min(high, hi - 1)
            plan.append((shard, sub_low, sub_high))
        return plan

    # ------------------------------------------------------------------
    # Wire form (ConfigFrame trailing fields)
    # ------------------------------------------------------------------

    def to_wire(self) -> tuple:
        """The map as plain tuples for the handshake ``ConfigFrame``."""
        entries = tuple(
            (name, p.kind, (p.shard,) if p.kind == "hash" else p.boundaries)
            for name, p in self._placements.items()
        )
        return (self.version, self.nshards, self.seed, entries)

    @classmethod
    def from_wire(cls, wire: tuple) -> "ShardMap":
        """Rebuild a map from :meth:`to_wire` tuples."""
        version, nshards, seed, entries = wire
        shard_map = cls(nshards=nshards, seed=seed)
        for name, kind, payload in entries:
            if kind == "hash":
                shard_map.place_table(name, shard=payload[0])
            else:
                shard_map.place_range_table(name, payload)
        shard_map.version = version
        return shard_map


def boundaries_from_keys(
    keys: Iterable[int], nshards: int
) -> tuple[int, ...]:
    """Even split points for seeding a range partition from known keys.

    Sorts the distinct keys and cuts them into ``nshards`` equal-count
    chunks; each boundary is the first key of a chunk, so the seed rows
    spread evenly.  Future inserts route by these *fixed* boundaries —
    the partition does not rebalance."""
    distinct = sorted(set(keys))
    if len(distinct) < nshards:
        raise ReplicationError(
            f"need at least {nshards} distinct keys to derive "
            f"{nshards} ranges, got {len(distinct)}"
        )
    chunk = len(distinct) / nshards
    return tuple(distinct[round(i * chunk)] for i in range(1, nshards))


class ShardedCentral:
    """N share-nothing signer shards behind one placement map.

    Each shard is a full :class:`~repro.edge.central.CentralServer`
    with its own signing key, epochs, logs, fan-out engine, and edge
    fleet.  Writes hash-route (or range-route) to exactly one shard; no
    lock, log, or signature is ever shared between shards, so the write
    path of a sharded plane *is* the write path of a single central —
    times N cores.

    Args:
        db_name: Logical database name, shared by every shard (the
            digest label; per-shard authenticity comes from per-shard
            keys, not the name).
        shards: Number of signer shards.
        seed: Deterministic key-generation seed; shard ``i`` derives
            its signing key from ``seed + i`` so every shard signs
            under a *different* key pair.
        map_seed: Placement seed for the shard map (defaults to
            ``seed`` or 0).
        rsa_bits / policy / replication: Forwarded to every shard.
        **central_kwargs: Remaining :class:`CentralServer` options,
            forwarded to every shard (fan-out windows, ack policy, …).
    """

    def __init__(
        self,
        db_name: str,
        shards: int = 4,
        seed: int | None = None,
        map_seed: int | None = None,
        rsa_bits: int = RSA_BITS,
        policy: DigestPolicy = DigestPolicy.FLATTENED,
        replication: ReplicationMode = ReplicationMode.EAGER,
        **central_kwargs,
    ) -> None:
        if shards < 1:
            raise ReplicationError("a sharded central needs shards >= 1")
        self.db_name = db_name
        self.nshards = shards
        if map_seed is None:
            map_seed = seed if seed is not None else 0
        self.shard_map = ShardMap(nshards=shards, seed=map_seed)
        self.shards: list[CentralServer] = [
            CentralServer(
                db_name,
                rsa_bits=rsa_bits,
                seed=None if seed is None else seed + i,
                policy=policy,
                replication=replication,
                shard_id=i,
                **central_kwargs,
            )
            for i in range(shards)
        ]
        self._key_index: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    def shard(self, shard_id: int) -> CentralServer:
        """The shard's :class:`CentralServer` (IndexError if unknown)."""
        return self.shards[shard_id]

    def create_table(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]] = (),
        partition: str = "hash",
        boundaries: Sequence[int] | None = None,
        fanout_override: int | None = None,
    ) -> None:
        """Create and place a table, seeding each shard with its rows.

        Args:
            schema: Table schema (created identically on every owning
                shard).
            rows: Seed rows; routed to their owning shards.
            partition: ``"hash"`` places the whole table on one shard;
                ``"range"`` partitions contiguous integer key ranges
                across every shard.
            boundaries: Explicit split points for ``"range"``
                (``nshards - 1`` sorted ints); derived evenly from the
                seed rows' keys when omitted.
            fanout_override: Fixed VB-tree node fanout for every
                shard's tree.  Worth setting for range partitions: the
                default size-derived geometry gives a small partition a
                single wide root whose per-insert rehash is O(rows),
                while a fixed fanout keeps node width constant and
                lets *depth* absorb the size difference — so a shard
                holding 1/N of the table pays at most the unsharded
                per-insert cost.
        """
        rows = list(rows)
        key_index = schema.key_index
        self._key_index[schema.name] = key_index
        if partition == "hash":
            owner = self.shard_map.place_table(schema.name)
            self.shards[owner].create_table(
                schema, rows, fanout_override=fanout_override
            )
            return
        if partition != "range":
            raise SchemaError(
                f"partition must be 'hash' or 'range', got {partition!r}"
            )
        if boundaries is None:
            boundaries = boundaries_from_keys(
                (row[key_index] for row in rows), self.nshards
            )
        self.shard_map.place_range_table(schema.name, boundaries)
        parts: list[list[Sequence[Any]]] = [[] for _ in range(self.nshards)]
        for row in rows:
            parts[self.shard_map.shard_for(schema.name, row[key_index])].append(row)
        for shard_id, shard_rows in enumerate(parts):
            self.shards[shard_id].create_table(
                schema, shard_rows, fanout_override=fanout_override
            )

    def create_secondary_index(self, table: str, attribute: str) -> str:
        """Build the secondary index on every shard holding ``table``."""
        name = ""
        for shard_id in self.shard_map.shards_for_table(table):
            name = self.shards[shard_id].create_secondary_index(table, attribute)
        return name

    # ------------------------------------------------------------------
    # Writes (hot path: exactly one shard, no coordination)
    # ------------------------------------------------------------------

    def shard_for(self, table: str, key: Any) -> int:
        """The shard that owns ``key`` of ``table``."""
        return self.shard_map.shard_for(table, key)

    def insert(self, table: str, values: Sequence[Any]):
        """Insert one row on its owning shard (signed by that shard)."""
        key = values[self._key_index[table]]
        return self.shards[self.shard_for(table, key)].insert(table, values)

    def delete(self, table: str, key: Any):
        """Delete one row from its owning shard."""
        return self.shards[self.shard_for(table, key)].delete(table, key)

    def rotate_key(self, shard_id: int, **kwargs) -> int:
        """Rotate one shard's signing key (its epochs are its own)."""
        return self.shards[shard_id].rotate_key(**kwargs)

    # ------------------------------------------------------------------
    # Edges & replication
    # ------------------------------------------------------------------

    def spawn_edge_fleet(
        self, per_shard: int, prefix: str = "edge"
    ) -> dict[int, list]:
        """Spawn ``per_shard`` in-process edges behind every shard.

        Edge names are ``{prefix}-s{shard}-{i}``; each fleet replicates
        only its shard's tables, bootstrapped with the shared-payload
        fast path.

        Returns:
            shard id → its edge servers.
        """
        fleets: dict[int, list] = {}
        for shard_id, shard in enumerate(self.shards):
            names = [f"{prefix}-s{shard_id}-{i}" for i in range(per_shard)]
            fleets[shard_id] = shard.spawn_edge_fleet(names)
        return fleets

    def propagate(self) -> int:
        """Pump every shard's fan-out engine; returns frames shipped."""
        return sum(shard.propagate() for shard in self.shards)

    # ------------------------------------------------------------------
    # Verification plumbing (per-shard public keys)
    # ------------------------------------------------------------------

    def client_config(self, shard_id: int) -> ClientConfig:
        """Shard ``shard_id``'s verification bundle — results from a
        shard verify against *that shard's* key ring and no other."""
        return self.shards[shard_id].client_config()

    def client_configs(self) -> dict[int, ClientConfig]:
        """Every shard's verification bundle, by shard id."""
        return {i: s.client_config() for i, s in enumerate(self.shards)}

    def make_router(self, policy: Any = "round_robin", **kwargs):
        """A :class:`~repro.edge.router.ScatterGatherRouter` over every
        shard's in-process edge fleet: per-shard verify-or-failover
        routing composed with map-driven scatter/gather planning.

        Args:
            policy: Per-shard routing policy (name or enum).
            **kwargs: Forwarded to each shard's
                :class:`~repro.edge.router.EdgeRouter`.
        """
        from repro.edge.router import ScatterGatherRouter

        routers = {
            shard_id: shard.make_router(policy=policy, **kwargs)
            for shard_id, shard in enumerate(self.shards)
        }
        return ScatterGatherRouter(self.shard_map, routers)

    def make_sharded_router(self, routers: Mapping[int, Any]):
        """Compose pre-built per-shard verifying routers (e.g. a
        deployment's TCP routers) with this plane's shard map."""
        from repro.edge.router import ScatterGatherRouter

        return ScatterGatherRouter(self.shard_map, dict(routers))

    def total_rows(self, table: str) -> int:
        """Rows of ``table`` across every owning shard."""
        return sum(
            len(self.shards[s].tables[table])
            for s in self.shard_map.shards_for_table(table)
            if table in self.shards[s].tables
        )
