"""Single-threaded non-blocking fan-out: the reactor hot path.

The threaded deployment spends one blocking ``sendall`` (and, at settle
points, one blocking reply read) per edge per frame — fine for tens of
edges, hopeless for the fleet sizes the paper's edge model targets.
This module rewrites the central-side delivery hot path as a classic
reactor (DESIGN.md section 11):

* :class:`EdgeEventLoop` — a ``selectors``-based event loop owning all
  edge sockets in non-blocking mode.  Each connection keeps an
  outbound queue of header/payload buffers; flushing gathers a whole
  queued delta batch into **one** ``sendmsg`` syscall (vectored
  writes), and inbound bytes land in the shared
  :class:`~repro.edge.socket_transport.FrameDecoder` via ``recv_into``
  (no per-frame ``bytes`` concatenation).  Write interest is
  registered only while a send would block (``EWOULDBLOCK`` / partial
  write) — the selector never spins on always-writable sockets.
* :class:`ReactorTransport` — the :class:`~repro.edge.transport.Transport`
  over one reactor connection.  ``send`` only *enqueues* (bytes reach
  the socket on the next loop spin), so the fan-out engine's AIMD
  window is the backpressure signal: a full window parks the edge's
  queue instead of blocking a thread.  Fault injection mirrors
  :class:`~repro.edge.transport.InProcessTransport` exactly, byte
  metering included, so every byte-parity bench holds across media.
* :class:`EdgeHost` — many in-process :class:`~repro.edge.edge_server.EdgeServer`\\ s
  behind *real* loopback TCP sockets, all served from one background
  thread running its own reactor.  This is what lets one test process
  drive hundreds of TCP edges without hundreds of threads or OS
  processes.

The wire protocol is byte-identical to the threaded path: the same
frames, the same cumulative-ack and monotonic-cursor semantics
(DESIGN.md section 10) — only *when* syscalls happen changes.

Role and ownership: this module is plumbing, not policy — it moves
bytes for whichever seat owns the loop.  Every socket registered with
an :class:`EdgeEventLoop` is owned by the single thread that calls
:meth:`EdgeEventLoop.run_once`; transports touched from other threads
only ever *enqueue* (appends are made safe by the queue lock), and the
loop thread alone performs syscalls.  One loop can serve several
seats at once: the central's accepted edge links, an
:class:`EdgeHost`'s listener plus its in-process edges, and a relay's
upstream *client* socket alongside its downstream *server* sockets
(``repro.edge.relay`` runs both faces on one loop, one thread).
Trust: the reactor holds no signing key and sees only
already-serialized frames; compromising it can drop or delay bytes —
which the cursor/nack machinery treats as a lossy link — never forge
them.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable, Optional, Sequence

from repro.edge import telemetry
from repro.edge.network import Channel
from repro.edge.socket_transport import (
    _IOV_MAX,
    _RECV_CHUNK,
    FRAME_HEADER,
    FrameDecoder,
    MAX_FRAME_BYTES,
    connect_with_retry,
    recv_frame,
    send_frame,
)
from repro.edge.transport import (
    CursorAckFrame,
    FaultInjector,
    Frame,
    HelloFrame,
    QueryResponseFrame,
    SendOutcome,
    Transport,
    config_from_frame,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.exceptions import TransportError

__all__ = ["EdgeEventLoop", "ReactorTransport", "EdgeHost"]


class _Connection:
    """One registered socket: queues, decoder, and interest state."""

    __slots__ = (
        "name", "sock", "decoder", "out", "inbox", "handler",
        "closed", "want_write", "registered", "gate",
    )

    def __init__(
        self,
        name: str,
        sock: socket.socket,
        handler: Optional[Callable[[bytes], Sequence[bytes]]] = None,
    ) -> None:
        self.name = name
        self.sock = sock
        self.decoder = FrameDecoder()
        #: Outbound byte buffers (header, payload, header, payload, …).
        self.out: deque = deque()
        #: Complete inbound frame payloads awaiting collection
        #: (transport-owned connections only).
        self.inbox: list[bytes] = []
        self.handler = handler
        self.closed = False
        self.want_write = False
        self.registered = False
        #: Optional writability gate — ``False`` parks the queue
        #: (fault injection: a held/partitioned link keeps its frames
        #: queued without ever blocking the loop).
        self.gate: Optional[Callable[[], bool]] = None

    @property
    def queued_bytes(self) -> int:
        return sum(len(b) for b in self.out)


class EdgeEventLoop:
    """A ``selectors`` reactor multiplexing every edge socket.

    One instance owns all its sockets from whichever thread is
    currently driving :meth:`run_once` (calls are serialized by an
    internal lock; other threads may :meth:`register` or
    :meth:`enqueue` concurrently — registration is deferred to the
    next spin via the wake pipe, enqueueing is lock-free per
    connection under the loop lock).

    Attributes:
        syscalls: ``{"sendmsg", "recv", "select"}`` tallies — the
            bench's evidence that a whole delta batch rides one
            syscall per edge.
    """

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._lock = threading.RLock()
        self._reg_lock = threading.Lock()
        self._pending: list[_Connection] = []
        self._conns: list[_Connection] = []
        self._closed = False
        self.syscalls: dict[str, int] = {"sendmsg": 0, "recv": 0, "select": 0}
        # Wake pipe: lets another thread (accept loop, shutdown) make a
        # blocked select() return immediately.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)

    # ------------------------------------------------------------------
    # Registration (any thread)
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        sock: socket.socket,
        handler: Optional[Callable[[bytes], Sequence[bytes]]] = None,
    ) -> _Connection:
        """Adopt ``sock`` (ownership transfers; set non-blocking).

        The connection is usable immediately (``enqueue`` buffers in
        user space); the selector registration itself happens on the
        next :meth:`run_once` so only the loop-driving thread ever
        touches the selector.
        """
        sock.setblocking(False)
        conn = _Connection(name, sock, handler)
        with self._reg_lock:
            if self._closed:
                raise TransportError("event loop is closed")
            self._pending.append(conn)
        self.wakeup()
        return conn

    def wakeup(self) -> None:
        """Make a concurrent blocked ``select`` return promptly."""
        try:
            self._wake_w.send(b"\x00")
        except (OSError, ValueError):
            pass  # buffer full (already pending) or shutting down

    def _admit_pending(self) -> None:
        with self._reg_lock:
            fresh, self._pending = self._pending, []
        for conn in fresh:
            if conn.closed:
                continue
            try:
                self._selector.register(conn.sock, selectors.EVENT_READ, conn)
            except (OSError, ValueError):
                conn.closed = True
                continue
            conn.registered = True
            self._conns.append(conn)

    def close_conn(self, conn: _Connection) -> None:
        """Tear one connection down (idempotent, any thread)."""
        self.wakeup()
        with self._lock:
            self._close_conn(conn)

    def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        conn.out.clear()
        if conn.registered:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, OSError, ValueError):
                pass
            conn.registered = False
            try:
                self._conns.remove(conn)
            except ValueError:
                pass
        try:
            conn.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------

    def enqueue(self, conn: _Connection, data: bytes) -> None:
        """Queue one length-prefixed frame for the next flush."""
        if len(data) > MAX_FRAME_BYTES:
            raise TransportError(f"frame of {len(data)} bytes exceeds limit")
        conn.out.append(FRAME_HEADER.pack(len(data)))
        conn.out.append(data)

    def _flush_conn(self, conn: _Connection) -> None:
        """Drain one connection's queue with vectored writes.

        The whole queue — however many frames a pump cycle parked
        there — goes out in ``ceil(len/IOV_MAX)`` ``sendmsg`` calls.
        ``EWOULDBLOCK`` or a partial write registers write interest;
        the selector finishes the job when the kernel buffer drains.
        """
        while conn.out and not conn.closed:
            if conn.gate is not None and not conn.gate():
                return  # parked by fault injection — keep the queue
            bufs = [
                conn.out[i] for i in range(min(len(conn.out), _IOV_MAX))
            ]
            self.syscalls["sendmsg"] += 1
            try:
                sent = conn.sock.sendmsg(bufs)
            except (BlockingIOError, InterruptedError):
                self._want_write(conn, True)
                return
            except OSError as exc:
                telemetry.note("event_loop.flush_conn", exc, detail=conn.name)
                self._close_conn(conn)
                return
            while conn.out and sent >= len(conn.out[0]):
                sent -= len(conn.out[0])
                conn.out.popleft()
            if sent:
                head = conn.out.popleft()
                conn.out.appendleft(memoryview(head)[sent:])
                self._want_write(conn, True)
                return
        self._want_write(conn, False)

    def _want_write(self, conn: _Connection, want: bool) -> None:
        if conn.want_write == want or not conn.registered:
            conn.want_write = want and conn.registered
            return
        conn.want_write = want
        events = selectors.EVENT_READ
        if want:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, OSError, ValueError):
            self._close_conn(conn)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    def _read_conn(self, conn: _Connection) -> None:
        while not conn.closed:
            view = conn.decoder.writable(_RECV_CHUNK)
            self.syscalls["recv"] += 1
            try:
                n = conn.sock.recv_into(view)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                telemetry.note("event_loop.read_conn", exc, detail=conn.name)
                self._close_conn(conn)
                return
            if n == 0:  # clean EOF
                self._close_conn(conn)
                return
            conn.decoder.wrote(n)
            if n < len(view):
                break  # socket drained
        while True:
            try:
                data = conn.decoder.next_frame()
            except TransportError as exc:
                # A framing error is never routine: the stream is
                # misaligned and the only safe move is to drop the
                # link — but it must leave a trace.
                telemetry.note("event_loop.framing", exc, detail=conn.name)
                self._close_conn(conn)
                return
            if data is None:
                return
            if conn.handler is None:
                conn.inbox.append(data)
            else:
                for reply in conn.handler(data):
                    self.enqueue(conn, reply)

    # ------------------------------------------------------------------
    # The spin
    # ------------------------------------------------------------------

    def run_once(self, timeout: float = 0.0, flush_writes: bool = True) -> int:
        """One reactor spin; returns the number of ready connections.

        ``flush_writes=False`` is the pump's read-collect mode: apply
        whatever readiness the kernel already has, but leave outbound
        queues parked so consecutive pumps keep coalescing — the
        drain/settle path flushes them in one vectored write per edge.
        """
        with self._lock:
            if self._closed:
                return 0
            self._admit_pending()
            if flush_writes:
                for conn in list(self._conns):
                    if conn.out:
                        self._flush_conn(conn)
            self.syscalls["select"] += 1
            try:
                events = self._selector.select(timeout)
            except (OSError, ValueError):
                return 0
            processed = 0
            for key, mask in events:
                conn = key.data
                if conn is None:  # wake pipe
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                    continue
                if conn.closed:
                    continue
                if mask & selectors.EVENT_WRITE:
                    self._flush_conn(conn)
                if mask & selectors.EVENT_READ:
                    self._read_conn(conn)
                processed += 1
            if flush_writes:
                # Replies a handler just enqueued go out on this spin,
                # not the next — one extra pass, zero extra latency.
                for conn in list(self._conns):
                    if conn.out and not conn.want_write:
                        self._flush_conn(conn)
            return processed

    def close(self) -> None:
        """Tear the loop down: every connection, then the selector."""
        with self._reg_lock:
            self._closed = True
            pending, self._pending = self._pending, []
        self.wakeup()
        with self._lock:
            for conn in pending + list(self._conns):
                self._close_conn(conn)
            try:
                self._selector.close()
            except (OSError, ValueError):
                pass
            for sock in (self._wake_r, self._wake_w):
                try:
                    sock.close()
                except OSError:
                    pass


class ReactorTransport(Transport):
    """Central-side transport over one :class:`EdgeEventLoop` connection.

    The event-driven sibling of
    :class:`~repro.edge.socket_transport.TcpTransport`: the same frame
    protocol, the same pipelined surface, but ``send`` never performs a
    syscall — frames queue on the connection and ship in vectored
    batches when the loop spins (drain, settle, or query time).  Fault
    semantics and byte metering mirror
    :class:`~repro.edge.transport.InProcessTransport` outcome-for-outcome
    so parity benches compare equals:

    * ``partitioned`` — ``failed``, nothing metered, nothing queued.
    * ``drop_next`` — metered then dropped (bytes left, frame lost).
    * ``hold`` — metered and queued, the queue parked via the
      connection gate until the fault clears.
    * ``delay`` — metered and queued, the queue parked until
      ``delay`` seconds after the last delayed send — latency shaping
      that never blocks the loop (healthy peers flush on schedule
      while the slow link's deadline runs down).

    Args:
        name: The edge's name (link label).
        loop: The owning reactor.
        sock: Connected socket (ownership transfers to the loop).
        down_channel / up_channel: Byte accounting, as for every
            :class:`~repro.edge.transport.Transport`.
        faults: Initial fault state (healthy by default).
        timeout: Settle deadline for :meth:`flush(wait=True) <flush>`,
            :meth:`poll`, and :meth:`request` — a peer silent for
            longer counts as wedged (the reply just isn't coming).
    """

    def __init__(
        self,
        name: str,
        loop: EdgeEventLoop,
        sock: socket.socket,
        down_channel: Channel | None = None,
        up_channel: Channel | None = None,
        faults: FaultInjector | None = None,
        timeout: float = 10.0,
    ) -> None:
        super().__init__(name, down_channel, up_channel)
        self.faults = faults or FaultInjector()
        self.timeout = timeout
        self._loop = loop
        self._lock = threading.RLock()
        self._pending = 0
        self._stray: list[Frame] = []
        self._conn = loop.register(name, sock)
        self._conn.gate = self._may_write
        #: Monotonic deadline before which the outbound queue stays
        #: parked (``faults.delay`` shaping; 0.0 = no shaping).
        self._slow_until = 0.0

    def _may_write(self) -> bool:
        if self.faults.blocks_delivery:
            return False
        return time.monotonic() >= self._slow_until

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        """False once the socket is known dead (faults are weather)."""
        return not self._conn.closed

    @property
    def queued_frames(self) -> int:
        """Frames sent but not yet matched with a reply."""
        if self._conn.closed:
            return 0
        return self._pending

    def close(self) -> None:
        self._loop.close_conn(self._conn)

    # ------------------------------------------------------------------
    # Transport surface
    # ------------------------------------------------------------------

    def send(self, frame: Frame) -> SendOutcome:
        """Enqueue one frame — no syscall, ever, on this path.

        Returns ``status="queued"`` (the fan-out window counts it) or
        ``status="failed"`` on a dead/partitioned link; ``dropped``
        under drop injection.  Actual bytes leave in the next loop
        spin's vectored flush.
        """
        with self._lock:
            if self._conn.closed:
                return SendOutcome(status="failed")
            if self.faults.partitioned:
                return SendOutcome(status="failed")
            data = frame_to_bytes(frame)
            transfer = self._record_send(data, frame)
            if self.faults.drop_next > 0:
                self.faults.drop_next -= 1
                return SendOutcome(status="dropped", transfer=transfer)
            if self.faults.delay > 0:
                self._slow_until = max(
                    self._slow_until, time.monotonic() + self.faults.delay
                )
            self._loop.enqueue(self._conn, data)
            self._pending += 1
            return SendOutcome(status="queued", transfer=transfer)

    def _collect(self) -> list:
        """Decode and meter everything the loop has landed in the inbox."""
        replies = list(self._stray)
        self._stray.clear()
        inbox, self._conn.inbox = self._conn.inbox, []
        for data in inbox:
            try:
                reply = frame_from_bytes(data)
            except TransportError as exc:
                telemetry.note("reactor_transport.framing", exc, detail=self.name)
                self._loop.close_conn(self._conn)
                break
            if isinstance(reply, CursorAckFrame):
                # Cumulative: answers everything received before it
                # (same accounting as TcpTransport._read_reply).
                self._pending = 0
            else:
                self._pending = max(0, self._pending - 1)
            self._record_reply(data, reply)
            replies.append(reply)
        return replies

    def flush(self, wait: bool = False) -> list:
        """Collect outstanding reply frames.

        ``wait=False`` (the per-pump drain) performs **no I/O at
        all** — it only decodes what previous loop spins already
        delivered, so draining five hundred peers costs five hundred
        list-swaps, not five hundred selects.  ``wait=True`` spins the
        loop until every pending frame is answered one-for-one or a
        cumulative ack zeroes the count (the
        :meth:`TcpTransport.flush <repro.edge.socket_transport.TcpTransport.flush>`
        contract), bounded by ``timeout``.
        """
        with self._lock:
            replies = self._collect()
            if not wait:
                return replies
            deadline = time.monotonic() + self.timeout
            while (
                self._pending
                and not self._conn.closed
                and not self.faults.blocks_delivery
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._loop.close_conn(self._conn)
                    break
                self._loop.run_once(min(remaining, 0.2))
                replies.extend(self._collect())
            return replies

    def poll(self) -> list:
        """Spin the loop until at least one reply lands (or the link
        dies / is held / times out) — the batched-ack settle primitive.
        A held link returns immediately with whatever was buffered:
        nothing can arrive while the outbound queue is parked, exactly
        like the in-process transport's empty flush."""
        with self._lock:
            replies = self._collect()
            if replies or self.faults.blocks_delivery:
                return replies
            deadline = time.monotonic() + self.timeout
            while not replies and not self._conn.closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._loop.close_conn(self._conn)
                    break
                self._loop.run_once(min(remaining, 0.2))
                replies = self._collect()
            return replies

    def request(self, frame: Frame) -> Frame:
        """One synchronous request/reply round-trip (query path).

        Matches by *type* like the threaded transport: the first
        :class:`~repro.edge.transport.QueryResponseFrame` after the
        send is the answer; replication replies read on the way are
        stashed for the next :meth:`flush`.  Driving :meth:`run_once`
        here also flushes any queued replication frames first — the
        link is FIFO, so the query cannot overtake a delta.

        Raises:
            TransportError: If the link is down, held, or drops
                mid-exchange.
        """
        with self._lock:
            outcome = self.send(frame)
            if outcome.status == "dropped":
                raise TransportError(f"request to {self.name!r} lost in flight")
            if outcome.status != "queued":
                raise TransportError(f"link to {self.name!r} is down")
            if self.faults.hold:
                # Mirror InProcessTransport: the frame stays queued in
                # the slow link, but a synchronous caller cannot wait.
                raise TransportError(
                    f"link to {self.name!r} timed out (peer holding frames)"
                )
            deadline = time.monotonic() + self.timeout
            while True:
                for reply in self._collect():
                    if isinstance(reply, QueryResponseFrame):
                        return reply
                    self._stray.append(reply)
                if self._conn.closed:
                    raise TransportError(
                        f"link to {self.name!r} lost awaiting reply"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._loop.close_conn(self._conn)
                    raise TransportError(
                        f"link to {self.name!r} timed out awaiting reply"
                    )
                self._loop.run_once(min(remaining, 0.2))


class EdgeHost:
    """A fleet of edge servers over real TCP, one thread, one reactor.

    Each hosted edge dials the central listener, performs the standard
    registration handshake (blocking, exactly like
    :func:`repro.edge.serve.serve_connection`), builds its
    :class:`~repro.edge.edge_server.EdgeServer` from the received
    config, and then hands its socket to a private
    :class:`EdgeEventLoop` served by one background thread — hundreds
    of connected TCP edges for the price of one thread and a selector.

    Args:
        host / port: The central listener's address (a
            :class:`~repro.edge.deploy.Deployment`'s ``address``).
        spin: Select timeout of the serving thread's loop spins.
        loop: Share an existing reactor instead of owning a private
            one.  A sharded deployment runs one host per signer shard;
            passing the same loop to every host keeps the whole edge
            side on a single selector and a single serving thread (the
            owner's).  A host given a shared loop neither starts a
            serving thread nor closes the loop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        spin: float = 0.2,
        loop: Optional[EdgeEventLoop] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.spin = spin
        self._owns_loop = loop is None
        self.loop = loop if loop is not None else EdgeEventLoop()
        self.edges: dict = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def launch(self, name: str, io_timeout: float = 10.0) -> None:
        """Dial, handshake, and adopt one edge into the reactor."""
        from repro.edge.edge_server import EdgeServer

        sock = connect_with_retry(self.host, self.port, timeout=io_timeout)
        sock.settimeout(io_timeout)
        send_frame(sock, frame_to_bytes(HelloFrame(edge=name, cursors=())))
        data = recv_frame(sock)
        if data is None:
            raise TransportError("central closed during handshake")
        config = frame_from_bytes(data)
        edge = EdgeServer(
            name=name,
            config=config_from_frame(config),
            ack_every=config.ack_every,
            ack_bytes=config.ack_bytes,
        )
        self.edges[name] = edge

        def handler(frame_bytes: bytes, _edge=edge, _name=name):
            try:
                return _edge.handle_frame(frame_bytes)
            except Exception as exc:  # broad by design, mirror serve.py:
                # one bad frame answers with an error, not a dead edge.
                telemetry.note("edge_host.handler", exc, detail=_name)
                return [
                    frame_to_bytes(
                        QueryResponseFrame(
                            edge=_name,
                            payload=b"",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
                ]

        self.loop.register(name, sock, handler=handler)

    def launch_fleet(self, names: Sequence[str], io_timeout: float = 10.0) -> None:
        """Dial and register many edges, then start serving."""
        for name in names:
            self.launch(name, io_timeout=io_timeout)
        self.start()

    def start(self) -> None:
        if self._thread is not None or not self._owns_loop:
            # A shared loop is served by its owning host's thread;
            # spinning a second one would double-drive the selector.
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._serve, name="edge-host", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                self.loop.run_once(self.spin)
            except OSError as exc:
                # A torn socket mid-spin must not kill the host
                # thread; its conn was closed.
                telemetry.note("edge_host.serve", exc)
                continue
            except Exception as exc:  # broad by design: anything else
                # escaping run_once is a bug: count it loudly instead
                # of spinning silently over it forever.
                telemetry.note("edge_host.serve.unexpected", exc)
                continue

    def close(self) -> None:
        self._stop.set()
        self.loop.wakeup()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if self._owns_loop:
            self.loop.close()

    def __enter__(self) -> "EdgeHost":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
