"""Edge-computing simulation: central server, edge servers, clients,
network accounting, adversaries, and replication (Figure 2)."""

from repro.edge.adversary import (
    DropTuple,
    ResponseTamper,
    SpuriousTuple,
    StaleReplay,
    ValueTamper,
)
from repro.edge.central import CentralServer, ClientConfig, ReplicationMode
from repro.edge.client import Client
from repro.edge.edge_server import EdgeConfig, EdgeResponse, EdgeServer
from repro.edge.fanout import FanoutEngine, PeerState
from repro.edge.network import Channel, Transfer
from repro.edge.transport import (
    AckFrame,
    DeltaFrame,
    FaultInjector,
    InProcessTransport,
    QueryRequestFrame,
    QueryResponseFrame,
    SnapshotFrame,
    Transport,
)

__all__ = [
    "AckFrame",
    "CentralServer",
    "Channel",
    "Client",
    "ClientConfig",
    "DeltaFrame",
    "DropTuple",
    "EdgeConfig",
    "EdgeResponse",
    "EdgeServer",
    "FanoutEngine",
    "FaultInjector",
    "InProcessTransport",
    "PeerState",
    "QueryRequestFrame",
    "QueryResponseFrame",
    "ReplicationMode",
    "ResponseTamper",
    "SnapshotFrame",
    "SpuriousTuple",
    "StaleReplay",
    "Transfer",
    "Transport",
    "ValueTamper",
]
