"""Edge-computing simulation: central server, edge servers, clients,
network accounting, adversaries, and replication (Figure 2)."""

from repro.edge.adversary import (
    DropTuple,
    ResponseTamper,
    SpuriousTuple,
    StaleReplay,
    ValueTamper,
)
from repro.edge.central import (
    CentralServer,
    ClientConfig,
    RemoteEdgeHandle,
    ReplicationMode,
)
from repro.edge.client import Client
from repro.edge.deploy import Deployment, EdgeProcess, ShardedDeployment
from repro.edge.edge_server import EdgeConfig, EdgeResponse, EdgeServer
from repro.edge.fanout import (
    AdaptiveWindow,
    FanoutEngine,
    PeerState,
    SentRecord,
)
from repro.edge.network import Channel, Transfer
from repro.edge.router import (
    DeploymentQueryChannel,
    EdgeRouter,
    EdgeStats,
    MergedResponse,
    RoutedResponse,
    RoutingPolicy,
    ScatterGatherRouter,
    TransportQueryChannel,
    VerifiedResponse,
    VerifyingRouter,
    in_process_query_channel,
)
from repro.edge.sharding import ShardMap, ShardedCentral, stable_hash
from repro.edge.socket_transport import TcpTransport
from repro.edge.transport import (
    AckFrame,
    ConfigFrame,
    CursorAckFrame,
    CursorProbeFrame,
    DeltaFrame,
    FaultInjector,
    HelloFrame,
    InProcessTransport,
    QueryRequestFrame,
    QueryResponseFrame,
    SnapshotFrame,
    Transport,
)

__all__ = [
    "AckFrame",
    "AdaptiveWindow",
    "CentralServer",
    "Channel",
    "Client",
    "ClientConfig",
    "ConfigFrame",
    "CursorAckFrame",
    "CursorProbeFrame",
    "DeltaFrame",
    "Deployment",
    "DeploymentQueryChannel",
    "DropTuple",
    "EdgeConfig",
    "EdgeProcess",
    "EdgeResponse",
    "EdgeRouter",
    "EdgeServer",
    "EdgeStats",
    "FanoutEngine",
    "FaultInjector",
    "HelloFrame",
    "InProcessTransport",
    "MergedResponse",
    "PeerState",
    "QueryRequestFrame",
    "QueryResponseFrame",
    "RemoteEdgeHandle",
    "ReplicationMode",
    "ResponseTamper",
    "RoutedResponse",
    "RoutingPolicy",
    "ScatterGatherRouter",
    "SentRecord",
    "ShardMap",
    "ShardedCentral",
    "ShardedDeployment",
    "SnapshotFrame",
    "SpuriousTuple",
    "StaleReplay",
    "TcpTransport",
    "Transfer",
    "Transport",
    "TransportQueryChannel",
    "VerifiedResponse",
    "VerifyingRouter",
    "ValueTamper",
    "in_process_query_channel",
    "stable_hash",
]
