"""Edge-computing simulation: central server, edge servers, clients,
network accounting, adversaries, and replication (Figure 2)."""

from repro.edge.adversary import (
    DropTuple,
    ResponseTamper,
    SpuriousTuple,
    StaleReplay,
    ValueTamper,
)
from repro.edge.central import CentralServer, ClientConfig, ReplicationMode
from repro.edge.client import Client
from repro.edge.edge_server import EdgeResponse, EdgeServer
from repro.edge.network import Channel, Transfer

__all__ = [
    "CentralServer",
    "Channel",
    "Client",
    "ClientConfig",
    "DropTuple",
    "EdgeResponse",
    "EdgeServer",
    "ReplicationMode",
    "ResponseTamper",
    "SpuriousTuple",
    "StaleReplay",
    "Transfer",
    "ValueTamper",
]
