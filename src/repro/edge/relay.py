"""Relay tier: store-and-forward fan-out of signed frames (DESIGN.md §13).

A :class:`RelayServer` sits *between* the central signer and a group of
edge servers — the cloud→relay→edge hierarchy the edge-computing
deployment model assumes.  It dials upstream exactly like an edge
(:class:`~repro.edge.transport.HelloFrame` with ``role="relay"``),
receives the very same signed snapshot/delta frames, and re-fans them
out **byte-identical** to its downstream edges through its own
:class:`~repro.edge.fanout.FanoutEngine` (the :class:`RelayFanout`
subclass, which swaps the engine's frame source from "the live signer"
to "this relay's verbatim frame store" via the ``_``-hooks).

Trust level: a relay holds **no private signing key** and is exactly as
untrusted as an edge.  It cannot forge a frame (every delta body and
every tuple/node digest is RSA-signed by the central server, and edges
verify end-to-end), and it cannot truncate history undetected (LSN
chains are signed into the delta bodies; a gap nacks at the edge and
escalates).  The only verification a relay *can* do is the optional
spot-check — re-running the edge's signature check over a sample of
ingested deltas (``spot_check_every``) and over its whole store when a
downstream nack implicates it — purely to shorten the detection path;
end-to-end safety never depends on it.

What a relay adds to the protocol:

* **Cursor aggregation** — downstream cursor acks are folded into one
  cumulative upstream :class:`~repro.edge.transport.CursorAckFrame`
  with **min-cursor semantics**: the upstream cursor for a table is the
  minimum acknowledged ``(lsn, epoch)`` over the connected downstream
  edges (the relay's own store head when none are connected), so the
  upstream view never overstates what the *subtree* durably holds.  A
  table some connected edge has no cursor for yet is **omitted** from
  the aggregate — "no news", which upstream's drain treats as neither
  progress nor regression (see the stall bugfix in
  :meth:`FanoutEngine._drain <repro.edge.fanout.FanoutEngine._drain>`).
* **Nacks are never aggregated** — a downstream tamper/gap/diverged
  signal keeps its immediate escalation: the relay re-verifies the
  implicated stored chain, heals the edge from its own store when the
  store checks out, and only when the *store itself* is bad drops it
  and nacks ``diverged`` upstream right away.
* **Config/shard-map pass-through** — the upstream
  :class:`~repro.edge.transport.ConfigFrame` (key ring, ack policy,
  shard id + ShardMap trailing bytes) is stashed verbatim and replayed
  byte-identically to every downstream handshake and key-ring refresh;
  the relay adds nothing and signs nothing.
* **Query forwarding** — a :class:`~repro.edge.transport.QueryRequestFrame`
  arriving from upstream is forwarded round-robin to a connected edge;
  the edge's signed response travels back untouched except for the
  piggybacked cursors, which are replaced with the relay's *aggregate*
  (the response rides the upstream replication link, so its cursors
  must mean what that link's acks mean).

Thread/loop ownership: a relay is **single-thread-owned**.  The serving
loop thread (:func:`run_relay`, or a :class:`RelayHost`'s thread) runs
the upstream frame handler, the downstream :meth:`RelayFanout.pump`,
query forwarding, and the upstream outbox drain; both socket directions
live on one :class:`~repro.edge.event_loop.EdgeEventLoop` (the upstream
dial is a handler-mode connection, each downstream accept is a
:class:`~repro.edge.event_loop.ReactorTransport`), so one ``select``
serves the whole relay.  In-process tests drive the same objects from
the test thread.

The store is memory-only and append-only between snapshots (a chain
cannot be compacted below its snapshot without re-snapshotting, and a
relay cannot produce snapshots — it has no key), so a long-lived chain
grows with history; upstream heals and key rotations replace the
snapshot and restart the chain.  A relay that dies loses its store and
re-registers empty — the standard snapshot heal then rebuilds the whole
subtree, which is exactly the recovery story edges already have.
"""

from __future__ import annotations

import dataclasses
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.core.delta import delta_digest
from repro.core.digests import DigestEngine, VerifyOnlyDigestEngine
from repro.core.wire import delta_body_bytes, delta_from_bytes, snapshot_from_bytes
from repro.crypto.signatures import DigestVerifier
from repro.edge.event_loop import EdgeEventLoop, ReactorTransport
from repro.edge.fanout import FanoutEngine, PeerState
from repro.edge.socket_transport import (
    connect_with_retry,
    recv_frame,
    send_frame,
)
from repro.edge.transport import (
    AckFrame,
    ConfigFrame,
    CursorAckFrame,
    CursorProbeFrame,
    DeltaFrame,
    HelloFrame,
    QueryRequestFrame,
    QueryResponseFrame,
    SnapshotFrame,
    Transport,
    config_from_frame,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.edge import telemetry
from repro.exceptions import (
    DeltaGapError,
    ReplicationError,
    StaleKeyError,
    TransportError,
)

__all__ = ["RelayFanout", "RelayServer", "RelayHost", "run_relay"]


@dataclass
class _StoredDelta:
    """One verbatim delta frame payload held for re-fan-out."""

    lsn_first: int
    lsn_last: int
    epoch: int
    payload: bytes


@dataclass
class _TableStore:
    """The relay's holdings for one table: a snapshot frame plus the
    contiguous chain of delta frames extending it.

    Invariant: ``deltas`` is sorted, frame ``i+1``'s ``lsn_first`` is
    frame ``i``'s ``lsn_last + 1`` (the first extends
    ``snapshot.lsn``), every frame carries ``epoch``, and ``head`` is
    the last frame's ``lsn_last`` (``snapshot.lsn`` when empty).
    """

    snapshot: Optional[SnapshotFrame] = None
    deltas: list[_StoredDelta] = field(default_factory=list)
    head: int = 0
    epoch: int = 0

    def retained_bytes(self) -> int:
        """Payload bytes this table pins in memory (snapshot + chain)."""
        total = len(self.snapshot.payload) if self.snapshot else 0
        return total + sum(len(d.payload) for d in self.deltas)


class RelayFanout(FanoutEngine):
    """Downstream delivery engine reading a relay's frame store.

    Same windows, cursors, probe/settle machinery and nack escalation
    as the central's engine — only the frame *source* hooks differ:
    tables, log heads, payloads and snapshots come from the owning
    :class:`RelayServer`'s verbatim store, the config bundle is the
    stashed upstream frame, and cursor movement / downstream nacks are
    reported back to the relay (aggregate recomputation, store
    spot-verify).
    """

    def __init__(self, relay: "RelayServer", **kwargs) -> None:
        # The base engine only touches its owner through the hooks
        # below, so the relay takes the ``central`` seat wholesale.
        super().__init__(relay, **kwargs)
        self.relay = relay

    # -- frame source: the verbatim store -------------------------------

    def _tables(self) -> list:
        return [
            table
            for table, st in self.relay.store.items()
            if st.snapshot is not None
        ]

    def _has_table(self, table: str) -> bool:
        return table in self.relay.store

    def _log_head(self, table: str) -> Optional[int]:
        st = self.relay.store.get(table)
        if st is None or st.snapshot is None:
            return None
        return st.head

    def _bootstrap_lag(self, table: str) -> int:
        return 1

    def _current_epoch(self) -> int:
        config = self.relay.config
        if config is None:
            raise StaleKeyError("relay has no upstream config yet")
        return config.keyring.current_epoch

    def _issue_epoch(self, table: str) -> int:
        st = self.relay.store.get(table)
        if st is None or st.snapshot is None:
            # No chain to issue from: fall back to the ring (the
            # needs-snapshot path will fail to build a frame and flag
            # the table until the store is re-seeded).
            return self._current_epoch()
        return st.epoch

    def _peer_order(self) -> list:
        return list(self.peers.values())

    def _ack_every(self) -> int:
        return self.relay.ack_every

    def _config_frame(self) -> ConfigFrame:
        return self.relay.downstream_config_frame()

    def _shares_live_ring(self, peer: PeerState) -> bool:
        # Every downstream ring is a copy decoded from the stashed
        # frame; refreshes are always real sends.
        return False

    def _delta_payload(
        self, table: str, cursor: int, payloads: dict
    ) -> tuple[bytes | None, int]:
        st = self.relay.store.get(table)
        if st is None or st.snapshot is None:
            raise DeltaGapError(f"relay holds no chain for {table!r}")
        if cursor >= st.head:
            return (None, cursor)
        for stored in st.deltas:
            if stored.lsn_first == cursor + 1:
                return (stored.payload, stored.lsn_last)
        # The cursor does not sit on a stored frame boundary (an edge
        # resumed from state this chain generation never produced).
        raise DeltaGapError(
            f"no stored frame extends cursor {cursor} for {table!r}"
        )

    def _snapshot_frame(self, table: str, payloads: dict) -> SnapshotFrame:
        st = self.relay.store.get(table)
        if st is None or st.snapshot is None:
            raise ReplicationError(f"relay holds no snapshot for {table!r}")
        return st.snapshot

    # -- feedback into the relay ----------------------------------------

    def _on_cursors_advanced(self, peer: PeerState) -> None:
        self.relay._note_downstream_progress()

    def _on_peer_nack(self, peer: PeerState, ack, verdict: str) -> None:
        self.relay._on_downstream_nack(peer, ack, verdict)


class RelayServer:
    """Unkeyed store-and-forward node between central and its edges.

    Args:
        name: Relay name (its upstream link label / hello identity).
        window / workers / ack settings: Forwarded to the downstream
            :class:`RelayFanout`.
        spot_check_every: Verify the signature of every Nth ingested
            delta frame (``0`` = never).  Purely a detection
            accelerator — edges re-verify everything regardless.
        max_store_bytes: Per-table cap on retained payload bytes
            (``0`` = unbounded).  When a delta append pushes a table
            past the cap, the whole chain is deterministically evicted
            and a ``diverged`` nack asks upstream for a fresh snapshot
            at head — the snapshot *is* the compact representation, so
            the heal itself is the compaction.  A snapshot alone is
            never evicted (it is the minimal heal unit); the cap
            bounds the delta chain riding on top of it, which is what
            actually grows without bound on a long-lived link.

    The relay is single-thread-owned (module docstring); the lock below
    only makes the in-process test surface forgiving, it is not a
    concurrency design.
    """

    def __init__(
        self,
        name: str,
        window: int = 8,
        workers: int = 1,
        spot_check_every: int = 0,
        max_store_bytes: int = 0,
    ) -> None:
        self.name = name
        self.spot_check_every = max(0, spot_check_every)
        self.max_store_bytes = max(0, max_store_bytes)
        #: Store-hygiene telemetry: ``compacted_frames`` (deltas
        #: retired because a stored snapshot now covers them),
        #: ``store_evictions`` (byte-cap / fault-hook chain drops).
        self.counters: dict[str, int] = {
            "compacted_frames": 0,
            "store_evictions": 0,
        }
        self.store: dict[str, _TableStore] = {}
        #: Decoded verification bundle (ring used for spot-checks and
        #: cursor sanitization); ``None`` until the first ConfigFrame.
        self.config = None
        #: The upstream ConfigFrame *verbatim* — replayed byte-identical
        #: to downstream handshakes and refreshes (keyring + ack policy
        #: + shard id/map pass-through; the relay adds nothing).
        self._upstream_config: Optional[ConfigFrame] = None
        self.ack_every = 1
        self.ack_bytes = 1 << 18
        self.fanout = RelayFanout(self, window=window, workers=workers)
        self._lock = threading.RLock()
        #: Deltas ingested since the last spot check.
        self._ingested = 0
        #: Frames accepted/bytes absorbed since the last upstream ack
        #: (the same coalescing counters an edge keeps).
        self._unacked_frames = 0
        self._unacked_bytes = 0
        #: Spontaneous upstream frames (escalation nacks) + the
        #: aggregate-changed flag, drained by :meth:`pending_upstream`.
        self._outbox_lock = threading.Lock()
        self._outbox: list[bytes] = []
        self._agg_dirty = False
        self._last_agg: tuple = ()
        self._rr = 0  # round-robin index for query forwarding

    # ------------------------------------------------------------------
    # Config pass-through
    # ------------------------------------------------------------------

    def adopt_config(self, frame: ConfigFrame) -> None:
        """Install the upstream verification bundle (handshake reply or
        in-stream key-ring refresh) and stash it verbatim for
        downstream replay."""
        with self._lock:
            self._upstream_config = frame
            self.config = config_from_frame(frame)
            self.ack_every = max(1, frame.ack_every)
            self.ack_bytes = max(1, frame.ack_bytes)

    def downstream_config_frame(self) -> ConfigFrame:
        """The stashed upstream ConfigFrame, byte-identical.

        Raises:
            ReplicationError: Before the first upstream handshake.
        """
        if self._upstream_config is None:
            raise ReplicationError(
                f"relay {self.name!r} has no upstream config yet"
            )
        return self._upstream_config

    # ------------------------------------------------------------------
    # Downstream peer management
    # ------------------------------------------------------------------

    def attach_edge(
        self,
        name: str,
        transport: Transport,
        cursors: Iterable[tuple[str, int, int]] = (),
    ) -> PeerState:
        """Register a downstream edge, sanitizing its resume cursors.

        Only cursors that land on a stored frame boundary of the
        current chain generation (and match its epoch) are kept — a
        cursor from a previous generation cannot be extended by stored
        frames and would only gap-nack; dropping it routes the edge
        through the snapshot heal instead.
        """
        kept = []
        with self._lock:
            for table, lsn, epoch in cursors:
                st = self.store.get(table)
                if st is None or st.snapshot is None or epoch != st.epoch:
                    continue
                boundaries = {st.snapshot.lsn}
                boundaries.update(d.lsn_last for d in st.deltas)
                if lsn in boundaries:
                    kept.append((table, lsn, epoch))
        peer = self.fanout.attach(name, transport, cursors=kept)
        self._note_downstream_progress()
        return peer

    def prune_disconnected(self) -> None:
        """Drop peers whose links are dead (a reconnect re-attaches
        under the same name with a fresh transport)."""
        dead = [
            name
            for name, peer in self.fanout.peers.items()
            if not peer.transport.connected
        ]
        if not dead:
            return
        for name in dead:
            del self.fanout.peers[name]
        self._note_downstream_progress()

    # ------------------------------------------------------------------
    # Upstream frame handling
    # ------------------------------------------------------------------

    def handle_frame(self, data: bytes) -> list[bytes]:
        """Process one upstream frame; returns serialized replies.

        Mirrors :meth:`EdgeServer.handle_frame
        <repro.edge.edge_server.EdgeServer.handle_frame>`'s reply
        discipline (immediate acks on heal boundaries and probes,
        coalesced cumulative acks for accepted deltas, immediate nacks
        for rejections) — except every cumulative ack carries the
        relay's **aggregated** cursors, and query frames are forwarded
        downstream instead of executed.
        """
        frame = frame_from_bytes(data)
        with self._lock:
            if isinstance(frame, SnapshotFrame):
                return self._ingest_snapshot(frame)
            if isinstance(frame, DeltaFrame):
                return self._ingest_delta(frame)
            if isinstance(frame, CursorProbeFrame):
                return [frame_to_bytes(self._aggregate_ack())]
            if isinstance(frame, ConfigFrame):
                self.adopt_config(frame)
                reply = AckFrame(
                    edge=self.name, table="", ok=True, lsn=0,
                    epoch=self.config.keyring.current_epoch, reason="config",
                )
                return [frame_to_bytes(reply)]
            if isinstance(frame, QueryRequestFrame):
                return [frame_to_bytes(self._forward_query(frame))]
        raise TransportError(
            f"relay {self.name!r} cannot handle {type(frame).__name__}"
        )

    def _ingest_snapshot(self, frame: SnapshotFrame) -> list[bytes]:
        """Store a snapshot verbatim and restart the table's chain.

        Stored deltas that still contiguously extend the new snapshot's
        LSN are kept (an upstream heal that merely re-bases does not
        throw away the tail); everything else is dropped.
        """
        st = self.store.setdefault(frame.table, _TableStore())
        st.snapshot = frame
        st.epoch = frame.epoch
        head = frame.lsn
        kept: list[_StoredDelta] = []
        for stored in sorted(st.deltas, key=lambda d: d.lsn_first):
            if stored.lsn_first == head + 1 and stored.epoch == frame.epoch:
                kept.append(stored)
                head = stored.lsn_last
        self.counters["compacted_frames"] += len(st.deltas) - len(kept)
        st.deltas = kept
        st.head = head
        self._note_downstream_progress()
        # Heal boundary: the sender is waiting on this O(tree) transfer
        # — always answer immediately with the aggregate.
        return [frame_to_bytes(self._aggregate_ack())]

    def _ingest_delta(self, frame: DeltaFrame) -> list[bytes]:
        table = frame.table
        st = self.store.get(table)
        if st is None or st.snapshot is None:
            # Nothing to extend: ask for a (re-)seed.
            return [frame_to_bytes(self._nack(table, "diverged"))]
        try:
            delta = delta_from_bytes(frame.payload)
        except Exception as exc:  # broad by design: adversarial bytes
            # raise anything; the nack is the answer, the note the trace.
            telemetry.note("relay.ingest_delta.parse", exc, detail=table)
            return [frame_to_bytes(self._nack(table, "tamper"))]
        if delta.table != table:
            return [frame_to_bytes(self._nack(table, "tamper"))]
        self._ingested += 1
        if (
            self.spot_check_every
            and self._ingested % self.spot_check_every == 0
            and not self._verify_delta_payload(table, frame.payload)
        ):
            return [frame_to_bytes(self._nack(table, "tamper"))]
        if delta.epoch != st.epoch:
            # Cross-epoch extension needs a fresh snapshot, exactly as
            # on an edge replica.
            return [frame_to_bytes(self._nack(table, "gap"))]
        if delta.lsn_last <= st.head:
            return [frame_to_bytes(self._nack(table, "stale"))]
        if delta.lsn_first > st.head + 1:
            return [frame_to_bytes(self._nack(table, "gap"))]
        if delta.lsn_first <= st.head:
            # Overlap: upstream resent from its (aggregated) cursor,
            # which is below our head.  Truncate the chain back to that
            # boundary and extend with the fresh frame — aggregated
            # cursors are always stored-frame boundaries (edges ack
            # only whole frames), so a misaligned overlap means the
            # generations diverged: reload wholesale.
            kept = [d for d in st.deltas if d.lsn_last < delta.lsn_first]
            chain_end = kept[-1].lsn_last if kept else st.snapshot.lsn
            if chain_end != delta.lsn_first - 1:
                return [frame_to_bytes(self._nack(table, "diverged"))]
            st.deltas = kept
        st.deltas.append(
            _StoredDelta(
                lsn_first=delta.lsn_first,
                lsn_last=delta.lsn_last,
                epoch=delta.epoch,
                payload=frame.payload,
            )
        )
        st.head = delta.lsn_last
        if (
            self.max_store_bytes
            and st.deltas
            and st.retained_bytes() > self.max_store_bytes
        ):
            # Over the cap: evict the chain and heal by snapshot — the
            # fresh snapshot replaces snapshot + deltas wholesale, so
            # the nack below is also the compaction request.
            self._evict_table(st)
            return [frame_to_bytes(self._nack(table, "diverged"))]
        # Accepted: coalesce the upstream ack exactly like an edge.
        self._unacked_frames += 1
        self._unacked_bytes += len(frame.payload)
        if (
            self._unacked_frames >= self.ack_every
            or self._unacked_bytes >= self.ack_bytes
        ):
            return [frame_to_bytes(self._aggregate_ack())]
        return []

    def _nack(self, table: str, reason: str) -> AckFrame:
        """An immediate upstream nack carrying the *aggregated* cursor
        (never the store head): the upstream retry resumes from what
        the subtree durably holds, and the reported position can never
        overstate it."""
        lsn, epoch = 0, 0
        for t, cursor_lsn, cursor_epoch in self.aggregated_cursors():
            if t == table:
                lsn, epoch = cursor_lsn, cursor_epoch
                break
        return AckFrame(
            edge=self.name, table=table, ok=False, lsn=lsn, epoch=epoch,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # Cursor aggregation (min-cursor semantics)
    # ------------------------------------------------------------------

    def aggregated_cursors(self) -> tuple[tuple[str, int, int], ...]:
        """The subtree's cumulative cursors, one entry per stored table.

        With no connected downstream edges the relay itself is the
        subtree and reports its store head.  Otherwise each table
        reports the **minimum** acknowledged ``(lsn, epoch)`` over the
        connected edges; a table some connected edge holds no cursor
        for yet is omitted entirely — "no news", never a claim.
        Cursor reads are lock-free: per-peer cursors are monotone, so a
        torn read can only be *older*, which min-aggregation absorbs.
        """
        peers = [
            p for p in self.fanout.peers.values() if p.transport.connected
        ]
        cursors = []
        for table in sorted(self.store):
            st = self.store[table]
            if st.snapshot is None:
                continue
            if not peers:
                cursors.append((table, st.head, st.epoch))
                continue
            entries = []
            for peer in peers:
                lsn = peer.acked_lsns.get(table)
                if lsn is None:
                    entries = None
                    break
                entries.append((lsn, peer.acked_epochs.get(table, 0)))
            if entries is None:
                continue
            lsn, epoch = min(entries)
            cursors.append((table, lsn, epoch))
        return tuple(cursors)

    def _aggregate_ack(self) -> CursorAckFrame:
        """One cumulative upstream ack; resets the coalescing counters
        and the spontaneous-ack dirty flag (this ack carries the very
        aggregate the flag would have announced)."""
        self._unacked_frames = 0
        self._unacked_bytes = 0
        agg = self.aggregated_cursors()
        with self._outbox_lock:
            self._agg_dirty = False
            self._last_agg = agg
        return CursorAckFrame(edge=self.name, cursors=agg)

    def _note_downstream_progress(self) -> None:
        """Mark the aggregate dirty if it moved — the serving loop's
        :meth:`pending_upstream` drain turns that into at most one
        spontaneous upstream :class:`CursorAckFrame` per spin."""
        agg = self.aggregated_cursors()
        with self._outbox_lock:
            if agg != self._last_agg:
                self._last_agg = agg
                self._agg_dirty = True

    def pending_upstream(self) -> list[bytes]:
        """Drain spontaneous upstream frames: queued escalation nacks
        first (never coalesced), then at most one cumulative ack when
        the aggregate advanced since the last one sent."""
        with self._outbox_lock:
            frames = list(self._outbox)
            self._outbox.clear()
            dirty = self._agg_dirty
            self._agg_dirty = False
        if dirty:
            frames.append(
                frame_to_bytes(
                    CursorAckFrame(
                        edge=self.name, cursors=self.aggregated_cursors()
                    )
                )
            )
        return frames

    def store_cursors(self) -> tuple[tuple[str, int, int], ...]:
        """``(table, head, epoch)`` per stored chain — what a live
        relay reports in a *reconnect* hello (it can genuinely resume
        from here; the aggregate is what its acks report)."""
        return tuple(
            (table, st.head, st.epoch)
            for table, st in sorted(self.store.items())
            if st.snapshot is not None
        )

    # ------------------------------------------------------------------
    # Downstream nack escalation & spot-checks
    # ------------------------------------------------------------------

    def _on_downstream_nack(self, peer: PeerState, ack, verdict: str) -> None:
        """A downstream edge rejected a stored frame.

        ``gap`` verdicts stay local (the engine retries / heals from
        the store).  ``snapshot`` verdicts implicate the store itself:
        re-verify the whole chain; if it checks out the edge is at
        fault and heals from our (good) snapshot, if it does not the
        store is dropped and a ``diverged`` nack is queued upstream
        immediately — downstream nacks are never aggregated away.
        """
        if verdict != "snapshot":
            return
        table = ack.table
        if not table or table not in self.store:
            return
        if self._verify_table(table):
            return  # store is fine; the engine already heals the edge
        self._evict_table(self.store[table])
        with self._outbox_lock:
            self._outbox.append(
                frame_to_bytes(
                    AckFrame(
                        edge=self.name, table=table, ok=False,
                        lsn=0, epoch=0, reason="diverged",
                    )
                )
            )

    def _evict_table(self, st: _TableStore) -> None:
        """Deterministically drop one table's chain (snapshot heal path)."""
        st.snapshot = None
        st.deltas = []
        st.head = 0
        self.counters["store_evictions"] += 1

    def drop_store(self, table: str) -> bool:
        """Chaos hook: lose one table's stored chain as a fault.

        Models a relay that lost (or corrupted) its in-memory store
        without dying — the same state a byte-cap eviction or a failed
        self-verification produces.  Queues an immediate ``diverged``
        nack upstream so the next serve-loop drain requests the
        snapshot heal.  Returns False when there was nothing to drop.
        """
        with self._lock:
            st = self.store.get(table)
            if st is None or st.snapshot is None:
                return False
            self._evict_table(st)
            with self._outbox_lock:
                self._outbox.append(
                    frame_to_bytes(
                        AckFrame(
                            edge=self.name, table=table, ok=False,
                            lsn=0, epoch=0, reason="diverged",
                        )
                    )
                )
            self._note_downstream_progress()
            return True

    def _verify_table(self, table: str) -> bool:
        """Best-effort verification of one stored chain: reconstruct
        the snapshot under the verify-only engine and check every
        stored delta's body signature.  A relay cannot verify *query
        semantics* (it holds no replicas) — this is the same wire-level
        check an edge performs, run over the store."""
        st = self.store.get(table)
        if st is None or st.snapshot is None or self.config is None:
            return False
        try:
            public_key = self.config.keyring.public_key_for(st.snapshot.epoch)
            signing = VerifyOnlyDigestEngine(
                DigestEngine(self.config.db_name, policy=self.config.policy),
                public_key,
                st.snapshot.epoch,
            )
            snapshot_from_bytes(st.snapshot.payload, signing)
        except Exception as exc:  # broad by design: a corrupted stored
            # snapshot fails verification however it fails to parse.
            telemetry.note("relay.verify_table", exc, detail=table)
            return False
        return all(
            self._verify_delta_payload(table, d.payload) for d in st.deltas
        )

    def _verify_delta_payload(self, table: str, payload: bytes) -> bool:
        if self.config is None:
            return False
        try:
            delta = delta_from_bytes(payload)
        except Exception as exc:  # broad by design, same: corrupt bytes
            # are a verification failure, not a crash.
            telemetry.note("relay.verify_delta", exc, detail=table)
            return False
        if delta.table != table or delta.signature is None:
            return False
        try:
            public_key = self.config.keyring.public_key_for(delta.epoch)
        except StaleKeyError:
            return False
        body = delta_body_bytes(delta, public_key.signature_len)
        return DigestVerifier(public_key).verify_value(
            delta.signature, delta_digest(body)
        )

    # ------------------------------------------------------------------
    # Query forwarding
    # ------------------------------------------------------------------

    def _forward_query(self, frame: QueryRequestFrame) -> QueryResponseFrame:
        """Round-robin the query to a connected downstream edge.

        The edge's signed response travels back untouched except for
        the piggybacked cursors, which are replaced with the relay's
        aggregate — on the upstream link a cursor means "what this
        peer's subtree acknowledges", and the answering edge's own
        cursors are already folded into that aggregate.
        """
        peers = [
            p for p in self.fanout.peers.values() if p.transport.connected
        ]
        if not peers:
            return QueryResponseFrame(
                edge=self.name, payload=b"",
                error=f"relay {self.name!r} has no connected edges",
            )
        last_error = ""
        for i in range(len(peers)):
            peer = peers[(self._rr + i) % len(peers)]
            try:
                reply = peer.transport.request(frame)
            except TransportError as exc:
                last_error = str(exc)
                continue
            if not isinstance(reply, QueryResponseFrame):
                last_error = f"unexpected {type(reply).__name__}"
                continue
            self._rr = (self._rr + i + 1) % len(peers)
            self.fanout.observe_response_cursors(peer.name, reply.cursors)
            return dataclasses.replace(
                reply, cursors=self.aggregated_cursors()
            )
        return QueryResponseFrame(
            edge=self.name, payload=b"",
            error=f"no downstream edge answered: {last_error}",
        )


# ---------------------------------------------------------------------------
# Socket serving
# ---------------------------------------------------------------------------


def run_relay(
    name: str,
    host: str,
    port: int,
    listen_host: str = "127.0.0.1",
    listen_port: int = 0,
    *,
    spin: float = 0.05,
    io_timeout: float = 30.0,
    max_reconnects: int | None = None,
    retry_attempts: int = 40,
    retry_delay: float = 0.25,
    spot_check_every: int = 0,
    max_store_bytes: int = 0,
    verbose: bool = False,
    stop_event: threading.Event | None = None,
    ready: Callable[["RelayServer", tuple[str, int]], None] | None = None,
) -> "RelayServer":
    """Serve one relay: dial upstream, listen downstream, one loop.

    Both socket directions share a single
    :class:`~repro.edge.event_loop.EdgeEventLoop`: the upstream
    connection is a handler-mode registration (incoming frames are
    answered inline by :meth:`RelayServer.handle_frame`), each accepted
    downstream edge becomes a
    :class:`~repro.edge.event_loop.ReactorTransport` the
    :class:`RelayFanout` pumps.  Each loop spin: run the selector, pump
    stored frames downstream, drain the upstream outbox (spontaneous
    aggregate acks and escalation nacks).

    Args:
        name: Relay name (upstream hello identity).
        host / port: The upstream listener (central, or another relay).
        listen_host / listen_port: Where downstream edges dial
            (``0`` = ephemeral; the bound address is reported through
            ``ready``).
        spin: Selector timeout per loop spin.
        io_timeout: Socket receive timeout (both directions).
        max_reconnects: Upstream re-dial budget after disconnects
            (``None`` = until dialing itself fails).
        retry_attempts / retry_delay: Per-dial retry budget.
        spot_check_every: See :class:`RelayServer`.
        max_store_bytes: See :class:`RelayServer`.
        verbose: Narrate connections on stdout.
        stop_event: Cooperative shutdown signal.
        ready: Called once with ``(relay, (host, port))`` after the
            downstream listener is bound (before the upstream dial).

    Returns:
        The relay server, once the upstream is gone for good or
        ``stop_event`` is set.
    """
    relay = RelayServer(
        name,
        spot_check_every=spot_check_every,
        max_store_bytes=max_store_bytes,
    )
    loop = EdgeEventLoop()
    relay.fanout.reactor = loop
    stop = stop_event if stop_event is not None else threading.Event()

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((listen_host, listen_port))
    listener.listen()
    bound = listener.getsockname()[:2]
    if ready is not None:
        ready(relay, bound)
    if verbose:
        print(f"[relay {name}] listening on {bound[0]}:{bound[1]}", flush=True)

    def _downstream_handshake(conn: socket.socket) -> None:
        conn.settimeout(io_timeout)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        data = recv_frame(conn)
        if data is None:
            raise TransportError("edge closed during handshake")
        hello = frame_from_bytes(data)
        if not isinstance(hello, HelloFrame):
            raise TransportError(
                f"expected HelloFrame, got {type(hello).__name__}"
            )
        # An edge may dial before the upstream handshake delivered the
        # config; make it wait briefly instead of failing its dial.
        deadline = time.monotonic() + io_timeout
        while relay._upstream_config is None:
            if stop.is_set() or time.monotonic() > deadline:
                raise TransportError("relay has no upstream config yet")
            time.sleep(0.05)
        send_frame(conn, frame_to_bytes(relay.downstream_config_frame()))
        transport = ReactorTransport(hello.edge, loop, conn, timeout=io_timeout)
        relay.attach_edge(hello.edge, transport, cursors=hello.cursors)
        if verbose:
            print(f"[relay {name}] edge {hello.edge} attached", flush=True)

    def _accept_loop() -> None:
        while not stop.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: shutdown
            try:
                _downstream_handshake(conn)
            except (TransportError, OSError) as exc:
                # A broken dialer must not take the listener down.
                telemetry.note("relay.accept_loop.handshake", exc)
                try:
                    conn.close()
                except OSError:
                    pass
            except Exception as exc:  # broad by design: anything else is
                # a bug worth counting, not weather.
                telemetry.note("relay.accept_loop.unexpected", exc)
                try:
                    conn.close()
                except OSError:
                    pass

    accept_thread = threading.Thread(
        target=_accept_loop, name=f"relay-{name}-accept", daemon=True
    )
    accept_thread.start()

    reconnects = 0
    try:
        while not stop.is_set():
            try:
                sock = connect_with_retry(
                    host, port, attempts=retry_attempts, delay=retry_delay,
                    timeout=io_timeout,
                )
            except TransportError:
                if reconnects:
                    break  # upstream gone for good: normal shutdown
                raise
            sock.settimeout(io_timeout)
            try:
                send_frame(
                    sock,
                    frame_to_bytes(
                        HelloFrame(
                            edge=name,
                            cursors=relay.store_cursors(),
                            role="relay",
                        )
                    ),
                )
                data = recv_frame(sock)
                if data is None:
                    raise TransportError("upstream closed during handshake")
                reply = frame_from_bytes(data)
                if not isinstance(reply, ConfigFrame):
                    raise TransportError(
                        f"expected ConfigFrame, got {type(reply).__name__}"
                    )
                relay.adopt_config(reply)
            except (TransportError, OSError) as exc:
                telemetry.note("relay.upstream.handshake", exc)
                try:
                    sock.close()
                except OSError:
                    pass
                reconnects += 1
                if max_reconnects is not None and reconnects > max_reconnects:
                    break
                continue
            if verbose:
                print(f"[relay {name}] connected to {host}:{port}", flush=True)
            sock.setblocking(False)
            upstream = loop.register(
                f"upstream:{name}", sock, handler=relay.handle_frame
            )
            while not stop.is_set() and not upstream.closed:
                loop.run_once(spin)
                relay.prune_disconnected()
                relay.fanout.pump()
                for frame_bytes in relay.pending_upstream():
                    if upstream.closed:
                        break
                    loop.enqueue(upstream, frame_bytes)
            if not upstream.closed:
                loop.close_conn(upstream)
            if verbose:
                print(f"[relay {name}] upstream disconnected", flush=True)
            reconnects += 1
            if max_reconnects is not None and reconnects > max_reconnects:
                break
    finally:
        stop.set()
        try:
            listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            listener.close()
        except OSError:
            pass
        loop.close()
        accept_thread.join(timeout=5)
    return relay


class RelayHost:
    """Run one socket relay on a background thread (tests / benches).

    The in-process counterpart of ``python -m repro.edge.serve
    --relay``: same :func:`run_relay` loop, same wire traffic, no
    subprocess.  Use as a context manager::

        with RelayHost("relay-0", upstream=deploy.address) as host:
            host.wait_ready()
            edges = EdgeHost(*host.address)
            ...
    """

    def __init__(
        self,
        name: str,
        upstream: tuple[str, int],
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        spin: float = 0.01,
        io_timeout: float = 30.0,
        spot_check_every: int = 0,
        max_store_bytes: int = 0,
    ) -> None:
        self.name = name
        self.upstream = upstream
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.spin = spin
        self.io_timeout = io_timeout
        self.spot_check_every = spot_check_every
        self.max_store_bytes = max_store_bytes
        self.relay: Optional[RelayServer] = None
        self.address: Optional[tuple[str, int]] = None
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "RelayHost":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name=f"relay-host-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        def _on_ready(relay: RelayServer, address: tuple[str, int]) -> None:
            self.relay = relay
            self.address = address
            self._ready.set()

        try:
            run_relay(
                self.name,
                self.upstream[0],
                self.upstream[1],
                listen_host=self.listen_host,
                listen_port=self.listen_port,
                spin=self.spin,
                io_timeout=self.io_timeout,
                spot_check_every=self.spot_check_every,
                max_store_bytes=self.max_store_bytes,
                stop_event=self._stop,
                ready=_on_ready,
            )
        finally:
            self._ready.set()  # never leave a waiter hanging on a crash

    def wait_ready(self, timeout: float = 30.0) -> tuple[str, int]:
        """Block until the downstream listener is bound; returns its
        address.

        Raises:
            TransportError: If the relay did not come up in time.
        """
        if not self._ready.wait(timeout) or self.address is None:
            raise TransportError(
                f"relay {self.name!r} did not come up within {timeout}s"
            )
        return self.address

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "RelayHost":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
