"""Adversary models for the unsecured edge servers.

Section 3.1: "the edge servers are assumed to be unsecured, meaning it
is possible for a hacker to tamper with the data there, but the servers
themselves do not act maliciously, e.g. they do not intentionally drop
qualifying tuples from the query results."

The adversaries here cover both sides of that line:

* Detected by the mechanism (the paper's integrity guarantees):
  :class:`ValueTamper`, :class:`SpuriousTuple`, :class:`ResponseTamper`,
  :class:`DropTuple` (without cover), :class:`StaleReplay` (with key
  rotation + key ring).
* The documented trust boundary: :class:`DropTuple` *with* cover — a
  malicious edge that re-covers a dropped tuple with its signed digest
  passes verification, which is exactly why the paper assumes servers
  do not act maliciously.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.core.vo import AuthenticatedResult, VOEntry, VOEntryKind
from repro.crypto.signatures import SignedDigest
from repro.db.rows import Row
from repro.edge.edge_server import EdgeServer
from repro.exceptions import EdgeError

__all__ = [
    "ValueTamper",
    "SpuriousTuple",
    "DropTuple",
    "ResponseTamper",
    "StaleReplay",
]


@dataclass
class ValueTamper:
    """Corrupt a stored value in the edge's replica (at-rest tampering).

    The replica's tree is modified in place; its digests are *not*
    (the hacker cannot sign), so any query whose result covers the
    tuple fails verification at the client.
    """

    table: str
    key: Any
    column: str
    new_value: Any

    def apply(self, edge: EdgeServer) -> None:
        """Mutate the replica."""
        vbt = edge.replica(self.table)
        leaf = vbt.tree.find_leaf(self.key)
        try:
            idx = leaf.keys.index(self.key)
        except ValueError:
            raise EdgeError(f"key {self.key!r} not found on edge") from None
        old_row: Row = leaf.values[idx]
        leaf.values[idx] = old_row.replace(**{self.column: self.new_value})


@dataclass
class SpuriousTuple:
    """Insert a forged tuple into the replica with fabricated digests.

    The hacker can write to the tree but cannot produce valid
    signatures, so it fabricates random ones; verification fails on
    signature recovery mismatch.
    """

    table: str
    row_values: tuple
    seed: int = 0

    def apply(self, edge: EdgeServer) -> None:
        """Insert the forged row + garbage digest material.

        The row is spliced directly into the leaf (a page-level hack),
        NOT inserted through the B-tree API — a real attacker edits
        storage and cannot trigger legitimate rebalancing + re-signing.
        """
        import bisect

        vbt = edge.replica(self.table)
        row = Row(vbt.schema, self.row_values)
        leaf = vbt.tree.find_leaf(row.key)
        idx = bisect.bisect_left(leaf.keys, row.key)
        if idx < len(leaf.keys) and leaf.keys[idx] == row.key:
            raise EdgeError(f"key {row.key!r} already exists on edge")
        leaf.keys.insert(idx, row.key)
        leaf.values.insert(idx, row)
        vbt.tree._size += 1
        rng = random.Random(self.seed)
        engine = vbt.signing.engine
        digests = engine.tuple_digests(vbt.table_name, row)
        fake = lambda: SignedDigest(
            signature=rng.getrandbits(256), epoch=0
        )
        from repro.core.vbtree import TupleAuth

        vbt._tuple_auth[row.key] = TupleAuth(
            digests=digests,
            signed_tuple=fake(),
            signed_attrs=tuple(fake() for _ in row.values),
        )


@dataclass
class DropTuple:
    """Drop the i-th tuple from every outgoing result.

    With ``cover=False`` the VO no longer accounts for the tuple and
    verification fails.  With ``cover=True`` the (malicious) edge adds
    the dropped tuple's signed digest to ``D_S`` — the attack the
    paper's trust model explicitly excludes; verification passes, which
    the adversary tests pin as the documented boundary.
    """

    table: str
    index: int = 0
    cover: bool = False

    def install(self, edge: EdgeServer) -> None:
        """Register the in-flight interceptor on the edge."""
        vbt = edge.replica(self.table)

        def interceptor(result: AuthenticatedResult) -> AuthenticatedResult:
            if result.table != self.table or self.index >= len(result.rows):
                return result
            dropped_key = result.keys[self.index]
            result.rows.pop(self.index)
            result.keys.pop(self.index)
            if result.vo.result_positions is not None:
                result.vo.result_positions.pop(self.index)
            # Remove the dropped row's projection digests and reindex.
            filtered_count = len(result.all_columns) - len(result.columns)
            if result.vo.projection_entries and filtered_count:
                first = result.vo.projection_entries[0]
                if first.row_index is None:
                    # FLAT_SET: entries were appended row-by-row; the
                    # malicious edge knows the construction order.
                    start = self.index * filtered_count
                    del result.vo.projection_entries[
                        start : start + filtered_count
                    ]
                else:
                    kept = []
                    for entry in result.vo.projection_entries:
                        if entry.row_index == self.index:
                            continue
                        if entry.row_index > self.index:
                            kept.append(
                                VOEntry(
                                    kind=entry.kind,
                                    signed=entry.signed,
                                    row_index=entry.row_index - 1,
                                    attr_index=entry.attr_index,
                                )
                            )
                        else:
                            kept.append(entry)
                    result.vo.projection_entries = kept
            if self.cover:
                auth = vbt.tuple_auth(dropped_key)
                result.vo.selection_entries.append(
                    VOEntry(kind=VOEntryKind.TUPLE, signed=auth.signed_tuple)
                )
            return result

        edge.add_interceptor(interceptor)


@dataclass
class ResponseTamper:
    """Rewrite a value in flight (man-in-the-middle on the response)."""

    row_index: int
    column_index: int
    new_value: Any

    def install(self, edge: EdgeServer) -> None:
        """Register the in-flight interceptor on the edge."""

        def interceptor(result: AuthenticatedResult) -> AuthenticatedResult:
            if self.row_index < len(result.rows):
                row = list(result.rows[self.row_index])
                if self.column_index < len(row):
                    row[self.column_index] = self.new_value
                    result.rows[self.row_index] = tuple(row)
            return result

        edge.add_interceptor(interceptor)


@dataclass
class StaleReplay:
    """Serve data signed under an expired key epoch.

    Models an edge server that simply never applies updates: after the
    central server rotates its key (and the validity window lapses),
    clients holding the key ring reject the old epoch's signatures with
    a stale-key verdict.  Nothing to install — just *don't* propagate
    to this edge; the class exists to document the scenario and to
    assert staleness in tests.
    """

    table: str

    def is_stale(self, central, edge: EdgeServer) -> bool:
        """True if the edge's replica is behind the central server.

        Staleness is central-side knowledge (the fan-out engine's
        ack-fed cursors) — an unsecured edge cannot be asked how stale
        it is, and holds no reference to the central log to find out.
        """
        return central.staleness(edge, self.table) > 0
