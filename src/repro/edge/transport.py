"""Message transport between the central server and its edge servers.

The paper's security model (Section 3.1, Figure 2) places edge servers
*outside* the trust boundary: the central DBMS must be reachable from an
edge only through an authenticated message channel, never through shared
objects.  This module is that boundary.  All central↔edge traffic —
snapshot transfers, replica delta batches, acknowledgements, and query
request/responses — travels as typed, wire-serializable **frames** over
a pluggable :class:`Transport`.

The in-process implementation (:class:`InProcessTransport`) absorbs the
byte/latency accounting that used to live on raw
:class:`~repro.edge.network.Channel` objects (one channel per
direction), and adds **fault injection** so the fan-out engine's flow
control and healing paths can be exercised deterministically:

* ``partitioned`` — the link is down; sends fail outright.
* ``drop_next`` — the next N frames are lost in flight (bytes leave the
  sender but never reach the edge, and no ack comes back).
* ``hold`` — a slow edge: frames queue in the link instead of being
  delivered; they drain on :meth:`InProcessTransport.flush` once the
  fault clears.  Combined with the fan-out engine's bounded in-flight
  window this models per-edge backpressure.

A real-socket transport only needs to reimplement ``send``/``flush``
over its medium; the frame codec is already byte-exact.  Two exist:
the thread-per-edge :class:`~repro.edge.socket_transport.TcpTransport`
and the event-loop :class:`~repro.edge.event_loop.ReactorTransport`,
which honours the same three fault states by gating its connection's
outbound queue (see :attr:`FaultInjector.blocks_delivery`).

Role and ownership: the codec is shared vocabulary, not a seat — the
same nine frames serve central→edge links, central→relay links, and
relay→edge links (the relay forwards replication frames *verbatim*,
which is why byte-exactness is a protocol property and not a bench
nicety).  Nothing in this module holds a signing key or verifies a
signature: integrity lives inside the payloads (signed deltas,
snapshots, VOs), so the transport layer — and anything that can
read/modify it, a relay included — is untrusted by construction.  A
``Transport`` instance belongs to the single sender thread that calls
``send``/``flush``; concurrency, where it exists, is the medium's
concern (the reactor's queue lock, the TCP transport's per-connection
thread), never the codec's.  The authoritative field tables for every
frame live in ``docs/ARCHITECTURE.md`` (enforced by
``tools/check_docs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.crypto.encoding import (
    decode_uint,
    decode_value,
    decode_values,
    encode_uint,
    encode_value,
    encode_values,
)
from repro.edge.network import Channel, Transfer
from repro.exceptions import TransportError

__all__ = [
    "SnapshotFrame",
    "DeltaFrame",
    "AckFrame",
    "CursorAckFrame",
    "CursorProbeFrame",
    "QueryRequestFrame",
    "QueryResponseFrame",
    "HelloFrame",
    "ConfigFrame",
    "config_to_frame",
    "config_from_frame",
    "range_query_frame",
    "secondary_query_frame",
    "select_query_frame",
    "frame_to_bytes",
    "frame_from_bytes",
    "FaultInjector",
    "SendOutcome",
    "Transport",
    "InProcessTransport",
]


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SnapshotFrame:
    """A full replica transfer (bootstrap / gap / rotation / heal).

    Attributes:
        table: Replica name (base table, join view, or secondary index).
        lsn: Delta-log cursor the snapshot corresponds to.
        epoch: Key epoch every signature in the payload was issued under.
        naive: Whether the edge should also maintain the Naive
            baseline's per-tuple signature store for this replica (the
            payload already carries the signed tuple/attribute digests
            the store needs).
        payload: :func:`repro.core.wire.snapshot_to_bytes` output.
    """

    table: str
    lsn: int
    epoch: int
    naive: bool
    payload: bytes


@dataclass(frozen=True)
class DeltaFrame:
    """One sealed replica delta (or coalesced batch) for ``table``."""

    table: str
    payload: bytes


@dataclass(frozen=True)
class AckFrame:
    """Edge→central acknowledgement carrying the edge's cursor.

    Attributes:
        edge: Responding edge server's name.
        table: Replica the ack refers to.
        ok: True if the frame was applied.
        lsn: The edge's delta cursor for ``table`` *after* processing.
        epoch: Key epoch of the edge's replica after processing.
        reason: Nack reason code (``""`` when ok) — one of ``stale``,
            ``gap``, ``tamper``, ``diverged``, ``config`` (unknown key
            epoch: re-send the config bundle, then retry), ``error``.
    """

    edge: str
    table: str
    ok: bool
    lsn: int
    epoch: int
    reason: str = ""


@dataclass(frozen=True)
class CursorAckFrame:
    """Edge→central cumulative acknowledgement (DESIGN.md section 10).

    One frame acknowledges *everything* the edge has applied: it
    carries the edge's per-table ``(lsn, epoch)`` cursors, and the
    fan-out engine treats any cursor ≥ a sent frame's LSN as
    acknowledging that frame and everything below it.  Edges emit it on
    a count/byte threshold (not per frame — the whole point), on heal
    boundaries (snapshot installs), and in reply to a
    :class:`CursorProbeFrame`; rejections still travel as immediate
    :class:`AckFrame` nacks, so coalescing can never mask a
    tamper/gap signal.

    Attributes:
        edge: Responding edge server's name.
        cursors: ``(table, lsn, epoch)`` for every replica the edge
            holds — cumulative, never incremental.
    """

    edge: str
    cursors: tuple[tuple[str, int, int], ...] = ()


@dataclass(frozen=True)
class CursorProbeFrame:
    """Central→edge ack solicitation (DESIGN.md section 10).

    A tiny control frame the fan-out engine sends when it needs the
    edge's cursors *now* (a settle point — ``drain(wait=True)``) and
    coalescing may be holding them back.  The edge answers immediately
    with a cumulative :class:`CursorAckFrame`.  One probe settles an
    entire pipelined window, which is what makes batched acks safe to
    wait on.
    """


@dataclass(frozen=True)
class QueryRequestFrame:
    """A client query addressed to an edge server.

    Attributes:
        kind: ``range`` (primary-key range), ``select`` (general
            predicate), or ``secondary`` (range on an indexed
            attribute).
        table: Base table / view name.
        attribute: Indexed attribute (``secondary`` only).
        low/high: Range bounds (``range``/``secondary``).
        columns: Projection, or ``None`` for all columns.
        predicate: Serialized predicate (``select`` only) — see
            :func:`repro.core.wire.predicate_to_bytes`.
        vo_format: VO format name override, or ``None`` for the default.
    """

    kind: str
    table: str
    attribute: Optional[str] = None
    low: Any = None
    high: Any = None
    columns: Optional[tuple[str, ...]] = None
    predicate: Optional[bytes] = None
    vo_format: Optional[str] = None


@dataclass(frozen=True)
class QueryResponseFrame:
    """An edge server's answer: a serialized authenticated result.

    Attributes:
        edge: Responding edge server's name.
        payload: :func:`repro.core.wire.result_to_bytes` output (empty
            when the query was rejected).
        error: Why the query could not be answered (``""`` on
            success) — e.g. a replica this edge does not hold.  Over a
            socket the edge *must* answer every frame, so failures
            travel as data instead of killing the serve loop.
        lsn: Cursor echo — the responding replica's delta cursor at
            answer time.  Clients (the query router) use it as a
            staleness hint: it costs two varint bytes and saves a
            central round-trip per freshness decision.  Untrusted like
            everything from an edge — a lying cursor can only skew
            routing, never verification.
        epoch: Cursor echo — the replica's key epoch at answer time.
        cursors: Piggybacked cumulative cursors — the same
            ``(table, lsn, epoch)`` payload a
            :class:`CursorAckFrame` carries, riding on a response the
            edge was sending anyway (DESIGN.md section 10).  Routers
            feed them into per-edge staleness hints for *every* replica
            (not just the queried one), and the deployment layer feeds
            them back into the fan-out engine's ack cursors.  Untrusted,
            exactly like the ``lsn`` echo.
    """

    edge: str
    payload: bytes
    error: str = ""
    lsn: int = 0
    epoch: int = 0
    cursors: tuple[tuple[str, int, int], ...] = ()


@dataclass(frozen=True)
class HelloFrame:
    """Edge→central registration handshake (socket transport).

    Sent once per connection, before any other frame.  A freshly
    started edge process registers with an empty cursor list; an edge
    *re*-connecting after a transient disconnect reports the replica
    cursors it already holds so the central server can resume delta
    delivery instead of re-shipping snapshots.

    Attributes:
        edge: The edge server's name (transport link label).
        cursors: ``(table, lsn, epoch)`` per replica the edge holds.
        role: ``"edge"`` (the default) or ``"relay"``.  A relay dials
            upstream exactly like an edge but holds no replicas of its
            own — it stores and re-fans-out the signed frames verbatim
            (DESIGN.md section 13).  The field rides as *optional
            trailing bytes*: it is encoded only for non-default roles,
            so every plain edge's hello stays byte-identical to the
            pre-relay wire protocol.
    """

    edge: str
    cursors: tuple[tuple[str, int, int], ...] = ()
    role: str = "edge"


@dataclass(frozen=True)
class ConfigFrame:
    """Central→edge handshake reply: the public verification bundle.

    Carries exactly what :class:`~repro.edge.central.ClientConfig`
    holds — database name, digest policy, and the PKI key-ring records
    (public keys only).  In a one-process simulation the bundle is
    passed as an object; over a socket it has to travel as bytes.

    Attributes:
        db_name: Logical database name (hashed into every digest).
        policy: Digest policy value string.
        grace: Key-ring grace window.
        clock: Key-ring logical clock.
        epochs: ``(epoch, n, e, issued_at, expires_at)`` records;
            ``expires_at`` is ``-1`` for still-current epochs.
        ack_every: Ack-coalescing frame threshold the central server
            wants this edge to run with (1 = acknowledge every frame,
            the pre-batching cadence).
        ack_bytes: Ack-coalescing byte threshold — an ack is emitted
            once this many replication payload bytes have been absorbed
            unacknowledged, whatever the frame count.
        shard_id: Which signer shard this bundle belongs to (``-1`` =
            unsharded central — the default, and the only value a
            pre-sharding peer ever sees).
        shard_map: The sharded plane's versioned placement map as
            :meth:`~repro.edge.sharding.ShardMap.to_wire` tuples, or
            ``None``.  Both shard fields ride as *optional trailing
            bytes*: they are encoded only when a map is present, so a
            single-shard deployment's config frame is byte-identical
            to the pre-sharding wire protocol.
    """

    db_name: str
    policy: str
    grace: int
    clock: int
    epochs: tuple[tuple[int, int, int, int, int], ...]
    ack_every: int = 1
    ack_bytes: int = 1 << 18
    shard_id: int = -1
    shard_map: tuple | None = None


def range_query_frame(
    table: str,
    low: Any = None,
    high: Any = None,
    columns: Optional[Sequence[str]] = None,
    vo_format=None,
) -> QueryRequestFrame:
    """A primary-key range query frame (shared by every query surface)."""
    return QueryRequestFrame(
        kind="range",
        table=table,
        low=low,
        high=high,
        columns=tuple(columns) if columns is not None else None,
        vo_format=getattr(vo_format, "value", vo_format),
    )


def secondary_query_frame(
    table: str,
    attribute: str,
    low: Any = None,
    high: Any = None,
    columns: Optional[Sequence[str]] = None,
    vo_format=None,
) -> QueryRequestFrame:
    """A secondary-index range query frame."""
    return QueryRequestFrame(
        kind="secondary",
        table=table,
        attribute=attribute,
        low=low,
        high=high,
        columns=tuple(columns) if columns is not None else None,
        vo_format=getattr(vo_format, "value", vo_format),
    )


def select_query_frame(
    table: str,
    predicate: bytes,
    columns: Optional[Sequence[str]] = None,
    vo_format=None,
) -> QueryRequestFrame:
    """A general-selection query frame (``predicate`` pre-serialized
    via :func:`repro.core.wire.predicate_to_bytes`)."""
    return QueryRequestFrame(
        kind="select",
        table=table,
        columns=tuple(columns) if columns is not None else None,
        predicate=predicate,
        vo_format=getattr(vo_format, "value", vo_format),
    )


def config_to_frame(
    config,
    ack_every: int = 1,
    ack_bytes: int = 1 << 18,
    shard_id: int = -1,
    shard_map: tuple | None = None,
) -> ConfigFrame:
    """Serialize a :class:`~repro.edge.central.ClientConfig` bundle
    plus the central server's ack-coalescing policy for this edge —
    and, in a sharded plane, the shard id and placement map wire
    tuples (:meth:`~repro.edge.sharding.ShardMap.to_wire`)."""
    ring = config.keyring
    return ConfigFrame(
        db_name=config.db_name,
        policy=config.policy.value,
        grace=ring.grace,
        clock=ring.now,
        epochs=tuple(
            (epoch, n, e, issued_at, -1 if expires_at is None else expires_at)
            for epoch, n, e, issued_at, expires_at in ring.export_records()
        ),
        ack_every=ack_every,
        ack_bytes=ack_bytes,
        shard_id=shard_id,
        shard_map=shard_map,
    )


def config_from_frame(frame: ConfigFrame):
    """Rebuild the verification bundle an edge process runs under."""
    from repro.core.digests import DigestPolicy
    from repro.crypto.keyring import KeyRing
    from repro.edge.central import ClientConfig

    ring = KeyRing.restore(
        [
            (epoch, n, e, issued_at, None if expires_at < 0 else expires_at)
            for epoch, n, e, issued_at, expires_at in frame.epochs
        ],
        grace=frame.grace,
        clock=frame.clock,
    )
    return ClientConfig(
        db_name=frame.db_name,
        policy=DigestPolicy(frame.policy),
        keyring=ring,
    )


Frame = Any  # union of the nine frame dataclasses

_FRAME_SNAPSHOT = 0
_FRAME_DELTA = 1
_FRAME_ACK = 2
_FRAME_QUERY = 3
_FRAME_RESPONSE = 4
_FRAME_HELLO = 5
_FRAME_CONFIG = 6
_FRAME_CURSOR_ACK = 7
_FRAME_CURSOR_PROBE = 8

#: Channel transfer kind per frame type (byte accounting breakdown).
_FRAME_KINDS = {
    SnapshotFrame: "snapshot",
    DeltaFrame: "delta",
    AckFrame: "ack",
    CursorAckFrame: "ack",
    CursorProbeFrame: "control",
    QueryRequestFrame: "query",
    QueryResponseFrame: "payload",
    HelloFrame: "control",
    ConfigFrame: "control",
}


def _encode_cursors(cursors: Sequence[tuple[str, int, int]]) -> bytes:
    """Shared ``(table, lsn, epoch)`` list encoding (hello / acks)."""
    parts = [encode_uint(len(cursors))]
    for table, lsn, epoch in cursors:
        parts.append(encode_value(table))
        parts.append(encode_uint(lsn))
        parts.append(encode_uint(epoch))
    return b"".join(parts)


def _decode_cursors(
    data: bytes, offset: int
) -> tuple[tuple[tuple[str, int, int], ...], int]:
    count, offset = decode_uint(data, offset)
    cursors = []
    for _ in range(count):
        table, offset = decode_value(data, offset)
        lsn, offset = decode_uint(data, offset)
        epoch, offset = decode_uint(data, offset)
        cursors.append((table, lsn, epoch))
    return tuple(cursors), offset


def frame_kind(frame: Frame) -> str:
    """The transfer-accounting kind for ``frame``."""
    return _FRAME_KINDS[type(frame)]


def frame_to_bytes(frame: Frame) -> bytes:
    """Serialize any transport frame (1-byte tag + typed fields)."""
    if isinstance(frame, SnapshotFrame):
        return b"".join(
            (
                bytes([_FRAME_SNAPSHOT]),
                encode_value(frame.table),
                encode_uint(frame.lsn),
                encode_uint(frame.epoch),
                bytes([1 if frame.naive else 0]),
                encode_value(frame.payload),
            )
        )
    if isinstance(frame, DeltaFrame):
        return b"".join(
            (
                bytes([_FRAME_DELTA]),
                encode_value(frame.table),
                encode_value(frame.payload),
            )
        )
    if isinstance(frame, AckFrame):
        return b"".join(
            (
                bytes([_FRAME_ACK]),
                encode_value(frame.edge),
                encode_value(frame.table),
                bytes([1 if frame.ok else 0]),
                encode_uint(frame.lsn),
                encode_uint(frame.epoch),
                encode_value(frame.reason),
            )
        )
    if isinstance(frame, QueryRequestFrame):
        return b"".join(
            (
                bytes([_FRAME_QUERY]),
                encode_value(frame.kind),
                encode_value(frame.table),
                encode_value(frame.attribute),
                encode_value(frame.low),
                encode_value(frame.high),
                bytes([0 if frame.columns is None else 1]),
                encode_values(frame.columns or ()),
                encode_value(frame.predicate),
                encode_value(frame.vo_format),
            )
        )
    if isinstance(frame, QueryResponseFrame):
        return b"".join(
            (
                bytes([_FRAME_RESPONSE]),
                encode_value(frame.edge),
                encode_value(frame.payload),
                encode_value(frame.error),
                encode_uint(frame.lsn),
                encode_uint(frame.epoch),
                _encode_cursors(frame.cursors),
            )
        )
    if isinstance(frame, CursorAckFrame):
        return b"".join(
            (
                bytes([_FRAME_CURSOR_ACK]),
                encode_value(frame.edge),
                _encode_cursors(frame.cursors),
            )
        )
    if isinstance(frame, CursorProbeFrame):
        return bytes([_FRAME_CURSOR_PROBE])
    if isinstance(frame, HelloFrame):
        parts = [
            bytes([_FRAME_HELLO]),
            encode_value(frame.edge),
            _encode_cursors(frame.cursors),
        ]
        if frame.role != "edge":
            # Optional trailing role byte(s): absent for plain edges,
            # so their hello stays byte-identical to the pre-relay
            # protocol (and a pre-relay decoder would accept it).
            parts.append(encode_value(frame.role))
        return b"".join(parts)
    if isinstance(frame, ConfigFrame):
        parts = [
            bytes([_FRAME_CONFIG]),
            encode_value(frame.db_name),
            encode_value(frame.policy),
            encode_uint(frame.grace),
            encode_uint(frame.clock),
            encode_uint(len(frame.epochs)),
        ]
        for record in frame.epochs:
            parts.extend(encode_value(field_) for field_ in record)
        parts.append(encode_uint(frame.ack_every))
        parts.append(encode_uint(frame.ack_bytes))
        if frame.shard_map is not None:
            # Optional trailing shard fields: absent for an unsharded
            # central, so the single-shard frame stays byte-identical
            # to the pre-sharding protocol (and a pre-sharding decoder
            # would accept it unchanged).
            parts.append(encode_uint(frame.shard_id + 1))  # -1 → 0
            parts.append(_encode_shard_map(frame.shard_map))
        return b"".join(parts)
    raise TransportError(f"cannot serialize frame {type(frame).__name__}")


def _encode_shard_map(wire: tuple) -> bytes:
    """Encode :meth:`~repro.edge.sharding.ShardMap.to_wire` tuples."""
    version, nshards, seed, entries = wire
    parts = [
        encode_uint(version),
        encode_uint(nshards),
        encode_value(seed),
        encode_uint(len(entries)),
    ]
    for name, kind, payload in entries:
        parts.append(encode_value(name))
        parts.append(bytes([0 if kind == "hash" else 1]))
        parts.append(encode_uint(len(payload)))
        parts.extend(encode_value(v) for v in payload)
    return b"".join(parts)


def _decode_shard_map(data: bytes, offset: int) -> tuple[tuple, int]:
    version, offset = decode_uint(data, offset)
    nshards, offset = decode_uint(data, offset)
    seed, offset = decode_value(data, offset)
    count, offset = decode_uint(data, offset)
    entries = []
    for _ in range(count):
        name, offset = decode_value(data, offset)
        kind = "hash" if data[offset] == 0 else "range"
        offset += 1
        width, offset = decode_uint(data, offset)
        payload = []
        for _ in range(width):
            value, offset = decode_value(data, offset)
            payload.append(value)
        entries.append((name, kind, tuple(payload)))
    return (version, nshards, seed, tuple(entries)), offset


def frame_from_bytes(data: bytes) -> Frame:
    """Parse the serialization produced by :func:`frame_to_bytes`.

    Raises:
        TransportError: On an empty, unknown-tag, or trailing-byte
            payload.
    """
    if not data:
        raise TransportError("empty frame")
    tag = data[0]
    offset = 1
    try:
        if tag == _FRAME_SNAPSHOT:
            table, offset = decode_value(data, offset)
            lsn, offset = decode_uint(data, offset)
            epoch, offset = decode_uint(data, offset)
            naive = bool(data[offset])
            offset += 1
            payload, offset = decode_value(data, offset)
            frame: Frame = SnapshotFrame(
                table=table, lsn=lsn, epoch=epoch, naive=naive, payload=payload
            )
        elif tag == _FRAME_DELTA:
            table, offset = decode_value(data, offset)
            payload, offset = decode_value(data, offset)
            frame = DeltaFrame(table=table, payload=payload)
        elif tag == _FRAME_ACK:
            edge, offset = decode_value(data, offset)
            table, offset = decode_value(data, offset)
            ok = bool(data[offset])
            offset += 1
            lsn, offset = decode_uint(data, offset)
            epoch, offset = decode_uint(data, offset)
            reason, offset = decode_value(data, offset)
            frame = AckFrame(
                edge=edge, table=table, ok=ok, lsn=lsn, epoch=epoch,
                reason=reason,
            )
        elif tag == _FRAME_QUERY:
            kind, offset = decode_value(data, offset)
            table, offset = decode_value(data, offset)
            attribute, offset = decode_value(data, offset)
            low, offset = decode_value(data, offset)
            high, offset = decode_value(data, offset)
            has_columns = bool(data[offset])
            offset += 1
            columns, offset = decode_values(data, offset)
            predicate, offset = decode_value(data, offset)
            vo_format, offset = decode_value(data, offset)
            frame = QueryRequestFrame(
                kind=kind,
                table=table,
                attribute=attribute,
                low=low,
                high=high,
                columns=tuple(columns) if has_columns else None,
                predicate=predicate,
                vo_format=vo_format,
            )
        elif tag == _FRAME_RESPONSE:
            edge, offset = decode_value(data, offset)
            payload, offset = decode_value(data, offset)
            error, offset = decode_value(data, offset)
            lsn, offset = decode_uint(data, offset)
            epoch, offset = decode_uint(data, offset)
            cursors, offset = _decode_cursors(data, offset)
            frame = QueryResponseFrame(
                edge=edge, payload=payload, error=error, lsn=lsn,
                epoch=epoch, cursors=cursors,
            )
        elif tag == _FRAME_CURSOR_ACK:
            edge, offset = decode_value(data, offset)
            cursors, offset = _decode_cursors(data, offset)
            frame = CursorAckFrame(edge=edge, cursors=cursors)
        elif tag == _FRAME_CURSOR_PROBE:
            frame = CursorProbeFrame()
        elif tag == _FRAME_HELLO:
            edge, offset = decode_value(data, offset)
            cursors, offset = _decode_cursors(data, offset)
            # Optional trailing role field (relays only) — its absence
            # is exactly the pre-relay encoding.
            role = "edge"
            if offset < len(data):
                role, offset = decode_value(data, offset)
            frame = HelloFrame(edge=edge, cursors=cursors, role=role)
        elif tag == _FRAME_CONFIG:
            db_name, offset = decode_value(data, offset)
            policy, offset = decode_value(data, offset)
            grace, offset = decode_uint(data, offset)
            clock, offset = decode_uint(data, offset)
            count, offset = decode_uint(data, offset)
            epochs = []
            for _ in range(count):
                record = []
                for _field in range(5):
                    value, offset = decode_value(data, offset)
                    record.append(value)
                epochs.append(tuple(record))
            ack_every, offset = decode_uint(data, offset)
            ack_bytes, offset = decode_uint(data, offset)
            # Optional trailing shard fields (sharded planes only) —
            # their absence is exactly the pre-sharding encoding.
            shard_id, shard_map = -1, None
            if offset < len(data):
                raw_shard, offset = decode_uint(data, offset)
                shard_id = raw_shard - 1
                shard_map, offset = _decode_shard_map(data, offset)
            frame = ConfigFrame(
                db_name=db_name, policy=policy, grace=grace, clock=clock,
                epochs=tuple(epochs), ack_every=ack_every,
                ack_bytes=ack_bytes, shard_id=shard_id,
                shard_map=shard_map,
            )
        else:
            raise TransportError(f"unknown frame tag {tag}")
    except TransportError:
        raise
    except Exception as exc:
        raise TransportError(f"malformed frame: {exc}") from exc
    if offset != len(data):
        raise TransportError(f"{len(data) - offset} trailing frame bytes")
    return frame


# ---------------------------------------------------------------------------
# Transport
# ---------------------------------------------------------------------------


@dataclass
class FaultInjector:
    """Mutable fault state of one link (see module docstring).

    Attributes:
        partitioned: Link down; sends fail, nothing leaves the sender.
        drop_next: Lose the next N frames in flight.
        hold: Queue frames instead of delivering (slow edge); they
            drain on :meth:`InProcessTransport.flush` once cleared.
        delay: Per-frame latency shaping, in seconds.  The in-process
            link models it as a one-flush delivery delay (the frame is
            queued like a held frame but drains on the *next* flush
            even while the fault persists — a slow link, not a wedged
            one); :class:`~repro.edge.socket_transport.TcpTransport`
            sleeps before each write; the reactor parks the
            connection's queue until the deadline passes without ever
            blocking the loop.
    """

    partitioned: bool = False
    drop_next: int = 0
    hold: bool = False
    delay: float = 0.0

    @property
    def blocks_delivery(self) -> bool:
        """True while queued frames must stay in the link.

        Both the held (slow-edge) and partitioned states park a
        reactor connection's outbound queue — the event loop skips it
        entirely, so a faulted edge costs zero syscalls per spin and
        can never delay a healthy edge's flush (DESIGN.md section 11).
        """
        return self.partitioned or self.hold

    def clear(self) -> None:
        """Return the link to healthy operation."""
        self.partitioned = False
        self.drop_next = 0
        self.hold = False
        self.delay = 0.0


@dataclass
class SendOutcome:
    """What happened to one sent frame.

    Attributes:
        status: ``delivered`` (processed by the peer, ``replies``
            populated), ``queued`` (in the link, ack pending),
            ``dropped`` (lost in flight), or ``failed`` (partitioned —
            nothing left the sender).
        replies: Frames the peer sent back (delivered sends only).
        transfer: Byte/latency accounting record (absent when failed).
    """

    status: str
    replies: list = field(default_factory=list)
    transfer: Optional[Transfer] = None

    @property
    def delivered(self) -> bool:
        return self.status == "delivered"


class Transport:
    """Abstract point-to-point frame transport (central/client side).

    Concrete transports implement :meth:`send` and :meth:`flush`; the
    edge side registers a frame handler via :meth:`connect` (in-process)
    or speaks the same frames over a socket
    (:mod:`repro.edge.socket_transport`).

    Byte metering lives *here*, not in the concrete transports: every
    implementation records outbound frames through :meth:`_record_send`
    and inbound replies through :meth:`_record_reply`, so the
    per-direction :class:`~repro.edge.network.Channel` accounting
    (and therefore every byte-based bench) is identical whichever
    medium carries the frames.

    Args:
        name: Link label (usually the edge server's name).
        down_channel: Sender→peer byte accounting (snapshots, deltas,
            queries); created if not given.
        up_channel: Peer→sender byte accounting (acks, query
            responses); created if not given.
    """

    def __init__(
        self,
        name: str,
        down_channel: Channel | None = None,
        up_channel: Channel | None = None,
    ) -> None:
        self.name = name
        self.down_channel = down_channel or Channel()
        self.up_channel = up_channel or Channel()

    # -- metering (one implementation for every medium) -----------------

    def _record_send(self, data: bytes, frame: Frame) -> Transfer:
        """Meter one outbound serialized frame."""
        return self.down_channel.send(len(data), kind=frame_kind(frame))

    def _record_reply(self, data: bytes, frame: Frame) -> Transfer:
        """Meter one inbound serialized reply frame."""
        return self.up_channel.send(len(data), kind=frame_kind(frame))

    # -- the transport surface ------------------------------------------

    @property
    def queued_frames(self) -> int:
        """Frames in the link (sent, not yet acknowledged/processed)."""
        return 0

    @property
    def connected(self) -> bool:
        """False once the link is known dead (socket fault, closed).

        A *faulted but recoverable* link (partitioned/held in-process
        injection) still reports True — connectedness is about whether
        replies can ever arrive on this object, not about the current
        weather.
        """
        return True

    def connect(self, handler: Callable[[bytes], Sequence[bytes]]) -> None:
        """Register the peer's handler (receives and returns *bytes*)."""
        raise NotImplementedError

    def send(self, frame: Frame) -> SendOutcome:
        """Ship one frame; never raises on link faults (see outcome)."""
        raise NotImplementedError

    def flush(self, wait: bool = False) -> list:
        """Deliver/collect queued frames; returns the peer's replies.

        ``wait`` only matters to transports whose replies arrive
        asynchronously (the socket transport): ``False`` collects what
        is already available without blocking the caller (safe on a
        write path), ``True`` blocks until every outstanding reply has
        arrived (a settle point, e.g. before checking staleness).
        ``wait=True`` assumes the pre-batching one-reply-per-frame
        cadence; callers settling a *coalescing* peer must instead
        drive :meth:`poll` themselves (the fan-out engine's
        probe-then-poll drain), because the number of replies is no
        longer knowable from the number of sends.
        """
        raise NotImplementedError

    def poll(self) -> list:
        """Block until at least one reply frame is available (or the
        link dies), then return everything available.

        The settle primitive for the batched-ack protocol (DESIGN.md
        section 10): after soliciting a :class:`CursorProbeFrame`, the
        fan-out engine polls for the cumulative ack instead of
        counting one reply per sent frame.  Returns ``[]`` only when
        nothing can arrive anymore — the link is dead, held, or timed
        out — never as "not yet".
        """
        return self.flush(wait=True)

    def request(self, frame: Frame) -> Frame:
        """One synchronous request/reply round-trip (the query path).

        Every transport must offer this so client-side query code (the
        router, the deployment layer) is medium-agnostic and query
        traffic is metered identically over every medium — the same
        consolidation the ABC already provides for send-path metering.

        Raises:
            TransportError: If the link is down, drops the exchange, or
                (in-process fault injection) holds the reply past the
                caller's patience — the in-flight equivalent of a
                receive timeout.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""


class InProcessTransport(Transport):
    """Same-process transport with byte accounting and fault injection.

    Args:
        name: Link label (usually the edge server's name).
        down_channel: Sender→peer byte accounting (snapshots, deltas,
            queries); created if not given.
        up_channel: Peer→sender byte accounting (acks, query
            responses); created if not given.
        faults: Initial fault state (healthy by default).

    The peer handler is wired with :meth:`connect` and exchanges only
    serialized bytes — the two endpoints share no mutable objects, which
    is what makes the trust boundary real even in-process.
    """

    def __init__(
        self,
        name: str,
        down_channel: Channel | None = None,
        up_channel: Channel | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        super().__init__(name, down_channel, up_channel)
        self.faults = faults or FaultInjector()
        self._handler: Callable[[bytes], Sequence[bytes]] | None = None
        self._queue: list[bytes] = []

    def connect(self, handler: Callable[[bytes], Sequence[bytes]]) -> None:
        self._handler = handler

    @property
    def queued_frames(self) -> int:
        """Frames sitting in the link awaiting :meth:`flush`."""
        return len(self._queue)

    @property
    def connected(self) -> bool:
        """An in-process link is alive once a handler is wired; fault
        injection (partition/hold) is weather, not death."""
        return self._handler is not None

    def send(self, frame: Frame) -> SendOutcome:
        if self._handler is None:
            raise TransportError(f"transport {self.name!r} is not connected")
        if self.faults.partitioned:
            return SendOutcome(status="failed")
        data = frame_to_bytes(frame)
        transfer = self._record_send(data, frame)
        if self.faults.drop_next > 0:
            self.faults.drop_next -= 1
            return SendOutcome(status="dropped", transfer=transfer)
        if self.faults.hold or self.faults.delay > 0:
            # A held frame waits for the fault to clear; a delayed
            # frame merely waits for the next flush — the in-process
            # model of a slow link is "delivered one tick late".
            self._queue.append(data)
            return SendOutcome(status="queued", transfer=transfer)
        return SendOutcome(
            status="delivered",
            replies=self._deliver(data),
            transfer=transfer,
        )

    def flush(self, wait: bool = False) -> list:
        """Drain held frames once faults have cleared.

        Returns the peer's accumulated reply frames; a no-op (empty
        list) while the link is still partitioned or holding.
        (Delivery is synchronous in-process, so ``wait`` is moot.)
        """
        if self.faults.partitioned or self.faults.hold:
            return []
        replies: list = []
        while self._queue:
            replies.extend(self._deliver(self._queue.pop(0)))
        return replies

    def request(self, frame: Frame) -> Frame:
        """One synchronous round-trip, with fault injection applied.

        The query-path mirror of :meth:`TcpTransport.request
        <repro.edge.socket_transport.TcpTransport.request>`: a
        partitioned link raises, a dropped request raises (the reply
        will never come), and a held request raises too — the frame
        stays queued in the slow link (it was metered as sent and the
        edge will eventually process it on :meth:`flush`), but a
        synchronous caller cannot wait for it, exactly like a receive
        timeout against a wedged TCP peer.
        """
        outcome = self.send(frame)
        if outcome.status == "failed":
            raise TransportError(f"link to {self.name!r} is down")
        if outcome.status == "dropped":
            raise TransportError(
                f"request to {self.name!r} lost in flight"
            )
        if outcome.status == "queued":
            raise TransportError(
                f"link to {self.name!r} timed out (peer holding frames)"
            )
        (reply,) = outcome.replies
        return reply

    def _deliver(self, data: bytes) -> list:
        assert self._handler is not None
        replies = []
        for reply_bytes in self._handler(data):
            reply = frame_from_bytes(reply_bytes)
            self._record_reply(reply_bytes, reply)
            replies.append(reply)
        return replies
