"""Simulated network channel with byte accounting and a latency model.

The paper's communication-cost analysis (Section 4.2) is in bytes; the
measured benches need the same unit from the running system.  Every
edge→client response passes through a :class:`Channel`, which counts
payload bytes and can convert them into simulated transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.meter import CostMeter, NULL_METER

__all__ = ["Channel", "Transfer"]


@dataclass(frozen=True)
class Transfer:
    """One recorded transfer.

    Attributes:
        nbytes: Payload size.
        seconds: Simulated transfer time.
        kind: What was shipped — ``"payload"`` (query responses),
            ``"delta"`` (replica deltas) or ``"snapshot"`` (full replica
            transfers), so replication traffic can be broken out from
            query traffic on a shared channel.
    """

    nbytes: int
    seconds: float
    kind: str = "payload"


@dataclass
class Channel:
    """A byte-counting channel between two simulation endpoints.

    Args:
        bandwidth_bps: Simulated bandwidth in bytes/second (default
            ~12.5 MB/s, i.e. 100 Mbit — an edge-era WAN link).
        rtt_seconds: Fixed per-message round-trip overhead.
        meter: Cost meter receiving ``count_bytes_sent``.
    """

    bandwidth_bps: float = 12_500_000.0
    rtt_seconds: float = 0.02
    meter: CostMeter = field(default_factory=lambda: NULL_METER)
    transfers: list[Transfer] = field(default_factory=list)

    def send(self, nbytes: int, kind: str = "payload") -> Transfer:
        """Record shipping ``nbytes``; returns the simulated transfer."""
        if nbytes < 0:
            raise ValueError("cannot send negative bytes")
        seconds = self.rtt_seconds + nbytes / self.bandwidth_bps
        transfer = Transfer(nbytes=nbytes, seconds=seconds, kind=kind)
        self.transfers.append(transfer)
        self.meter.count_bytes_sent(nbytes)
        return transfer

    @property
    def total_bytes(self) -> int:
        """Total bytes shipped through this channel."""
        return sum(t.nbytes for t in self.transfers)

    def bytes_by_kind(self) -> dict[str, int]:
        """Total bytes shipped, broken down by transfer kind."""
        out: dict[str, int] = {}
        for t in self.transfers:
            out[t.kind] = out.get(t.kind, 0) + t.nbytes
        return out

    @property
    def total_seconds(self) -> float:
        """Total simulated transfer time."""
        return sum(t.seconds for t in self.transfers)

    def reset(self) -> None:
        """Forget recorded transfers."""
        self.transfers.clear()
