"""Trusted DB clients (Figure 2, right).

A client holds the central server's key ring (distributed through an
authenticated channel, e.g. a PKI — Section 3.2) and verifies every
result+VO an edge server returns.  It never talks to the central server
for individual queries — the on-demand property the paper highlights
over Devanbu et al.'s periodic digest broadcasts.
"""

from __future__ import annotations

from typing import Union

from repro.baselines.naive import NaiveResult, NaiveVerifier
from repro.core.digests import DigestEngine
from repro.core.verify import ResultVerifier, Verdict
from repro.core.vo import AuthenticatedResult
from repro.crypto.meter import CostMeter
from repro.edge.central import ClientConfig
from repro.edge.edge_server import EdgeResponse

__all__ = ["Client"]


class Client:
    """A verifying client.

    Args:
        config: Verification parameters from
            :meth:`~repro.edge.central.CentralServer.client_config`.
        meter: Optional cost meter; a fresh one is created otherwise, so
            per-client Cost_h/Cost_v accounting is always available.
    """

    def __init__(self, config: ClientConfig, meter: CostMeter | None = None) -> None:
        self.config = config
        self.meter = meter or CostMeter()
        engine = DigestEngine(
            config.db_name, policy=config.policy, meter=self.meter
        )
        self._verifier = ResultVerifier(
            engine, keyring=config.keyring, meter=self.meter
        )
        naive_engine = DigestEngine(
            config.db_name, policy=config.policy, meter=self.meter
        )
        self._naive_verifier = NaiveVerifier(
            naive_engine, keyring=config.keyring, meter=self.meter
        )

    def verify(
        self, response: Union[EdgeResponse, AuthenticatedResult]
    ) -> Verdict:
        """Verify an edge response (or a bare authenticated result)."""
        result = (
            response.result if isinstance(response, EdgeResponse) else response
        )
        return self._verifier.verify(result)

    def verify_naive(self, result: NaiveResult) -> bool:
        """Verify a result produced under the Naive baseline."""
        return self._naive_verifier.verify(result)

    def cost_snapshot(self) -> dict[str, int]:
        """Crypto-operation counters accumulated by this client."""
        return self.meter.snapshot()
