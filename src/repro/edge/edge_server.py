"""Unsecured edge servers (Figure 2, middle).

An edge server holds replicas of the database + VB-trees and processes
queries on behalf of the central DBMS, attaching a verification object
to every result.  It is *unsecured*: a hacker may tamper with the data
there (Section 3.1) — the :mod:`repro.edge.adversary` module models
that by mutating replicas or intercepting responses.

The edge holds **no reference to the central server**.  It is
constructed from an :class:`EdgeConfig` (database name, digest policy,
and the PKI-distributed key ring — the same bundle clients get) and
receives everything else over serialized transport frames
(:mod:`repro.edge.transport`): snapshots and deltas arrive as bytes,
acknowledgements and query responses leave as bytes.  Replicas are
reconstructed from snapshot payloads with a
:class:`~repro.core.digests.VerifyOnlyDigestEngine`, so an edge never
holds — and cannot use — the central server's private signing key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.baselines.naive import NaiveResult, NaiveStore
from repro.core.delta import DeltaOpKind, ReplicaDelta, apply_delta, delta_digest
from repro.core.digests import DigestEngine, VerifyOnlyDigestEngine
from repro.core.query_auth import QueryAuthenticator
from repro.core.secondary import (
    SecondaryQueryAuthenticator,
    SecondaryVBTree,
    secondary_index_name,
)
from repro.core.vbtree import VBTree
from repro.core.vo import AuthenticatedResult, VOFormat
from repro.core.wire import (
    delta_body_bytes,
    delta_from_bytes,
    predicate_from_bytes,
    predicate_to_bytes,
    result_from_bytes,
    result_to_bytes,
    snapshot_from_bytes,
)
from repro.crypto.meter import CostMeter, NULL_METER
from repro.crypto.signatures import DigestVerifier
from repro.db.expressions import Predicate
from repro.edge import telemetry
from repro.edge.central import ClientConfig
from repro.edge.network import Channel, Transfer
from repro.edge.transport import (
    AckFrame,
    ConfigFrame,
    CursorAckFrame,
    CursorProbeFrame,
    DeltaFrame,
    QueryRequestFrame,
    QueryResponseFrame,
    SnapshotFrame,
    config_from_frame,
    frame_from_bytes,
    frame_to_bytes,
    range_query_frame,
    secondary_query_frame,
    select_query_frame,
)
from repro.exceptions import (
    DeltaGapError,
    DeltaTamperError,
    ReplicaDeltaError,
    ReplicationError,
    SchemaError,
    StaleDeltaError,
    StaleKeyError,
    TransportError,
)

__all__ = ["EdgeConfig", "EdgeServer", "EdgeResponse"]

#: A hook that may rewrite an outgoing result (adversary injection point).
ResultInterceptor = Callable[[AuthenticatedResult], AuthenticatedResult]


#: Everything an edge server is *allowed* to know about the central
#: DBMS — the same public bundle clients receive (db name, digest
#: policy, PKI-distributed key ring), never a live object reference.
EdgeConfig = ClientConfig


@dataclass
class EdgeResponse:
    """What the client receives: the result plus transfer accounting.

    ``lsn``/``epoch`` are the responding replica's cursor echo
    (DESIGN.md section 9) — an untrusted staleness hint for routing,
    not part of what verification covers.
    """

    edge_name: str
    result: AuthenticatedResult
    wire_bytes: int
    transfer: Transfer
    lsn: int = 0
    epoch: int = 0


class EdgeServer:
    """One edge-of-network replica server.

    Args:
        name: Edge server identifier.
        config: Public verification parameters (:class:`EdgeConfig`).
        channel: Network channel to clients (byte accounting); created
            with this edge's cost meter if not given.
        ack_every: Ack-coalescing frame threshold (DESIGN.md section
            10): replication frames are acknowledged with one
            cumulative :class:`~repro.edge.transport.CursorAckFrame`
            once this many have been absorbed unacknowledged.  ``1``
            (the default) acknowledges every frame — the exact
            pre-batching cadence, which in-process simulations rely on
            for synchronous cursor convergence.  Deployments raise it
            (via the handshake :class:`~repro.edge.transport.ConfigFrame`)
            to cut ack traffic.  Rejections always nack immediately,
            whatever the threshold.
        ack_bytes: Ack-coalescing byte threshold — an ack is emitted
            once this many unacknowledged replication payload bytes
            have been absorbed, even below ``ack_every`` frames.
    """

    def __init__(
        self,
        name: str,
        config: EdgeConfig,
        channel: Channel | None = None,
        ack_every: int = 1,
        ack_bytes: int = 1 << 18,
    ) -> None:
        self.name = name
        self.config = config
        self.ack_every = max(1, ack_every)
        self.ack_bytes = max(1, ack_bytes)
        #: Replication frames / payload bytes absorbed since the last
        #: cumulative ack left (the coalescing state).
        self._unacked_frames = 0
        self._unacked_bytes = 0
        self.meter = CostMeter()
        if channel is None:
            channel = Channel(meter=self.meter)
        elif channel.meter is NULL_METER:
            # Count response bytes in exactly one place: the channel.
            channel.meter = self.meter
        self.channel = channel
        #: Central→edge byte accounting (deltas and snapshots).  Bound
        #: to the replication transport's down channel by
        #: :meth:`attach_transport`; standalone edges get a private one.
        self.replication_channel = Channel()
        self.replicas: dict[str, VBTree] = {}
        self.naive_replicas: dict[str, NaiveStore] = {}
        self.replica_versions: dict[str, int] = {}
        #: Last applied log sequence number per table (delta cursor).
        self.replica_lsns: dict[str, int] = {}
        #: Key epoch each replica's signatures were produced under.
        self.replica_epochs: dict[str, int] = {}
        #: Signature width of each replica's material (from snapshots).
        self.replica_sig_lens: dict[str, int] = {}
        self._interceptors: list[ResultInterceptor] = []
        self.io_reads_last_query = 0
        #: The exception behind the most recent query error response —
        #: re-raised by the same-process convenience API so direct
        #: callers keep typed exceptions while transports get frames.
        self._last_query_exc: Optional[BaseException] = None

    def attach_transport(self, transport) -> None:
        """Wire this edge as the receiving end of a transport link."""
        transport.connect(self.handle_frame)
        self.replication_channel = transport.down_channel

    def replication_cursors(self) -> tuple[tuple[str, int, int], ...]:
        """``(table, lsn, epoch)`` for every replica this edge holds —
        what a reconnecting edge reports in its registration handshake
        so the central server can resume delta delivery instead of
        re-shipping snapshots."""
        return tuple(
            (table, self.replica_lsns.get(table, 0),
             self.replica_epochs.get(table, 0))
            for table in sorted(self.replicas)
        )

    # ------------------------------------------------------------------
    # Frame dispatch — the transport-facing surface
    # ------------------------------------------------------------------

    def handle_frame(self, data: bytes) -> list[bytes]:
        """Process one serialized frame; returns serialized replies.

        Replication acknowledgements are **coalesced** (DESIGN.md
        section 10): an accepted delta produces no reply until
        ``ack_every`` frames / ``ack_bytes`` payload bytes have been
        absorbed, at which point one cumulative
        :class:`~repro.edge.transport.CursorAckFrame` acknowledges
        everything at once.  Heal boundaries (snapshot installs) and
        :class:`~repro.edge.transport.CursorProbeFrame` solicitations
        ack immediately; a *rejected* frame always nacks immediately
        with an :class:`~repro.edge.transport.AckFrame` carrying the
        edge's cursor and a reason code — coalescing can therefore
        never mask a tamper/gap signal, it only thins the ok-traffic.
        Query frames produce one
        :class:`~repro.edge.transport.QueryResponseFrame` (with the
        cumulative cursors piggybacked).
        """
        frame = frame_from_bytes(data)
        if isinstance(frame, SnapshotFrame):
            try:
                self._install_snapshot(frame)
            except Exception as exc:
                # Malformed payload or unacceptable epoch: nack so the
                # sender's heal path retries, never an exception back
                # through the transport.  Counted — a snapshot that
                # fails to install during a healthy run is a bug, not
                # weather (FL002).
                telemetry.note("edge_server.snapshot_install", exc)
                return [frame_to_bytes(
                    self._ack(frame.table, ok=False, reason="error")
                )]
            # A heal boundary: the sender is waiting on this O(tree)
            # transfer — always acknowledge it (and everything else)
            # immediately.
            return [frame_to_bytes(self._cursor_ack())]
        if isinstance(frame, DeltaFrame):
            try:
                self.apply_delta(frame.table, frame.payload)
            except StaleDeltaError:
                reply = self._ack(frame.table, ok=False, reason="stale")
            except DeltaGapError:
                reply = self._ack(frame.table, ok=False, reason="gap")
            except DeltaTamperError:
                reply = self._ack(frame.table, ok=False, reason="tamper")
            except (ReplicaDeltaError, ReplicationError):
                reply = self._ack(frame.table, ok=False, reason="diverged")
            except Exception as exc:
                # Anything else (e.g. at-rest tampering broke the tree
                # underneath the apply) is replica divergence too: a
                # rejected replication frame must *always* produce an
                # immediate nack, so the sender's heal escalation runs
                # instead of a wedge.  Counted so the "anything else"
                # class stays visible (FL002).
                telemetry.note("edge_server.delta_apply", exc)
                reply = self._ack(frame.table, ok=False, reason="diverged")
            else:
                # Accepted: coalesce.  The ack leaves once the
                # count/byte threshold trips, or when a heal boundary /
                # probe forces it.
                self._unacked_frames += 1
                self._unacked_bytes += len(frame.payload)
                if (
                    self._unacked_frames >= self.ack_every
                    or self._unacked_bytes >= self.ack_bytes
                ):
                    return [frame_to_bytes(self._cursor_ack())]
                return []
            return [frame_to_bytes(reply)]
        if isinstance(frame, CursorProbeFrame):
            # Ack solicitation: the central is settling (a sync point)
            # and wants the cumulative cursors now.
            return [frame_to_bytes(self._cursor_ack())]
        if isinstance(frame, QueryRequestFrame):
            self._last_query_exc = None
            try:
                reply = self._execute_query(frame)
            except Exception as exc:
                # A query must be *answered* on every medium — a raise
                # here would escape an in-process router's
                # verify-or-failover path, while over a socket the
                # serve loop already converts it.  Same format either
                # way, so clients cannot tell the media apart.  The
                # traceback is stripped before stashing: it would pin
                # every frame-local (request, replica state) on a
                # long-lived edge whose errors arrive via transports.
                telemetry.note("edge_server.query", exc)
                self._last_query_exc = exc.with_traceback(None)
                reply = QueryResponseFrame(
                    edge=self.name,
                    payload=b"",
                    error=f"{type(exc).__name__}: {exc}",
                )
            return [frame_to_bytes(reply)]
        if isinstance(frame, ConfigFrame):
            # Key-ring refresh (rotation reached this edge): replace the
            # verification bundle — the paper's "well-known location"
            # re-fetched, pushed over the same channel.  The ack's empty
            # table marks it as a control ack (no cursor to move).  The
            # frame also carries the central's ack-coalescing policy.
            self.config = config_from_frame(frame)
            self.ack_every = max(1, frame.ack_every)
            self.ack_bytes = max(1, frame.ack_bytes)
            reply = AckFrame(
                edge=self.name, table="", ok=True, lsn=0,
                epoch=self.config.keyring.current_epoch, reason="config",
            )
            return [frame_to_bytes(reply)]
        raise TransportError(
            f"edge {self.name!r} cannot handle {type(frame).__name__}"
        )

    def _ack(self, table: str, ok: bool = True, reason: str = "") -> AckFrame:
        return AckFrame(
            edge=self.name,
            table=table,
            ok=ok,
            lsn=self.replica_lsns.get(table, 0),
            epoch=self.replica_epochs.get(table, 0),
            reason=reason,
        )

    def _cursor_ack(self) -> CursorAckFrame:
        """One cumulative ack covering every replica; resets the
        coalescing counters (everything up to here is now spoken for)."""
        self._unacked_frames = 0
        self._unacked_bytes = 0
        return CursorAckFrame(
            edge=self.name, cursors=self.replication_cursors()
        )

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def _install_snapshot(self, frame: SnapshotFrame) -> None:
        """Reconstruct a full replica from a serialized snapshot,
        resetting the table's delta cursor to the frame's LSN."""
        public_key = self.config.keyring.public_key_for(frame.epoch)
        signing = VerifyOnlyDigestEngine(
            DigestEngine(self.config.db_name, policy=self.config.policy),
            public_key,
            frame.epoch,
        )
        vbt = snapshot_from_bytes(frame.payload, signing)
        table = frame.table
        self.replicas[table] = vbt
        self.replica_versions[table] = vbt.version
        self.replica_lsns[table] = frame.lsn
        self.replica_epochs[table] = frame.epoch
        self.replica_sig_lens[table] = public_key.signature_len
        if frame.naive:
            naive = NaiveStore(vbt.schema, signing)
            for key, row in vbt.tree.items():
                auth = vbt.tuple_auth(key)
                naive.install_signed(
                    row.key, auth.signed_tuple, tuple(auth.signed_attrs)
                )
            self.naive_replicas[table] = naive

    def apply_delta(self, table: str, payload: bytes) -> ReplicaDelta:
        """Authenticate and apply one wire-serialized replica delta.

        The full check sequence (DESIGN.md section 6): parse, verify the
        central server's signature over the body under the delta's
        claimed key epoch (via the key ring, so expired epochs are
        rejected too), match the epoch against the replica's, then
        enforce LSN contiguity before any mutation.  A delta that fails
        any of these *wire checks* leaves the replica untouched.  A
        delta that fails mid-*application* (replica divergence — e.g.
        at-rest tampering changed the tree underneath) can leave the
        replica partially mutated; the cursor does not advance, and the
        central server heals such replicas with a snapshot resync (the
        fan-out engine's nack escalation —
        :class:`repro.edge.fanout.FanoutEngine`).

        Returns:
            The applied delta.

        Raises:
            ReplicationError: If no replica of ``table`` exists.
            DeltaTamperError: Malformed payload, bad signature, or
                unknown/expired key epoch.
            StaleDeltaError: Replayed delta (at or below the cursor).
            DeltaGapError: Out-of-order delta or epoch change — the
                edge must resync via snapshot.
        """
        vbt = self.replica(table)
        try:
            delta = delta_from_bytes(payload)
        except Exception as exc:
            raise DeltaTamperError(
                f"delta for {table!r} does not parse: {exc}"
            ) from exc
        if delta.table != table:
            raise DeltaTamperError(
                f"delta addressed to {delta.table!r}, applied to {table!r}"
            )
        if delta.signature is None:
            raise DeltaTamperError("delta carries no signature")
        try:
            public_key = self.config.keyring.public_key_for(delta.epoch)
        except StaleKeyError as exc:
            raise DeltaTamperError(
                f"delta epoch {delta.epoch} rejected: {exc}"
            ) from exc
        sig_len = public_key.signature_len
        body = delta_body_bytes(delta, sig_len)
        verifier = DigestVerifier(public_key, meter=self.meter)
        if not verifier.verify_value(delta.signature, delta_digest(body)):
            raise DeltaTamperError(
                f"delta signature over {table!r} body does not verify"
            )
        cursor = self.replica_lsns.get(table, 0)
        if delta.lsn_last <= cursor:
            raise StaleDeltaError(
                f"replayed delta lsn {delta.lsn_first}..{delta.lsn_last} "
                f"(cursor {cursor}) rejected"
            )
        if delta.lsn_first != cursor + 1:
            raise DeltaGapError(
                f"delta lsn {delta.lsn_first} does not extend cursor "
                f"{cursor}; snapshot resync required"
            )
        if delta.epoch != self.replica_epochs.get(table):
            raise DeltaGapError(
                f"delta epoch {delta.epoch} != replica epoch "
                f"{self.replica_epochs.get(table)}; snapshot resync required"
            )
        apply_delta(vbt, delta)
        self.replica_lsns[table] = delta.lsn_last
        self.replica_versions[table] = delta.new_version
        self._maintain_naive(table, delta)
        return delta

    def _maintain_naive(self, table: str, delta: ReplicaDelta) -> None:
        """Keep the naive baseline replica in step with an applied delta
        (the delta's tuple signatures are exactly what the naive store
        holds — see :class:`repro.baselines.naive.NaiveStore`)."""
        naive = self.naive_replicas.get(table)
        if naive is None:
            return
        for op in delta.ops:
            if op.kind is DeltaOpKind.INSERT:
                assert op.values is not None and op.signed_tuple is not None
                key = op.values[naive.schema.key_index]
                naive.install_signed(
                    key, op.signed_tuple, tuple(op.signed_attrs or ())
                )
            else:
                naive.remove(op.key)

    def replica(self, table: str) -> VBTree:
        """The local VB-tree replica for ``table``.

        Raises:
            ReplicationError: If no replica has been received.
        """
        try:
            return self.replicas[table]
        except KeyError:
            raise ReplicationError(
                f"edge {self.name!r} holds no replica of {table!r}"
            ) from None

    def _sig_len(self, table: str) -> int:
        """Signature width of ``table``'s replica material."""
        try:
            return self.replica_sig_lens[table]
        except KeyError:
            raise ReplicationError(
                f"edge {self.name!r} holds no replica of {table!r}"
            ) from None

    # ------------------------------------------------------------------
    # Adversary injection
    # ------------------------------------------------------------------

    def add_interceptor(self, interceptor: ResultInterceptor) -> None:
        """Register a result-rewriting hook (adversary models)."""
        self._interceptors.append(interceptor)

    def clear_interceptors(self) -> None:
        """Remove all result interceptors."""
        self._interceptors.clear()

    # ------------------------------------------------------------------
    # Query processing — every query round-trips through the serialized
    # frame codec, so the wire format is exercised on every call.
    # ------------------------------------------------------------------

    def range_query(
        self,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """Selection on the primary key, with projection."""
        return self._query(
            range_query_frame(table, low, high, columns, vo_format)
        )

    def select(
        self,
        table: str,
        predicate: Predicate,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """General selection (key or non-key), with projection."""
        return self._query(
            select_query_frame(
                table, predicate_to_bytes(predicate), columns, vo_format
            )
        )

    def secondary_range_query(
        self,
        table: str,
        attribute: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """Selection ``low <= attribute <= high`` answered from the
        table's secondary VB-tree (contiguous envelope, small D_S).

        Raises:
            ReplicationError: If no secondary index on that attribute
                has been replicated to this edge.
        """
        return self._query(
            secondary_query_frame(table, attribute, low, high, columns, vo_format)
        )

    def _query(self, frame: QueryRequestFrame) -> EdgeResponse:
        """Run a query request through the frame codec end to end."""
        replies = self.handle_frame(frame_to_bytes(frame))
        response = frame_from_bytes(replies[0])
        assert isinstance(response, QueryResponseFrame)
        if response.error:
            # Same-process callers get the original typed exception
            # (e.g. ReplicationError for a replica this edge lacks),
            # exactly as before queries became error-answering frames.
            exc = self._last_query_exc
            self._last_query_exc = None
            if exc is not None:
                raise exc
            raise TransportError(response.error)
        result = result_from_bytes(response.payload)
        return EdgeResponse(
            edge_name=self.name,
            result=result,
            wire_bytes=len(response.payload),
            transfer=self.channel.transfers[-1],
            lsn=response.lsn,
            epoch=response.epoch,
        )

    def _execute_query(self, frame: QueryRequestFrame) -> QueryResponseFrame:
        vo_format = VOFormat(frame.vo_format) if frame.vo_format else None
        columns = frame.columns
        if frame.kind == "range":
            name = frame.table
            vbt = self.replica(name)
            vbt.tree.reset_io()
            result = QueryAuthenticator(vbt).range_query(
                low=frame.low, high=frame.high, columns=columns,
                vo_format=vo_format,
            )
        elif frame.kind == "select":
            name = frame.table
            vbt = self.replica(name)
            vbt.tree.reset_io()
            predicate, _ = predicate_from_bytes(frame.predicate or b"")
            result = QueryAuthenticator(vbt).select(
                predicate, columns=columns, vo_format=vo_format
            )
        elif frame.kind == "secondary":
            if frame.attribute is None:
                raise TransportError("secondary query names no attribute")
            name = secondary_index_name(frame.table, frame.attribute)
            vbt = self.replica(name)
            if not isinstance(vbt, SecondaryVBTree):
                raise ReplicationError(f"{name!r} is not a secondary index")
            vbt.tree.reset_io()
            result = SecondaryQueryAuthenticator(vbt).range_query(
                low=frame.low, high=frame.high, columns=columns,
                vo_format=vo_format,
            )
        else:
            raise TransportError(f"unknown query kind {frame.kind!r}")
        payload = self._respond(name, vbt, result)
        # Cursor echo: the answering replica's delta cursor rides on
        # every response so clients can route by staleness without a
        # central round-trip.  For secondary queries this is the
        # *index* replica's cursor — the replica that produced the
        # result, which is the one whose freshness matters.  The full
        # cumulative cursor set is piggybacked too (DESIGN.md section
        # 10): the response was travelling anyway, so every replica's
        # staleness hint — and, over a deployment link, the central
        # fan-out engine's ack state — rides along for a few bytes.
        return QueryResponseFrame(
            edge=self.name,
            payload=payload,
            lsn=self.replica_lsns.get(name, 0),
            epoch=self.replica_epochs.get(name, 0),
            cursors=self.replication_cursors(),
        )

    def _respond(
        self, table: str, vbt: VBTree, result: AuthenticatedResult
    ) -> bytes:
        """Serialize an outgoing result, applying interceptors and
        counting the payload bytes exactly once (on the channel, whose
        meter is this edge's cost meter)."""
        for interceptor in self._interceptors:
            result = interceptor(result)
        self.io_reads_last_query = vbt.tree.io_reads
        payload = result_to_bytes(result, self._sig_len(table))
        self.channel.send(len(payload))
        return payload

    # ------------------------------------------------------------------
    # Naive-baseline query path (for the comparison benches)
    # ------------------------------------------------------------------

    def naive_range_query(
        self,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
    ) -> tuple[NaiveResult, int]:
        """Same query under the Naive scheme; returns (result, bytes).

        Raises:
            SchemaError: If the naive store was not enabled centrally.
        """
        store = self.naive_replicas.get(table)
        if store is None:
            raise SchemaError(
                f"naive store not replicated for {table!r} "
                "(construct CentralServer with enable_naive=True)"
            )
        vbt = self.replica(table)
        rows = [row for _k, row in vbt.tree.range_items(low=low, high=high)]
        result = store.build_result(rows, columns=columns)
        nbytes = result.wire_size(self._sig_len(table))
        self.channel.send(nbytes)
        return result, nbytes
