"""Unsecured edge servers (Figure 2, middle).

An edge server holds replicas of the database + VB-trees and processes
queries on behalf of the central DBMS, attaching a verification object
to every result.  It is *unsecured*: a hacker may tamper with the data
there (Section 3.1) — the :mod:`repro.edge.adversary` module models
that by mutating replicas or intercepting responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, TYPE_CHECKING

from repro.baselines.naive import NaiveResult, NaiveStore
from repro.core.query_auth import QueryAuthenticator
from repro.core.secondary import SecondaryQueryAuthenticator, SecondaryVBTree
from repro.core.vbtree import VBTree
from repro.core.vo import AuthenticatedResult, VOFormat
from repro.core.wire import result_to_bytes
from repro.crypto.meter import CostMeter
from repro.db.expressions import Predicate
from repro.edge.network import Channel, Transfer
from repro.exceptions import ReplicationError, SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.edge.central import CentralServer

__all__ = ["EdgeServer", "EdgeResponse"]

#: A hook that may rewrite an outgoing result (adversary injection point).
ResultInterceptor = Callable[[AuthenticatedResult], AuthenticatedResult]


@dataclass
class EdgeResponse:
    """What the client receives: the result plus transfer accounting."""

    edge_name: str
    result: AuthenticatedResult
    wire_bytes: int
    transfer: Transfer


class EdgeServer:
    """One edge-of-network replica server.

    Args:
        name: Edge server identifier.
        central: The central server (used only for key metadata; the
            edge never holds the private key).
        channel: Network channel to clients (byte accounting).
    """

    def __init__(
        self,
        name: str,
        central: "CentralServer",
        channel: Channel | None = None,
    ) -> None:
        self.name = name
        self.central = central
        self.channel = channel or Channel()
        self.meter = CostMeter()
        self.replicas: dict[str, VBTree] = {}
        self.naive_replicas: dict[str, NaiveStore] = {}
        self.replica_versions: dict[str, int] = {}
        self._interceptors: list[ResultInterceptor] = []
        self.io_reads_last_query = 0

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def receive_replica(
        self,
        table: str,
        vbtree: VBTree,
        naive: NaiveStore | None = None,
    ) -> None:
        """Install a replica pushed by the central server."""
        self.replicas[table] = vbtree
        self.replica_versions[table] = vbtree.version
        if naive is not None:
            self.naive_replicas[table] = naive

    def replica(self, table: str) -> VBTree:
        """The local VB-tree replica for ``table``.

        Raises:
            ReplicationError: If no replica has been received.
        """
        try:
            return self.replicas[table]
        except KeyError:
            raise ReplicationError(
                f"edge {self.name!r} holds no replica of {table!r}"
            ) from None

    def staleness(self, table: str) -> int:
        """Versions behind the central server's VB-tree."""
        central_version = self.central.vbtrees[table].version
        return central_version - self.replica_versions.get(table, -1)

    # ------------------------------------------------------------------
    # Adversary injection
    # ------------------------------------------------------------------

    def add_interceptor(self, interceptor: ResultInterceptor) -> None:
        """Register a result-rewriting hook (adversary models)."""
        self._interceptors.append(interceptor)

    def clear_interceptors(self) -> None:
        """Remove all result interceptors."""
        self._interceptors.clear()

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------

    def range_query(
        self,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """Selection on the primary key, with projection."""
        vbt = self.replica(table)
        vbt.tree.reset_io()
        authenticator = QueryAuthenticator(vbt)
        result = authenticator.range_query(
            low=low, high=high, columns=columns, vo_format=vo_format
        )
        return self._respond(vbt, result)

    def select(
        self,
        table: str,
        predicate: Predicate,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """General selection (key or non-key), with projection."""
        vbt = self.replica(table)
        vbt.tree.reset_io()
        authenticator = QueryAuthenticator(vbt)
        result = authenticator.select(
            predicate, columns=columns, vo_format=vo_format
        )
        return self._respond(vbt, result)

    def _respond(self, vbt: VBTree, result: AuthenticatedResult) -> EdgeResponse:
        for interceptor in self._interceptors:
            result = interceptor(result)
        self.io_reads_last_query = vbt.tree.io_reads
        sig_len = self.central.public_key.signature_len
        payload = result_to_bytes(result, sig_len)
        transfer = self.channel.send(len(payload))
        self.meter.count_bytes_sent(len(payload))
        return EdgeResponse(
            edge_name=self.name,
            result=result,
            wire_bytes=len(payload),
            transfer=transfer,
        )

    def secondary_range_query(
        self,
        table: str,
        attribute: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """Selection ``low <= attribute <= high`` answered from the
        table's secondary VB-tree (contiguous envelope, small D_S).

        Raises:
            ReplicationError: If no secondary index on that attribute
                has been replicated to this edge.
        """
        name = self.central.secondary_index_name(table, attribute)
        vbt = self.replica(name)
        if not isinstance(vbt, SecondaryVBTree):
            raise ReplicationError(f"{name!r} is not a secondary index")
        vbt.tree.reset_io()
        authenticator = SecondaryQueryAuthenticator(vbt)
        result = authenticator.range_query(
            low=low, high=high, columns=columns, vo_format=vo_format
        )
        return self._respond(vbt, result)

    # ------------------------------------------------------------------
    # Naive-baseline query path (for the comparison benches)
    # ------------------------------------------------------------------

    def naive_range_query(
        self,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
    ) -> tuple[NaiveResult, int]:
        """Same query under the Naive scheme; returns (result, bytes).

        Raises:
            SchemaError: If the naive store was not enabled centrally.
        """
        store = self.naive_replicas.get(table)
        if store is None:
            raise SchemaError(
                f"naive store not replicated for {table!r} "
                "(construct CentralServer with enable_naive=True)"
            )
        vbt = self.replica(table)
        rows = [row for _k, row in vbt.tree.range_items(low=low, high=high)]
        result = store.build_result(rows, columns=columns)
        nbytes = result.wire_size(self.central.public_key.signature_len)
        self.channel.send(nbytes)
        self.meter.count_bytes_sent(nbytes)
        return result, nbytes
