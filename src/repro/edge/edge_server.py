"""Unsecured edge servers (Figure 2, middle).

An edge server holds replicas of the database + VB-trees and processes
queries on behalf of the central DBMS, attaching a verification object
to every result.  It is *unsecured*: a hacker may tamper with the data
there (Section 3.1) — the :mod:`repro.edge.adversary` module models
that by mutating replicas or intercepting responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, TYPE_CHECKING

from repro.baselines.naive import NaiveResult, NaiveStore
from repro.core.delta import DeltaOpKind, ReplicaDelta, apply_delta, delta_digest
from repro.core.query_auth import QueryAuthenticator
from repro.core.secondary import SecondaryQueryAuthenticator, SecondaryVBTree
from repro.core.vbtree import VBTree
from repro.core.vo import AuthenticatedResult, VOFormat
from repro.core.wire import delta_body_bytes, delta_from_bytes, result_to_bytes
from repro.crypto.signatures import DigestVerifier
from repro.crypto.meter import CostMeter
from repro.db.expressions import Predicate
from repro.edge.network import Channel, Transfer
from repro.exceptions import (
    DeltaGapError,
    DeltaTamperError,
    ReplicationError,
    SchemaError,
    StaleDeltaError,
    StaleKeyError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.edge.central import CentralServer

__all__ = ["EdgeServer", "EdgeResponse"]

#: A hook that may rewrite an outgoing result (adversary injection point).
ResultInterceptor = Callable[[AuthenticatedResult], AuthenticatedResult]


@dataclass
class EdgeResponse:
    """What the client receives: the result plus transfer accounting."""

    edge_name: str
    result: AuthenticatedResult
    wire_bytes: int
    transfer: Transfer


class EdgeServer:
    """One edge-of-network replica server.

    Args:
        name: Edge server identifier.
        central: The central server (used only for key metadata; the
            edge never holds the private key).
        channel: Network channel to clients (byte accounting).
    """

    def __init__(
        self,
        name: str,
        central: "CentralServer",
        channel: Channel | None = None,
        replication_channel: Channel | None = None,
    ) -> None:
        self.name = name
        self.central = central
        self.channel = channel or Channel()
        #: Central→edge channel: replica deltas and snapshot transfers
        #: are byte-accounted here, separately from query responses.
        self.replication_channel = replication_channel or Channel()
        self.meter = CostMeter()
        self.replicas: dict[str, VBTree] = {}
        self.naive_replicas: dict[str, NaiveStore] = {}
        self.replica_versions: dict[str, int] = {}
        #: Last applied log sequence number per table (delta cursor).
        self.replica_lsns: dict[str, int] = {}
        #: Key epoch each replica's signatures were produced under.
        self.replica_epochs: dict[str, int] = {}
        self._interceptors: list[ResultInterceptor] = []
        self.io_reads_last_query = 0

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def receive_replica(
        self,
        table: str,
        vbtree: VBTree,
        naive: NaiveStore | None = None,
        lsn: int = 0,
        epoch: int | None = None,
    ) -> None:
        """Install a full replica (snapshot transfer) pushed by the
        central server, resetting the table's delta cursor to ``lsn``."""
        self.replicas[table] = vbtree
        self.replica_versions[table] = vbtree.version
        self.replica_lsns[table] = lsn
        self.replica_epochs[table] = (
            epoch if epoch is not None else self.central.keyring.current_epoch
        )
        if naive is not None:
            self.naive_replicas[table] = naive

    def apply_delta(self, table: str, payload: bytes) -> ReplicaDelta:
        """Authenticate and apply one wire-serialized replica delta.

        The full check sequence (DESIGN.md section 6): parse, verify the
        central server's signature over the body under the delta's
        claimed key epoch (via the key ring, so expired epochs are
        rejected too), match the epoch against the replica's, then
        enforce LSN contiguity before any mutation.  A delta that fails
        any of these *wire checks* leaves the replica untouched.  A
        delta that fails mid-*application* (replica divergence — e.g.
        at-rest tampering changed the tree underneath) can leave the
        replica partially mutated; the cursor does not advance, and the
        central server heals such replicas with a snapshot resync (see
        :meth:`CentralServer._sync_replica`).

        Returns:
            The applied delta.

        Raises:
            ReplicationError: If no replica of ``table`` exists.
            DeltaTamperError: Malformed payload, bad signature, or
                unknown/expired key epoch.
            StaleDeltaError: Replayed delta (at or below the cursor).
            DeltaGapError: Out-of-order delta or epoch change — the
                edge must resync via snapshot.
        """
        vbt = self.replica(table)
        try:
            delta = delta_from_bytes(payload)
        except Exception as exc:
            raise DeltaTamperError(
                f"delta for {table!r} does not parse: {exc}"
            ) from exc
        if delta.table != table:
            raise DeltaTamperError(
                f"delta addressed to {delta.table!r}, applied to {table!r}"
            )
        if delta.signature is None:
            raise DeltaTamperError("delta carries no signature")
        try:
            public_key = self.central.keyring.public_key_for(delta.epoch)
        except StaleKeyError as exc:
            raise DeltaTamperError(
                f"delta epoch {delta.epoch} rejected: {exc}"
            ) from exc
        sig_len = public_key.signature_len
        body = delta_body_bytes(delta, sig_len)
        verifier = DigestVerifier(public_key, meter=self.meter)
        if not verifier.verify_value(delta.signature, delta_digest(body)):
            raise DeltaTamperError(
                f"delta signature over {table!r} body does not verify"
            )
        cursor = self.replica_lsns.get(table, 0)
        if delta.lsn_last <= cursor:
            raise StaleDeltaError(
                f"replayed delta lsn {delta.lsn_first}..{delta.lsn_last} "
                f"(cursor {cursor}) rejected"
            )
        if delta.lsn_first != cursor + 1:
            raise DeltaGapError(
                f"delta lsn {delta.lsn_first} does not extend cursor "
                f"{cursor}; snapshot resync required"
            )
        if delta.epoch != self.replica_epochs.get(table):
            raise DeltaGapError(
                f"delta epoch {delta.epoch} != replica epoch "
                f"{self.replica_epochs.get(table)}; snapshot resync required"
            )
        apply_delta(vbt, delta)
        self.replica_lsns[table] = delta.lsn_last
        self.replica_versions[table] = delta.new_version
        self._maintain_naive(table, delta)
        return delta

    def _maintain_naive(self, table: str, delta: ReplicaDelta) -> None:
        """Keep the naive baseline replica in step with an applied delta
        (the delta's tuple signatures are exactly what the naive store
        holds — see :class:`repro.baselines.naive.NaiveStore`)."""
        naive = self.naive_replicas.get(table)
        if naive is None:
            return
        for op in delta.ops:
            if op.kind is DeltaOpKind.INSERT:
                assert op.values is not None and op.signed_tuple is not None
                key = op.values[naive.schema.key_index]
                naive.install_signed(
                    key, op.signed_tuple, tuple(op.signed_attrs or ())
                )
            else:
                naive.remove(op.key)

    def replica(self, table: str) -> VBTree:
        """The local VB-tree replica for ``table``.

        Raises:
            ReplicationError: If no replica has been received.
        """
        try:
            return self.replicas[table]
        except KeyError:
            raise ReplicationError(
                f"edge {self.name!r} holds no replica of {table!r}"
            ) from None

    def staleness(self, table: str) -> int:
        """Log sequence numbers behind the central server's delta log.

        Key rotation consumes an LSN barrier per table, so a replica
        that missed a rotation reports as stale even though no tuple
        changed.  A table the central server never logged falls back to
        the version difference (bootstrap edge case).
        """
        log = self.central.replicator.logs.get(table)
        if log is None:
            central_version = self.central.vbtrees[table].version
            return central_version - self.replica_versions.get(table, -1)
        return log.last_lsn - self.replica_lsns.get(table, 0)

    # ------------------------------------------------------------------
    # Adversary injection
    # ------------------------------------------------------------------

    def add_interceptor(self, interceptor: ResultInterceptor) -> None:
        """Register a result-rewriting hook (adversary models)."""
        self._interceptors.append(interceptor)

    def clear_interceptors(self) -> None:
        """Remove all result interceptors."""
        self._interceptors.clear()

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------

    def range_query(
        self,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """Selection on the primary key, with projection."""
        vbt = self.replica(table)
        vbt.tree.reset_io()
        authenticator = QueryAuthenticator(vbt)
        result = authenticator.range_query(
            low=low, high=high, columns=columns, vo_format=vo_format
        )
        return self._respond(vbt, result)

    def select(
        self,
        table: str,
        predicate: Predicate,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """General selection (key or non-key), with projection."""
        vbt = self.replica(table)
        vbt.tree.reset_io()
        authenticator = QueryAuthenticator(vbt)
        result = authenticator.select(
            predicate, columns=columns, vo_format=vo_format
        )
        return self._respond(vbt, result)

    def _respond(self, vbt: VBTree, result: AuthenticatedResult) -> EdgeResponse:
        for interceptor in self._interceptors:
            result = interceptor(result)
        self.io_reads_last_query = vbt.tree.io_reads
        sig_len = self.central.public_key.signature_len
        payload = result_to_bytes(result, sig_len)
        transfer = self.channel.send(len(payload))
        self.meter.count_bytes_sent(len(payload))
        return EdgeResponse(
            edge_name=self.name,
            result=result,
            wire_bytes=len(payload),
            transfer=transfer,
        )

    def secondary_range_query(
        self,
        table: str,
        attribute: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """Selection ``low <= attribute <= high`` answered from the
        table's secondary VB-tree (contiguous envelope, small D_S).

        Raises:
            ReplicationError: If no secondary index on that attribute
                has been replicated to this edge.
        """
        name = self.central.secondary_index_name(table, attribute)
        vbt = self.replica(name)
        if not isinstance(vbt, SecondaryVBTree):
            raise ReplicationError(f"{name!r} is not a secondary index")
        vbt.tree.reset_io()
        authenticator = SecondaryQueryAuthenticator(vbt)
        result = authenticator.range_query(
            low=low, high=high, columns=columns, vo_format=vo_format
        )
        return self._respond(vbt, result)

    # ------------------------------------------------------------------
    # Naive-baseline query path (for the comparison benches)
    # ------------------------------------------------------------------

    def naive_range_query(
        self,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
    ) -> tuple[NaiveResult, int]:
        """Same query under the Naive scheme; returns (result, bytes).

        Raises:
            SchemaError: If the naive store was not enabled centrally.
        """
        store = self.naive_replicas.get(table)
        if store is None:
            raise SchemaError(
                f"naive store not replicated for {table!r} "
                "(construct CentralServer with enable_naive=True)"
            )
        vbt = self.replica(table)
        rows = [row for _k, row in vbt.tree.range_items(low=low, high=high)]
        result = store.build_result(rows, columns=columns)
        nbytes = result.wire_size(self.central.public_key.signature_len)
        self.channel.send(nbytes)
        self.meter.count_bytes_sent(nbytes)
        return result, nbytes
