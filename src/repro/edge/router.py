"""Verified query routing across a fleet of edge servers.

The paper's deployment story (Section 3.1, Figure 2) is *many* edge
servers answering on-demand queries whose results clients verify
locally.  This module is the client-side piece that makes the fleet
usable: an :class:`EdgeRouter` holds query channels to N edges
(in-process or TCP), tracks what it can observe about each —

* **latency** — an exponentially weighted moving average over the
  round-trip time each channel reports (simulated transfer seconds for
  in-process links, wall clock over TCP);
* **staleness hints** — the LSN cursor every
  :class:`~repro.edge.transport.QueryResponseFrame` now echoes
  (DESIGN.md section 9).  Hints are untrusted, like everything an edge
  says: a lying cursor can only skew routing, never verification;
* **health** — consecutive transport failures put an edge into a
  cooldown window; it is retried once the window lapses and rejoins the
  rotation on the first success —

and picks an edge per query under a pluggable :class:`RoutingPolicy`.
Routing *orders* the whole fleet rather than choosing a single edge, so
a failed attempt falls through to the next-best candidate and a query
only fails when every edge is exhausted (:class:`~repro.exceptions.RouterError`).

:class:`VerifyingRouter` composes routing with the paper's verification
guarantee: every routed result is verified with the existing
:class:`~repro.edge.client.Client`, and a REJECT **quarantines** the
edge (it served tampered data — cooldown is not enough) and transparently
fails over to the next-best edge.  Tamper detection thereby becomes an
availability mechanism: a fabric with a tampering edge keeps returning
verified ACCEPTs, and the tampered edge stops receiving traffic.  This
is the lazy-trust tradeoff WedgeChain (Nawab, 2020) makes explicit —
results from possibly-lagging, possibly-compromised edges are usable
*because* they are verifiable after the fact.

Role and ownership: the router runs **client-side**, inside the
trusted perimeter of whoever holds the central's *public* keys — it
holds no signing key and adds nothing to the trust base.  It is
single-threaded by construction (per-query state lives on the stack;
per-edge stats are plain attributes) and does not own sockets: each
query channel borrows the deployment's current connection for the
target edge, so a restarted edge process is routable the moment it
re-registers.  A channel may equally point at a relay
(DESIGN.md section 13) — the relay round-robins the query over its
own edges, and verification still happens here, end-to-end against
the signer's public key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Sequence

from repro.core.secondary import secondary_index_name
from repro.core.vo import AuthenticatedResult
from repro.core.wire import predicate_to_bytes, result_from_bytes
from repro.edge import telemetry
from repro.edge.transport import (
    InProcessTransport,
    QueryRequestFrame,
    QueryResponseFrame,
    Transport,
    range_query_frame,
    secondary_query_frame,
    select_query_frame,
)
from repro.exceptions import RouterError, TransportError

#: Bound on per-edge staleness-hint entries a router will hold.
#: Piggybacked cursors are untrusted input: a hostile edge appending
#: fabricated replica names to every response must not grow a
#: long-lived client's state without limit.  Real fleets replicate far
#: fewer tables than this; once full, hints for *known* replicas keep
#: updating and unknown names are dropped.
MAX_CURSOR_HINTS = 512

__all__ = [
    "MAX_CURSOR_HINTS",
    "RoutingPolicy",
    "EdgeStats",
    "RoutedResponse",
    "VerifiedResponse",
    "MergedResponse",
    "TransportQueryChannel",
    "DeploymentQueryChannel",
    "in_process_query_channel",
    "EdgeRouter",
    "VerifyingRouter",
    "ScatterGatherRouter",
]


class RoutingPolicy(Enum):
    """How the router orders candidate edges for one query.

    Every policy is deterministic given the router's observed state, so
    routing decisions are exactly reproducible in tests and benches.
    """

    ROUND_ROBIN = "round_robin"      # rotate through healthy edges
    LOWEST_LATENCY = "lowest_latency"  # EWMA ascending, unprobed first
    FRESHEST = "freshest"            # highest known LSN for the replica
    WEIGHTED = "weighted"            # smooth WRR, weight ~ 1/EWMA


@dataclass
class EdgeStats:
    """Everything the router has observed about one edge.

    Attributes:
        name: The edge's name (channel label).
        served: Queries this edge answered successfully.
        failures: Transport faults + error responses, cumulative.
        rejects: Results that failed client-side verification
            (populated by :class:`VerifyingRouter`).
        consecutive_failures: Current failure streak (reset on success).
        ewma_latency: Smoothed observed round-trip seconds, or ``None``
            until the edge has answered at least once.
        cooldown_until: Clock value before which the edge is skipped
            (0 when healthy).
        quarantined: Permanently out of rotation (served tampered
            data); only :meth:`EdgeRouter.release` re-admits it.
        quarantine_reason: The verification verdict (or other cause)
            that triggered the quarantine.
        last_error: Most recent transport/verification failure text.
        cursors: Replica name → highest LSN this edge has echoed.
        epochs: Replica name → key epoch last echoed.
    """

    name: str
    served: int = 0
    failures: int = 0
    rejects: int = 0
    consecutive_failures: int = 0
    ewma_latency: Optional[float] = None
    cooldown_until: float = 0.0
    quarantined: bool = False
    quarantine_reason: str = ""
    last_error: str = ""
    cursors: dict[str, int] = field(default_factory=dict)
    epochs: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class RoutedResponse:
    """One routed (not yet verified) query answer.

    Attributes:
        edge: The edge that answered.
        frame: The raw response frame (cursor echo included).
        result: The deserialized authenticated result.
        latency: Round-trip seconds the channel reported.
        attempts: Every edge tried for this query, in order — length 1
            when the first choice answered, longer after failover.
    """

    edge: str
    frame: QueryResponseFrame
    result: AuthenticatedResult
    latency: float
    attempts: tuple[str, ...]


@dataclass(frozen=True)
class VerifiedResponse:
    """A routed answer that passed client-side verification.

    Attributes:
        edge: The edge whose result verified.
        result: The verified authenticated result.
        verdict: The ACCEPT verdict (``verdict.ok`` is always True).
        latency: Round-trip seconds for the accepted attempt.
        attempts: Every edge tried, across all verify-or-failover
            rounds, in order.
        rejected: Edges whose results failed verification for this
            query (now quarantined).
    """

    edge: str
    result: AuthenticatedResult
    verdict: Any
    latency: float
    attempts: tuple[str, ...]
    rejected: tuple[str, ...]


# ---------------------------------------------------------------------------
# Query channels — one request/reply surface over any medium
# ---------------------------------------------------------------------------


class TransportQueryChannel:
    """Query channel over a fixed :class:`~repro.edge.transport.Transport`.

    Args:
        name: The edge's name.
        transport: A connected transport whose peer answers query
            frames (an in-process link wired to
            :meth:`~repro.edge.edge_server.EdgeServer.handle_frame`, or
            an accepted :class:`~repro.edge.socket_transport.TcpTransport`).
        simulated_latency: Report the channel model's deterministic
            transfer seconds (request + reply —
            :class:`~repro.edge.network.Channel`'s rtt/bandwidth math)
            instead of wall clock.  The right choice for in-process
            fabrics, where wall-clock differences are noise but a
            per-link ``rtt_seconds`` makes "the slow edge" an exact,
            reproducible quantity.
        clock: Wall-clock source when ``simulated_latency`` is off.
    """

    def __init__(
        self,
        name: str,
        transport: Transport,
        simulated_latency: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.name = name
        self.transport = transport
        self.simulated_latency = simulated_latency
        self._clock = clock

    def request(self, frame: QueryRequestFrame) -> tuple[QueryResponseFrame, float]:
        """One query round-trip; returns ``(response, latency_seconds)``.

        Raises:
            TransportError: If the link is down/faulted or the peer
                answered with something other than a query response.
        """
        start = self._clock()
        reply = self.transport.request(frame)
        if not isinstance(reply, QueryResponseFrame):
            raise TransportError(
                f"edge {self.name!r} answered a query with "
                f"{type(reply).__name__}"
            )
        if self.simulated_latency:
            latency = (
                self.transport.down_channel.transfers[-1].seconds
                + self.transport.up_channel.transfers[-1].seconds
            )
        else:
            latency = self._clock() - start
        return reply, latency


class DeploymentQueryChannel:
    """Query channel to one edge process of a live
    :class:`~repro.edge.deploy.Deployment`.

    The transport is resolved *per request* from the deployment's edge
    table, so a killed-and-restarted edge is reachable again as soon as
    its new connection completes the registration handshake — the
    router's cooldown/recovery machinery needs no deployment-specific
    code.  Latency is wall clock: over real sockets the observed
    round-trip is exactly what a latency-aware policy should route on.
    """

    def __init__(
        self,
        deployment,
        name: str,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.deployment = deployment
        self.name = name
        self._clock = clock

    def request(self, frame: QueryRequestFrame) -> tuple[QueryResponseFrame, float]:
        """One query round-trip over the edge's current connection.

        Raises:
            TransportError: If the edge is not connected or the link
                drops mid-exchange.
        """
        handle = self.deployment.edges.get(self.name)
        if handle is None or handle.transport is None or not handle.transport.connected:
            raise TransportError(f"edge {self.name!r} is not connected")
        start = self._clock()
        reply = handle.transport.request(frame)
        if not isinstance(reply, QueryResponseFrame):
            raise TransportError(
                f"edge {self.name!r} answered a query with "
                f"{type(reply).__name__}"
            )
        # Bank the piggybacked cursors centrally: the response shared
        # the ordered replication link, so they are acks (DESIGN.md
        # section 10) — query traffic keeps the fan-out engine's
        # staleness view current between settle points for free.
        self.deployment.central.fanout.observe_response_cursors(
            self.name, reply.cursors
        )
        return reply, self._clock() - start


def in_process_query_channel(
    edge, down_channel=None, up_channel=None
) -> TransportQueryChannel:
    """A dedicated client↔edge query link for an in-process edge.

    Separate from the replication link on purpose: queries and
    replication never share a flow-control window, and the link's
    channels meter query traffic exactly as a TCP link would (the
    Transport ABC's consolidated metering).  Pass a custom
    ``down_channel``/``up_channel`` (e.g. with a higher
    ``rtt_seconds``) to model a slow edge deterministically.
    """
    link = InProcessTransport(edge.name, down_channel, up_channel)
    link.connect(edge.handle_frame)
    return TransportQueryChannel(edge.name, link, simulated_latency=True)


# ---------------------------------------------------------------------------
# The router
# ---------------------------------------------------------------------------


class _QuerySurface:
    """Convenience query builders shared by :class:`EdgeRouter` and
    :class:`VerifyingRouter` (mirroring the edge / deployment query
    API) — each builds the wire frame and defers to ``self.query``, so
    the two classes cannot drift apart."""

    def range_query(
        self,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format=None,
    ):
        """Routed primary-key range query."""
        return self.query(range_query_frame(table, low, high, columns, vo_format))

    def secondary_range_query(
        self,
        table: str,
        attribute: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format=None,
    ):
        """Routed secondary-index range query."""
        return self.query(
            secondary_query_frame(table, attribute, low, high, columns, vo_format)
        )

    def select_query(
        self,
        table: str,
        predicate,
        columns: Optional[Sequence[str]] = None,
        vo_format=None,
    ):
        """Routed general-predicate selection."""
        return self.query(
            select_query_frame(
                table, predicate_to_bytes(predicate), columns, vo_format
            )
        )


class EdgeRouter(_QuerySurface):
    """Staleness/latency-aware query router over N edge channels.

    Args:
        channels: Query channels, one per edge (anything with a
            ``.name`` and a ``.request(frame) -> (response, seconds)``).
        policy: Candidate ordering policy (name or enum).
        ewma_alpha: Smoothing factor for observed latency (higher =
            reacts faster).
        failure_threshold: Consecutive transport failures before an
            edge enters cooldown.
        cooldown: Seconds (on ``clock``) an edge sits out after
            crossing the failure threshold.
        clock: Time source for cooldown bookkeeping — injectable so the
            health state machine is deterministic under test.
    """

    def __init__(
        self,
        channels: Sequence,
        policy: RoutingPolicy | str = RoutingPolicy.ROUND_ROBIN,
        ewma_alpha: float = 0.3,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not channels:
            raise RouterError("a router needs at least one edge channel")
        self.policy = RoutingPolicy(policy)
        self.ewma_alpha = ewma_alpha
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self._channels = {ch.name: ch for ch in channels}
        if len(self._channels) != len(channels):
            raise RouterError("edge channel names must be unique")
        self._names = list(self._channels)  # insertion order = tie-break
        self._stats = {name: EdgeStats(name=name) for name in self._names}
        self._rotation = 0
        #: Smooth-WRR running counters (``weighted`` policy only).
        self._wrr_current: dict[str, float] = dict.fromkeys(self._names, 0.0)
        self.queries = 0
        self.failovers = 0
        self.failed_queries = 0

    # ------------------------------------------------------------------
    # Observed state
    # ------------------------------------------------------------------

    @property
    def edge_names(self) -> tuple[str, ...]:
        return tuple(self._names)

    def edge_stats(self, name: str) -> EdgeStats:
        """The live stats record for ``name`` (KeyError if unknown)."""
        return self._stats[name]

    def stats(self) -> dict[str, EdgeStats]:
        """Per-edge observed state, by edge name."""
        return dict(self._stats)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict summary (for benches / logs)."""
        return {
            "policy": self.policy.value,
            "queries": self.queries,
            "failovers": self.failovers,
            "failed_queries": self.failed_queries,
            "edges": {
                s.name: {
                    "served": s.served,
                    "failures": s.failures,
                    "rejects": s.rejects,
                    "ewma_latency": s.ewma_latency,
                    "quarantined": s.quarantined,
                    "quarantine_reason": s.quarantine_reason,
                    "in_cooldown": self._in_cooldown(s),
                }
                for s in self._stats.values()
            },
        }

    def observe_cursor(
        self, name: str, table: str, lsn: int, epoch: int = 0
    ) -> None:
        """Install a staleness hint out of band (e.g. seeded from the
        central fan-out engine's ack-fed cursors at construction).
        Monotonic: an older hint never regresses a newer echo."""
        stats = self._stats[name]
        if lsn >= stats.cursors.get(table, 0):
            stats.cursors[table] = lsn
            stats.epochs[table] = epoch

    def seed_from_fanout(self, fanout) -> None:
        """Seed staleness hints from a central fan-out engine's ack-fed
        cursors (the authoritative central-side staleness view), so a
        fresh ``freshest`` router routes sensibly before any edge has
        answered a query.  Unknown edge names are skipped."""
        for name in self.edge_names:
            peer = fanout.peers.get(name)
            if peer is None:
                continue
            for table, lsn in peer.acked_lsns.items():
                self.observe_cursor(
                    name, table, lsn, peer.acked_epochs.get(table, 0)
                )

    def quarantine(self, name: str, reason: str = "") -> None:
        """Remove ``name`` from rotation until :meth:`release`."""
        stats = self._stats[name]
        stats.quarantined = True
        stats.quarantine_reason = reason

    def release(self, name: str) -> None:
        """Re-admit a quarantined edge (e.g. after re-imaging it)."""
        stats = self._stats[name]
        stats.quarantined = False
        stats.quarantine_reason = ""
        stats.consecutive_failures = 0
        stats.cooldown_until = 0.0

    # ------------------------------------------------------------------
    # Candidate ordering
    # ------------------------------------------------------------------

    def _in_cooldown(self, stats: EdgeStats) -> bool:
        return stats.cooldown_until > self.clock()

    def _replica_name(self, frame: QueryRequestFrame) -> str:
        if frame.kind == "secondary" and frame.attribute is not None:
            return secondary_index_name(frame.table, frame.attribute)
        return frame.table

    def ordering(self, frame: QueryRequestFrame, exclude=()) -> list[str]:
        """Full candidate order for ``frame`` under the current policy —
        the failover sequence.  Pure: does not advance any rotation or
        WRR state (that happens once per :meth:`query`).

        Healthy edges come first, ordered by the policy; edges in
        cooldown follow (same policy order) as a last resort;
        quarantined edges never appear.
        """
        exclude = set(exclude)
        eligible = [
            n for n in self._names
            if n not in exclude and not self._stats[n].quarantined
        ]
        healthy = [n for n in eligible if not self._in_cooldown(self._stats[n])]
        cooling = [n for n in eligible if self._in_cooldown(self._stats[n])]
        replica = self._replica_name(frame)
        return self._policy_order(healthy, replica) + self._policy_order(
            cooling, replica
        )

    def _rotated(self, names: list[str]) -> list[str]:
        if not names:
            return names
        start = self._rotation % len(names)
        return names[start:] + names[:start]

    def _policy_order(self, names: list[str], replica: str) -> list[str]:
        if len(names) <= 1:
            return list(names)
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            return self._rotated(names)
        if self.policy is RoutingPolicy.LOWEST_LATENCY:
            # Unprobed edges first (explore once), then EWMA ascending;
            # rotation breaks ties so equal-latency edges share load.
            return sorted(
                self._rotated(names),
                key=lambda n: (
                    self._stats[n].ewma_latency is not None,
                    self._stats[n].ewma_latency or 0.0,
                ),
            )
        if self.policy is RoutingPolicy.FRESHEST:
            # Edges with no hint yet are probed first — cursor knowledge
            # only comes from echoes (or seeding), and without the probe
            # the policy would lock onto the first responder.  Known
            # edges order by LSN descending; rotation breaks ties.
            return sorted(
                self._rotated(names),
                key=lambda n: (
                    replica in self._stats[n].cursors,
                    -self._stats[n].cursors.get(replica, 0),
                ),
            )
        # WEIGHTED: smooth weighted round-robin (nginx-style) with
        # weights proportional to inverse observed latency, so a 10×
        # slower edge gets ~10× fewer queries instead of none at all.
        weights = self._wrr_weights(names)
        projected = {
            n: self._wrr_current.get(n, 0.0) + weights[n] for n in names
        }
        return sorted(names, key=lambda n: (-projected[n], self._names.index(n)))

    def _wrr_weights(self, names: list[str]) -> dict[str, float]:
        measured = [
            self._stats[n].ewma_latency
            for n in names
            if self._stats[n].ewma_latency is not None
        ]
        floor = min(measured) if measured else None
        weights: dict[str, float] = {}
        for n in names:
            ewma = self._stats[n].ewma_latency
            if ewma is None or floor is None or ewma <= 0:
                weights[n] = 100.0  # unprobed: explore at full weight
            else:
                weights[n] = max(1.0, round(100.0 * floor / ewma))
        return weights

    def _commit_choice(self, exclude=()) -> None:
        """Advance the per-query routing state exactly once, over the
        same candidate set :meth:`ordering` ranked (``exclude``
        included, or an excluded edge would be debited as the WRR
        choice it never was)."""
        exclude = set(exclude)
        self._rotation += 1
        if self.policy is RoutingPolicy.WEIGHTED:
            eligible = [
                n for n in self._names
                if n not in exclude and not self._stats[n].quarantined
            ]
            names = [
                n for n in eligible if not self._in_cooldown(self._stats[n])
            ] or eligible
            if not names:
                return
            weights = self._wrr_weights(names)
            for n in names:
                self._wrr_current[n] = self._wrr_current.get(n, 0.0) + weights[n]
            chosen = max(
                names,
                key=lambda n: (self._wrr_current[n], -self._names.index(n)),
            )
            self._wrr_current[chosen] -= sum(weights.values())

    def select(self, frame: QueryRequestFrame, exclude=()) -> str:
        """The edge :meth:`query` would try first, without querying.

        Raises:
            RouterError: If no edge is eligible.
        """
        order = self.ordering(frame, exclude)
        if not order:
            raise RouterError(
                f"no eligible edge for {frame.kind} query on "
                f"{frame.table!r} (all quarantined or excluded)"
            )
        return order[0]

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(self, frame: QueryRequestFrame, exclude=()) -> RoutedResponse:
        """Route one query, failing over along the policy order.

        Returns:
            The first successfully parsed response.

        Raises:
            RouterError: When every candidate edge failed.
        """
        order = self.ordering(frame, exclude)
        if not order:
            raise RouterError(
                f"no eligible edge for {frame.kind} query on "
                f"{frame.table!r} (all quarantined or excluded)"
            )
        self.queries += 1
        self._commit_choice(exclude)
        replica = self._replica_name(frame)
        attempts: list[str] = []
        for name in order:
            stats = self._stats[name]
            attempts.append(name)
            try:
                reply, latency = self._channels[name].request(frame)
            except TransportError as exc:
                self._record_failure(stats, str(exc))
                continue
            if reply.error:
                # An application-level error ("no replica of X") fails
                # this query over to the next edge but says nothing
                # about the *link* — it must not feed the cooldown
                # streak, or a healthy edge missing one replica would
                # be deprioritized for every table it serves fine.
                self._record_failure(stats, reply.error, link_fault=False)
                continue
            try:
                result = result_from_bytes(reply.payload)
            except Exception as exc:
                # Counted: an unparseable payload is either tampering
                # (the adversary tests drive this) or a codec bug —
                # both worth a counter, not just a failover (FL002).
                telemetry.note("router.payload_parse", exc)
                self._record_failure(
                    stats, f"unparseable response payload: {exc}"
                )
                continue
            self._record_success(stats, reply, latency, replica)
            self.failovers += len(attempts) - 1
            return RoutedResponse(
                edge=name,
                frame=reply,
                result=result,
                latency=latency,
                attempts=tuple(attempts),
            )
        self.failed_queries += 1
        raise RouterError(
            f"every edge failed {frame.kind} query on {frame.table!r} "
            f"(tried {attempts})"
        )

    def _record_success(
        self,
        stats: EdgeStats,
        reply: QueryResponseFrame,
        latency: float,
        replica: str,
    ) -> None:
        stats.served += 1
        stats.consecutive_failures = 0
        stats.cooldown_until = 0.0
        stats.last_error = ""
        if stats.ewma_latency is None:
            stats.ewma_latency = latency
        else:
            alpha = self.ewma_alpha
            stats.ewma_latency = alpha * latency + (1 - alpha) * stats.ewma_latency
        if reply.lsn >= stats.cursors.get(replica, 0):
            stats.cursors[replica] = reply.lsn
            stats.epochs[replica] = reply.epoch
        # Piggybacked cumulative cursors: one response refreshes the
        # staleness hint for *every* replica this edge holds, so a
        # `freshest` router learns about tables it has never queried
        # there.  Monotonic, like every hint, and bounded — the names
        # come from an untrusted edge.
        for table, lsn, epoch in reply.cursors:
            if (
                table not in stats.cursors
                and len(stats.cursors) >= MAX_CURSOR_HINTS
            ):
                continue
            if lsn >= stats.cursors.get(table, 0):
                stats.cursors[table] = lsn
                stats.epochs[table] = epoch

    def _record_failure(
        self, stats: EdgeStats, error: str, link_fault: bool = True
    ) -> None:
        """Count one failed attempt; only *link* faults (transport
        errors, garbled payloads) advance the cooldown streak —
        per-replica error responses are not a health signal."""
        stats.failures += 1
        stats.last_error = error
        if not link_fault:
            return
        stats.consecutive_failures += 1
        if stats.consecutive_failures >= self.failure_threshold:
            stats.cooldown_until = self.clock() + self.cooldown

    def record_reject(self, name: str, reason: str) -> None:
        """Count a client-side verification REJECT against ``name`` —
        the verdict surfaces in :meth:`stats` / :meth:`snapshot`."""
        stats = self._stats[name]
        stats.rejects += 1
        stats.last_error = reason


class VerifyingRouter(_QuerySurface):
    """Verify-or-failover: routing composed with client verification.

    Every routed result is verified with ``client``; a REJECT (or an
    unusable response) quarantines the edge and the query transparently
    fails over to the next-best candidate, so callers only ever see
    verified ACCEPTs — or a :class:`~repro.exceptions.RouterError` once
    the whole fleet is exhausted.

    Args:
        router: The routing core (policies, health, stats).
        client: A verifying client holding the central server's key
            ring (:meth:`~repro.edge.central.CentralServer.make_client`).
    """

    def __init__(self, router: EdgeRouter, client) -> None:
        self.router = router
        self.client = client
        self.accepts = 0
        self.rejects = 0

    def stats(self) -> dict[str, EdgeStats]:
        """Per-edge observed state (see :meth:`EdgeRouter.stats`)."""
        return self.router.stats()

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict summary including verification counters."""
        out = self.router.snapshot()
        out["accepts"] = self.accepts
        out["rejects"] = self.rejects
        return out

    def query(self, frame: QueryRequestFrame) -> VerifiedResponse:
        """Route, verify, and fail over until a result verifies.

        Raises:
            RouterError: When no remaining edge produces a verified
                result.
        """
        rejected: list[str] = []
        attempts: list[str] = []
        excluded: set[str] = set()
        rounds = 0
        while True:
            try:
                routed = self.router.query(frame, exclude=excluded)
            except RouterError:
                if rounds:
                    self.router.queries -= 1
                raise
            rounds += 1
            if rounds > 1:
                # A verify-reject retry is the same logical query
                # failing over across rounds, not a new client query —
                # keep the routing counters meaning what they say.
                self.router.queries -= 1
                self.router.failovers += 1
            attempts.extend(routed.attempts)
            # Every edge tried this round is spent for this logical
            # query: the answering edge is about to be judged, and the
            # ones that failed in transport have already fed the health
            # cooldown once.  Excluding them from later verify-rounds
            # keeps that "exactly once" — without this, a reject round
            # re-attempted the same down edge and double-counted its
            # failure streak (probing it toward cooldown on the back of
            # a *different* edge's tampering).
            excluded.update(routed.attempts)
            verdict = self.client.verify(routed.result)
            if verdict.ok:
                self.accepts += 1
                return VerifiedResponse(
                    edge=routed.edge,
                    result=routed.result,
                    verdict=verdict,
                    latency=routed.latency,
                    attempts=tuple(attempts),
                    rejected=tuple(rejected),
                )
            # Tampered data: cooldown is not enough — the edge is out
            # of rotation until an operator releases it.
            self.rejects += 1
            self.router.record_reject(routed.edge, verdict.reason)
            self.router.quarantine(
                routed.edge, reason=f"verification rejected: {verdict.reason}"
            )
            rejected.append(routed.edge)


# ---------------------------------------------------------------------------
# Shard-aware scatter/gather
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MergedResponse:
    """A scatter/gather answer assembled from verified shard sub-results.

    Every sub-result was verified against *its own shard's* public
    keys before merging, and a range partition's shards are visited in
    key order — so the merged ``rows``/``keys`` read exactly like one
    verified unsharded answer.  Completeness across shards follows
    from the shard map: the half-open ranges tile the key domain, so
    the union of per-shard completeness proofs covers the whole query
    range (DESIGN.md section 12).

    Attributes:
        table: Queried table name.
        rows: Result tuples, concatenated across shards in shard (=
            key) order.
        keys: Primary key per result row, same order.
        parts: The per-shard :class:`VerifiedResponse` sub-results, in
            shard order.
        shards: Shard id of each entry in ``parts``.
        attempts: Every edge tried, across all shards, in order.
        rejected: Edges quarantined for failing verification during
            this query (tampering is contained per shard — the other
            shards' sub-results are all present in ``parts``).
    """

    table: str
    rows: list[tuple[Any, ...]]
    keys: list[Any]
    parts: tuple[VerifiedResponse, ...]
    shards: tuple[int, ...]
    attempts: tuple[str, ...]
    rejected: tuple[str, ...]

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def verified(self) -> bool:
        """Always True by construction: every part carried an ACCEPT
        verdict from its shard's verifying router before merging."""
        return all(part.verdict.ok for part in self.parts)


class ScatterGatherRouter:
    """Shard-aware query planning over per-shard verifying routers.

    A range query is *planned* against the shard map — only the shards
    whose key ranges overlap the query are contacted, each with the
    query clamped to its own range — then *gathered*: every sub-result
    arrives through that shard's :class:`VerifyingRouter` (verify or
    fail over within the shard, quarantine on REJECT) and the verified
    sub-results merge into one :class:`MergedResponse`.  A tampering
    edge in shard ``k`` therefore costs shard ``k`` a failover; shards
    ``≠ k`` never notice.

    Args:
        shard_map: Placement map (anything with ``plan(table, low,
            high)`` and ``shards_for_table(table)`` —
            :class:`~repro.edge.sharding.ShardMap` or a map restored
            from ConfigFrame wire tuples).
        routers: shard id → that shard's :class:`VerifyingRouter`.
    """

    def __init__(self, shard_map, routers: dict[int, VerifyingRouter]) -> None:
        if not routers:
            raise RouterError("a scatter/gather router needs shard routers")
        self.shard_map = shard_map
        self.routers = dict(routers)
        self.queries = 0
        self.scattered_queries = 0

    def router_for(self, shard_id: int) -> VerifyingRouter:
        """The verifying router of one shard (RouterError if absent)."""
        try:
            return self.routers[shard_id]
        except KeyError:
            raise RouterError(f"no router for shard {shard_id}") from None

    def _gather(
        self, table: str, plan: Sequence[tuple[int, Any, Any]], query
    ) -> MergedResponse:
        parts: list[VerifiedResponse] = []
        shards: list[int] = []
        rows: list[tuple[Any, ...]] = []
        keys: list[Any] = []
        attempts: list[str] = []
        rejected: list[str] = []
        for shard_id, low, high in plan:
            sub = query(self.router_for(shard_id), low, high)
            parts.append(sub)
            shards.append(shard_id)
            rows.extend(sub.result.rows)
            keys.extend(sub.result.keys)
            attempts.extend(sub.attempts)
            rejected.extend(sub.rejected)
        return MergedResponse(
            table=table,
            rows=rows,
            keys=keys,
            parts=tuple(parts),
            shards=tuple(shards),
            attempts=tuple(attempts),
            rejected=tuple(rejected),
        )

    def range_query(
        self,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format=None,
    ) -> MergedResponse:
        """Scattered primary-key range query, merged in key order.

        Raises:
            RouterError: When some overlapping shard cannot produce a
                verified sub-result (its whole fleet exhausted).
        """
        plan = self.shard_map.plan(table, low, high)
        self.queries += 1
        if len(plan) > 1:
            self.scattered_queries += 1
        return self._gather(
            table,
            plan,
            lambda router, lo, hi: router.range_query(
                table, lo, hi, columns, vo_format
            ),
        )

    def secondary_range_query(
        self,
        table: str,
        attribute: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format=None,
    ) -> MergedResponse:
        """Secondary-attribute range query, scattered to *every* shard
        holding the table (a key-range partition says nothing about
        where attribute values live).  Rows concatenate in shard
        order; each shard's slice is attribute-ordered."""
        plan = [
            (shard_id, low, high)
            for shard_id in self.shard_map.shards_for_table(table)
        ]
        self.queries += 1
        if len(plan) > 1:
            self.scattered_queries += 1
        return self._gather(
            table,
            plan,
            lambda router, lo, hi: router.secondary_range_query(
                table, attribute, lo, hi, columns, vo_format
            ),
        )

    def select_query(
        self,
        table: str,
        predicate,
        columns: Optional[Sequence[str]] = None,
        vo_format=None,
    ) -> MergedResponse:
        """General-predicate selection, scattered to every shard
        holding the table."""
        shard_ids = self.shard_map.shards_for_table(table)
        self.queries += 1
        if len(shard_ids) > 1:
            self.scattered_queries += 1
        return self._gather(
            table,
            [(shard_id, None, None) for shard_id in shard_ids],
            lambda router, lo, hi: router.select_query(
                table, predicate, columns, vo_format
            ),
        )

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict summary: scatter counters + per-shard snapshots."""
        return {
            "queries": self.queries,
            "scattered_queries": self.scattered_queries,
            "shards": {
                shard_id: router.snapshot()
                for shard_id, router in self.routers.items()
            },
        }
