"""Real-socket transport: the frame codec over TCP.

The in-process transport proves the central↔edge boundary is
message-shaped; this module makes it *physical*.  Frames travel
length-prefixed over a TCP stream — a 4-byte big-endian length header
followed by the exact bytes :func:`~repro.edge.transport.frame_to_bytes`
produces — so the two ends can live in different OS processes (or
hosts), which is the paper's actual deployment model (Section 3.1: edge
servers on untrusted machines reachable only over a network).

Wire protocol per connection (see DESIGN.md section 8):

1. The *edge* connects to the central listener and sends a
   :class:`~repro.edge.transport.HelloFrame` — its name plus the
   replica cursors it already holds (empty for a fresh process).
2. The *central* replies with a
   :class:`~repro.edge.transport.ConfigFrame` (the public verification
   bundle) and attaches a :class:`TcpTransport` over the accepted
   socket, seeding the fan-out engine's cursors from the hello.
3. From then on the central pushes snapshot / delta / query frames;
   the edge answers every frame with exactly one reply frame (ack or
   query response), in order.

Because replies are strictly ordered, the central side can *pipeline*:
:meth:`TcpTransport.send` only writes (it never waits for the ack), and
the fan-out engine's bounded in-flight window provides flow control
exactly as it does for a slow in-process link.  Outstanding acks are
collected by :meth:`TcpTransport.flush` at the start of the next pump.

Failure mapping — every socket-level fault lands in the machinery that
already exists for in-process faults, so a killed or wedged edge
process needs **no new recovery code**:

=====================================  ================================
socket condition                       mapped onto
=====================================  ================================
``ECONNRESET`` / ``EPIPE`` on write    ``SendOutcome(status="failed")``
                                       (like a partitioned link)
EOF or reset while awaiting replies    link closed; in-flight frames
                                       forgotten, cursors stay behind
receive timeout (hung peer)            link closed (wedged edge)
mid-frame disconnect                   :class:`TransportError` →
                                       link closed
reconnect with cursors                 delta resume from the hello's
                                       cursors
reconnect without cursors (restart)    epoch mismatch → snapshot heal
=====================================  ================================
"""

from __future__ import annotations

import select
import socket
import struct
import threading
import time
from typing import Optional

from repro.edge import telemetry
from repro.edge.network import Channel
from repro.edge.transport import (
    CursorAckFrame,
    FaultInjector,
    Frame,
    QueryResponseFrame,
    SendOutcome,
    Transport,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.exceptions import TransportError

__all__ = [
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
    "FrameDecoder",
    "send_frame",
    "send_frames",
    "recv_frame",
    "connect_with_retry",
    "TcpTransport",
]

#: 4-byte big-endian frame length prefix.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one frame (a snapshot of a large replica is a few MB;
#: anything near this limit is a corrupted or hostile length header).
MAX_FRAME_BYTES = 1 << 30

#: Read granularity for :func:`recv_frame`.
_RECV_CHUNK = 1 << 16

#: Most buffers one ``sendmsg`` may carry (POSIX IOV_MAX is 1024 on
#: every platform we run on; staying at half leaves headroom).
_IOV_MAX = 512

#: Sentinel: no complete reply buffered yet (non-blocking read path).
_NOT_READY = object()


class FrameDecoder:
    """Incremental zero-copy decoder for length-prefixed frame streams.

    Shared by :class:`TcpTransport` and the event-loop reactor
    (:mod:`repro.edge.event_loop`).  Bytes land directly in a growable
    ``bytearray`` via :meth:`writable` + ``recv_into`` (no per-``recv``
    ``bytes`` concatenation), and :meth:`next_frame` pops complete
    frames with exactly one copy per frame — the ``bytes`` handed to
    :func:`~repro.edge.transport.frame_from_bytes`.  Consumed space is
    reclaimed by compaction only when the tail runs out of room, so a
    steady stream of small frames never reallocates.

    Usage (socket read path)::

        view = decoder.writable()
        n = sock.recv_into(view)
        decoder.wrote(n)
        while (frame := decoder.next_frame()) is not None:
            ...

    Raises:
        TransportError: From :meth:`next_frame` on an implausible
            length header (stream corruption — the connection is
            unrecoverable, exactly as for :func:`recv_frame`).
    """

    __slots__ = ("_buf", "_head", "_tail")

    def __init__(self, initial: int = _RECV_CHUNK) -> None:
        self._buf = bytearray(max(initial, FRAME_HEADER.size))
        self._head = 0  # first unconsumed byte
        self._tail = 0  # one past the last byte written

    def __len__(self) -> int:
        """Bytes buffered but not yet popped as frames."""
        return self._tail - self._head

    def writable(self, want: int = _RECV_CHUNK) -> memoryview:
        """A writable view of at least ``want`` bytes at the tail.

        Compacts (slides the unconsumed region to the front) or grows
        the buffer as needed; the caller reports how much it actually
        wrote via :meth:`wrote`.
        """
        want = max(1, want)
        if len(self._buf) - self._tail < want:
            used = self._tail - self._head
            if len(self._buf) - used >= want:
                # Room after compaction: slide in place.  Same-size
                # slice assignment never resizes, so this is safe even
                # while a previously handed-out view is still alive.
                if self._head and used:
                    self._buf[:used] = self._buf[self._head:self._tail]
            else:
                # Grow by swapping in a fresh buffer: resizing in place
                # raises ``BufferError`` while any earlier view is
                # still referenced (the read loops keep their last view
                # bound across iterations).
                grown = bytearray(max(used + want, 2 * len(self._buf)))
                grown[:used] = self._buf[self._head:self._tail]
                self._buf = grown
            self._head, self._tail = 0, used
        return memoryview(self._buf)[self._tail:self._tail + want]

    def wrote(self, n: int) -> None:
        """Commit ``n`` bytes just written into :meth:`writable`."""
        self._tail += n

    def feed(self, data) -> None:
        """Append ``data`` (bytes-like) — the non-``recv_into`` path."""
        view = self.writable(len(data))
        view[:len(data)] = data
        self.wrote(len(data))

    def next_frame(self) -> Optional[bytes]:
        """Pop one complete frame payload, or ``None`` if not yet here.

        Raises:
            TransportError: On a length header exceeding
                :data:`MAX_FRAME_BYTES`.
        """
        avail = self._tail - self._head
        if avail < FRAME_HEADER.size:
            if avail == 0:
                self._head = self._tail = 0  # free rewind, no compaction
            return None
        (length,) = FRAME_HEADER.unpack_from(self._buf, self._head)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"declared frame length {length} exceeds limit"
            )
        end = self._head + FRAME_HEADER.size + length
        if end > self._tail:
            return None
        data = bytes(memoryview(self._buf)[self._head + FRAME_HEADER.size:end])
        self._head = end
        if self._head == self._tail:
            self._head = self._tail = 0
        return data


def send_frame(sock: socket.socket, data: bytes) -> int:
    """Write one length-prefixed frame; returns bytes put on the wire.

    ``sendall`` either ships every byte or raises ``OSError`` — a short
    write surfaces as a connection error, never as a truncated frame on
    the peer.
    """
    if len(data) > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(data)} bytes exceeds limit")
    payload = FRAME_HEADER.pack(len(data)) + data
    sock.sendall(payload)
    return len(payload)


def send_frames(sock: socket.socket, frames) -> int:
    """Write many length-prefixed frames with vectored (gathered) I/O.

    Packs every header+payload pair into as few ``sendmsg`` syscalls as
    the iovec limit allows — an edge answering a pipelined delta batch
    ships all its acks in one syscall instead of one ``sendall`` per
    reply.  Semantics match :func:`send_frame`: all bytes ship or
    ``OSError`` is raised (blocking socket assumed).

    Returns:
        Total bytes put on the wire.
    """
    bufs: list = []
    total = 0
    for data in frames:
        if len(data) > MAX_FRAME_BYTES:
            raise TransportError(f"frame of {len(data)} bytes exceeds limit")
        bufs.append(FRAME_HEADER.pack(len(data)))
        bufs.append(data)
        total += FRAME_HEADER.size + len(data)
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - exotic platform
        for i in range(0, len(bufs), 2):
            sock.sendall(bufs[i] + bufs[i + 1])
        return total
    while bufs:
        sent = sock.sendmsg(bufs[:_IOV_MAX])
        while bufs and sent >= len(bufs[0]):
            sent -= len(bufs[0])
            bufs.pop(0)
        if sent:
            bufs[0] = memoryview(bufs[0])[sent:]
    return total


def _recv_exactly(sock: socket.socket, n: int, *, at_boundary: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes, across as many partial reads as needed.

    Returns ``None`` on a clean EOF **before the first byte** when
    ``at_boundary`` (the peer closed between frames — a normal
    shutdown).  EOF anywhere else is a torn frame and raises
    :class:`TransportError`.

    A receive timeout at a frame boundary propagates as
    ``TimeoutError`` — the link is merely *idle* and the caller may
    keep waiting (an edge between writes sees no traffic at all).  A
    timeout after bytes have been consumed would desynchronize the
    stream if retried, so it is a :class:`TransportError` like any
    other torn frame.
    """
    chunks: list[bytes] = []
    received = 0
    while received < n:
        try:
            chunk = sock.recv(min(_RECV_CHUNK, n - received))
        except TimeoutError:
            if at_boundary and received == 0:
                raise  # idle link, stream still aligned: caller's call
            raise TransportError(
                f"timed out mid-frame ({received}/{n} bytes)"
            ) from None
        if not chunk:
            if at_boundary and received == 0:
                return None
            raise TransportError(
                f"connection closed mid-frame ({received}/{n} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one length-prefixed frame; ``None`` on clean EOF.

    Handles arbitrarily fragmented delivery (the header and body may
    arrive in any number of TCP segments).

    Raises:
        TransportError: On a mid-frame disconnect or an implausible
            length header.
    """
    header = _recv_exactly(sock, FRAME_HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"declared frame length {length} exceeds limit")
    if length == 0:
        return b""
    body = _recv_exactly(sock, length, at_boundary=False)
    assert body is not None
    return body


def connect_with_retry(
    host: str,
    port: int,
    attempts: int = 40,
    delay: float = 0.25,
    timeout: float = 10.0,
) -> socket.socket:
    """Dial ``host:port``, retrying while the listener comes up.

    Raises:
        TransportError: When every attempt fails.
    """
    last: Exception | None = None
    for attempt in range(max(1, attempts)):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if attempt + 1 < attempts:
                time.sleep(delay)
    raise TransportError(
        f"could not connect to {host}:{port} after {attempts} attempts: {last}"
    )


class TcpTransport(Transport):
    """Central-side transport over one accepted edge connection.

    Implements the same surface the fan-out engine drives in-process,
    with pipelined (non-blocking) sends:

    * :meth:`send` serializes and writes the frame, then returns
      ``status="queued"`` without waiting for the edge's reply — the
      caller's in-flight window bounds how far ahead it may run.
    * :meth:`flush` collects every outstanding reply (the protocol
      guarantees one in-order reply per frame), so a pump cycle starts
      from a drained link.
    * :meth:`request` is the synchronous path used for client queries:
      it first drains outstanding replication acks (stashing them for
      the next :meth:`flush`), then performs one request/reply
      round-trip.

    Any socket-level failure closes the link: subsequent sends report
    ``status="failed"`` (exactly like a partitioned in-process link)
    and the deployment layer heals by re-attaching the peer when the
    edge reconnects.

    Args:
        name: The edge's name (link label).
        sock: The connected socket (ownership transfers here).
        down_channel / up_channel: Byte accounting, as for every
            :class:`~repro.edge.transport.Transport`.
        timeout: Receive timeout; a peer silent for longer is treated
            as wedged and the link is closed.
        faults: Fault-injection state (healthy by default) — the same
            :class:`~repro.edge.transport.FaultInjector` the in-process
            link honors, applied at the TCP level: ``partitioned``
            fails sends without touching the socket (a flap, not a
            close — clearing it resumes the link), ``drop_next`` meters
            then discards frames before the write, ``hold`` parks
            serialized frames in the transport until :meth:`flush`
            after the fault clears, and ``delay`` sleeps before each
            write (latency shaping on a blocking link).
    """

    def __init__(
        self,
        name: str,
        sock: socket.socket,
        down_channel: Channel | None = None,
        up_channel: Channel | None = None,
        timeout: float = 10.0,
        faults: FaultInjector | None = None,
    ) -> None:
        super().__init__(name, down_channel, up_channel)
        self._sock = sock
        self._sock.settimeout(timeout)
        self._lock = threading.RLock()
        self.faults = faults or FaultInjector()
        self._held: list[bytes] = []
        self._pending = 0
        self._stray: list[Frame] = []
        self._decoder = FrameDecoder()
        self._closed = False
        #: Syscall tally (``send``/``recv``/``select``) — the threaded
        #: baseline the event-loop bench compares its reactor against.
        self.syscalls: dict[str, int] = {"send": 0, "recv": 0, "select": 0}

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        """False once a socket fault has closed this link."""
        return not self._closed

    @property
    def queued_frames(self) -> int:
        """Frames written but not yet matched with a reply."""
        return self._pending

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        with self._lock:
            self._mark_closed()

    def _mark_closed(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        self._pending = 0

    # ------------------------------------------------------------------
    # Transport surface
    # ------------------------------------------------------------------

    def send(self, frame: Frame) -> SendOutcome:
        """Write one frame without waiting for the reply.

        Returns ``status="queued"`` on success (ack pending — the
        fan-out engine counts it against the in-flight window) or
        ``status="failed"`` when the link is down.
        """
        with self._lock:
            if self._closed:
                return SendOutcome(status="failed")
            if self.faults.partitioned:
                # A flap, not a death: nothing leaves the sender and
                # the socket stays open for when the link heals.
                return SendOutcome(status="failed")
            data = frame_to_bytes(frame)
            if self.faults.drop_next > 0:
                self.faults.drop_next -= 1
                transfer = self._record_send(data, frame)
                return SendOutcome(status="dropped", transfer=transfer)
            if self.faults.hold:
                transfer = self._record_send(data, frame)
                self._held.append(data)
                return SendOutcome(status="queued", transfer=transfer)
            if self.faults.delay > 0:
                time.sleep(self.faults.delay)
            try:
                send_frame(self._sock, data)
            except (OSError, TransportError) as exc:
                telemetry.note("tcp.send", exc, detail=self.name)
                self._mark_closed()
                return SendOutcome(status="failed")
            self.syscalls["send"] += 1
            transfer = self._record_send(data, frame)
            self._pending += 1
            return SendOutcome(status="queued", transfer=transfer)

    def flush(self, wait: bool = False) -> list:
        """Collect outstanding reply frames.

        With ``wait=False`` (the default — what the fan-out engine's
        per-pump drain uses) only replies *already buffered* are
        collected — including the no-complete-frame-yet case, where
        the partial bytes stay in the receive buffer for next time —
        so a slow edge can never stall the write path: its
        unacknowledged frames simply keep occupying the in-flight
        window and the engine skips it, exactly like a frame-holding
        in-process link.

        With ``wait=True`` this blocks until the link *settles*:
        either every sent frame has been answered one-for-one (the
        pre-batching cadence) or a cumulative
        :class:`~repro.edge.transport.CursorAckFrame` arrives — a
        cumulative ack zeroes the pending count, so replies its
        cursors do not yet cover (frames still queued behind the ack
        point) surface on a *later* flush rather than being blocked
        for here.  Settle points that must cover a coalescing peer's
        whole pipeline therefore use the probe-then-:meth:`poll` drain
        (the fan-out engine's), not this.  On EOF / reset / timeout
        the link is closed and whatever was collected is returned —
        in-flight frames are forgotten, leaving the peer's cursors
        behind so a later pump (or a reconnect handshake) retries or
        heals.
        """
        with self._lock:
            replies = list(self._stray)
            self._stray.clear()
            if self.faults.blocks_delivery:
                # Mirror the in-process link: a partitioned/held link
                # neither writes nor blocks waiting for replies.
                return replies
            self._write_held()
            while True:
                if wait and not self._pending:
                    break
                reply = self._read_reply(wait=wait)
                if reply is _NOT_READY or reply is None:
                    break
                replies.append(reply)
            return replies

    def _write_held(self) -> None:
        """Write frames parked by a (now cleared) ``hold`` fault."""
        while self._held and not self._closed:
            data = self._held.pop(0)
            try:
                send_frame(self._sock, data)
            except (OSError, TransportError) as exc:
                telemetry.note("tcp.send", exc, detail=self.name)
                self._mark_closed()
                return
            self.syscalls["send"] += 1
            self._pending += 1

    def poll(self) -> list:
        """Block for at least one reply frame; return all available.

        The batched-ack settle primitive (see
        :meth:`Transport.poll <repro.edge.transport.Transport.poll>`):
        the caller has just solicited a cursor ack and knows *a* reply
        is coming, but not how many frames it will cover.  A receive
        timeout or EOF closes the link and returns whatever arrived.
        """
        with self._lock:
            replies = list(self._stray)
            self._stray.clear()
            if not replies:
                reply = self._read_reply(wait=True)
                if reply is not None and reply is not _NOT_READY:
                    replies.append(reply)
            while True:  # drain whatever else is already buffered
                reply = self._read_reply(wait=False)
                if reply is _NOT_READY or reply is None:
                    break
                replies.append(reply)
            return replies

    def _readable(self) -> bool:
        """True if at least one reply byte is waiting in the buffer."""
        if self._closed:
            return False
        self.syscalls["select"] += 1
        try:
            ready, _, _ = select.select([self._sock], [], [], 0)
        except (OSError, ValueError):
            return False
        return bool(ready)

    def request(self, frame: Frame) -> Frame:
        """One synchronous request/reply round-trip (query path).

        Replies arrive strictly in order, so the query's answer is the
        first :class:`~repro.edge.transport.QueryResponseFrame` to
        arrive after the send; replication replies read on the way
        (acks a coalescing edge was holding, or pipelined per-frame
        acks) are stashed for the next :meth:`flush`.  Matching by
        *type* instead of by count matters under batched acks: a peer
        with deferred acks outstanding answers fewer frames than it
        received, and the old drain-``pending``-replies-first protocol
        would block on acks that are never coming.

        Raises:
            TransportError: If the link is down or drops mid-exchange.
        """
        with self._lock:
            outcome = self.send(frame)
            if outcome.status == "dropped":
                raise TransportError(
                    f"request to {self.name!r} lost in flight"
                )
            if outcome.status != "queued":
                raise TransportError(f"link to {self.name!r} is down")
            if self.faults.hold:
                # The frame stays parked in the link (metered, will be
                # written on flush once the fault clears), but a
                # synchronous caller cannot wait for it.
                raise TransportError(
                    f"link to {self.name!r} timed out (peer holding frames)"
                )
            while True:
                reply = self._read_reply()
                if reply is None:
                    raise TransportError(
                        f"link to {self.name!r} lost awaiting reply"
                    )
                if isinstance(reply, QueryResponseFrame):
                    return reply
                self._stray.append(reply)

    def _read_reply(self, wait: bool = True) -> Optional[Frame]:
        """One reply frame through the shared :class:`FrameDecoder`.

        Returns ``_NOT_READY`` when ``wait=False`` and no *complete*
        frame has arrived (partial bytes stay buffered — never handed
        to a blocking read), or ``None`` (and close) on any fault.
        """
        while True:
            try:
                data = self._decoder.next_frame()
            except TransportError as exc:
                # Misaligned stream: never routine, always traced.
                telemetry.note("tcp.framing", exc, detail=self.name)
                self._mark_closed()
                return None
            if data is not None:
                break
            if not wait and not self._readable():
                return _NOT_READY
            view = self._decoder.writable(_RECV_CHUNK)
            self.syscalls["recv"] += 1
            try:
                n = self._sock.recv_into(view)
            except (OSError, TransportError) as exc:
                telemetry.note("tcp.recv", exc, detail=self.name)
                self._mark_closed()
                return None
            if n == 0:  # clean EOF
                self._mark_closed()
                return None
            self._decoder.wrote(n)
        try:
            reply = frame_from_bytes(data)
        except TransportError as exc:
            telemetry.note("tcp.framing", exc, detail=self.name)
            self._mark_closed()
            return None
        if isinstance(reply, CursorAckFrame):
            # A cumulative ack answers *everything* the peer received
            # before emitting it (FIFO link, cursors cover the lot) —
            # one-for-one pending accounting would otherwise drift
            # upward forever on a coalescing link, and a later
            # ``flush(wait=True)`` would block on replies that are
            # never coming until the timeout tore the link down.
            self._pending = 0
        else:
            self._pending = max(0, self._pending - 1)
        self._record_reply(data, reply)
        return reply
