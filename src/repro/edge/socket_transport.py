"""Real-socket transport: the frame codec over TCP.

The in-process transport proves the central↔edge boundary is
message-shaped; this module makes it *physical*.  Frames travel
length-prefixed over a TCP stream — a 4-byte big-endian length header
followed by the exact bytes :func:`~repro.edge.transport.frame_to_bytes`
produces — so the two ends can live in different OS processes (or
hosts), which is the paper's actual deployment model (Section 3.1: edge
servers on untrusted machines reachable only over a network).

Wire protocol per connection (see DESIGN.md section 8):

1. The *edge* connects to the central listener and sends a
   :class:`~repro.edge.transport.HelloFrame` — its name plus the
   replica cursors it already holds (empty for a fresh process).
2. The *central* replies with a
   :class:`~repro.edge.transport.ConfigFrame` (the public verification
   bundle) and attaches a :class:`TcpTransport` over the accepted
   socket, seeding the fan-out engine's cursors from the hello.
3. From then on the central pushes snapshot / delta / query frames;
   the edge answers every frame with exactly one reply frame (ack or
   query response), in order.

Because replies are strictly ordered, the central side can *pipeline*:
:meth:`TcpTransport.send` only writes (it never waits for the ack), and
the fan-out engine's bounded in-flight window provides flow control
exactly as it does for a slow in-process link.  Outstanding acks are
collected by :meth:`TcpTransport.flush` at the start of the next pump.

Failure mapping — every socket-level fault lands in the machinery that
already exists for in-process faults, so a killed or wedged edge
process needs **no new recovery code**:

=====================================  ================================
socket condition                       mapped onto
=====================================  ================================
``ECONNRESET`` / ``EPIPE`` on write    ``SendOutcome(status="failed")``
                                       (like a partitioned link)
EOF or reset while awaiting replies    link closed; in-flight frames
                                       forgotten, cursors stay behind
receive timeout (hung peer)            link closed (wedged edge)
mid-frame disconnect                   :class:`TransportError` →
                                       link closed
reconnect with cursors                 delta resume from the hello's
                                       cursors
reconnect without cursors (restart)    epoch mismatch → snapshot heal
=====================================  ================================
"""

from __future__ import annotations

import select
import socket
import struct
import threading
import time
from typing import Optional

from repro.edge.network import Channel
from repro.edge.transport import (
    CursorAckFrame,
    Frame,
    QueryResponseFrame,
    SendOutcome,
    Transport,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.exceptions import TransportError

__all__ = [
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "connect_with_retry",
    "TcpTransport",
]

#: 4-byte big-endian frame length prefix.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one frame (a snapshot of a large replica is a few MB;
#: anything near this limit is a corrupted or hostile length header).
MAX_FRAME_BYTES = 1 << 30

#: Read granularity for :func:`recv_frame`.
_RECV_CHUNK = 1 << 16

#: Sentinel: no complete reply buffered yet (non-blocking read path).
_NOT_READY = object()


def send_frame(sock: socket.socket, data: bytes) -> int:
    """Write one length-prefixed frame; returns bytes put on the wire.

    ``sendall`` either ships every byte or raises ``OSError`` — a short
    write surfaces as a connection error, never as a truncated frame on
    the peer.
    """
    if len(data) > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(data)} bytes exceeds limit")
    payload = FRAME_HEADER.pack(len(data)) + data
    sock.sendall(payload)
    return len(payload)


def _recv_exactly(sock: socket.socket, n: int, *, at_boundary: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes, across as many partial reads as needed.

    Returns ``None`` on a clean EOF **before the first byte** when
    ``at_boundary`` (the peer closed between frames — a normal
    shutdown).  EOF anywhere else is a torn frame and raises
    :class:`TransportError`.

    A receive timeout at a frame boundary propagates as
    ``TimeoutError`` — the link is merely *idle* and the caller may
    keep waiting (an edge between writes sees no traffic at all).  A
    timeout after bytes have been consumed would desynchronize the
    stream if retried, so it is a :class:`TransportError` like any
    other torn frame.
    """
    chunks: list[bytes] = []
    received = 0
    while received < n:
        try:
            chunk = sock.recv(min(_RECV_CHUNK, n - received))
        except TimeoutError:
            if at_boundary and received == 0:
                raise  # idle link, stream still aligned: caller's call
            raise TransportError(
                f"timed out mid-frame ({received}/{n} bytes)"
            ) from None
        if not chunk:
            if at_boundary and received == 0:
                return None
            raise TransportError(
                f"connection closed mid-frame ({received}/{n} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one length-prefixed frame; ``None`` on clean EOF.

    Handles arbitrarily fragmented delivery (the header and body may
    arrive in any number of TCP segments).

    Raises:
        TransportError: On a mid-frame disconnect or an implausible
            length header.
    """
    header = _recv_exactly(sock, FRAME_HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"declared frame length {length} exceeds limit")
    if length == 0:
        return b""
    body = _recv_exactly(sock, length, at_boundary=False)
    assert body is not None
    return body


def connect_with_retry(
    host: str,
    port: int,
    attempts: int = 40,
    delay: float = 0.25,
    timeout: float = 10.0,
) -> socket.socket:
    """Dial ``host:port``, retrying while the listener comes up.

    Raises:
        TransportError: When every attempt fails.
    """
    last: Exception | None = None
    for attempt in range(max(1, attempts)):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if attempt + 1 < attempts:
                time.sleep(delay)
    raise TransportError(
        f"could not connect to {host}:{port} after {attempts} attempts: {last}"
    )


class TcpTransport(Transport):
    """Central-side transport over one accepted edge connection.

    Implements the same surface the fan-out engine drives in-process,
    with pipelined (non-blocking) sends:

    * :meth:`send` serializes and writes the frame, then returns
      ``status="queued"`` without waiting for the edge's reply — the
      caller's in-flight window bounds how far ahead it may run.
    * :meth:`flush` collects every outstanding reply (the protocol
      guarantees one in-order reply per frame), so a pump cycle starts
      from a drained link.
    * :meth:`request` is the synchronous path used for client queries:
      it first drains outstanding replication acks (stashing them for
      the next :meth:`flush`), then performs one request/reply
      round-trip.

    Any socket-level failure closes the link: subsequent sends report
    ``status="failed"`` (exactly like a partitioned in-process link)
    and the deployment layer heals by re-attaching the peer when the
    edge reconnects.

    Args:
        name: The edge's name (link label).
        sock: The connected socket (ownership transfers here).
        down_channel / up_channel: Byte accounting, as for every
            :class:`~repro.edge.transport.Transport`.
        timeout: Receive timeout; a peer silent for longer is treated
            as wedged and the link is closed.
    """

    def __init__(
        self,
        name: str,
        sock: socket.socket,
        down_channel: Channel | None = None,
        up_channel: Channel | None = None,
        timeout: float = 10.0,
    ) -> None:
        super().__init__(name, down_channel, up_channel)
        self._sock = sock
        self._sock.settimeout(timeout)
        self._lock = threading.RLock()
        self._pending = 0
        self._stray: list[Frame] = []
        self._rbuf = b""
        self._closed = False

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        """False once a socket fault has closed this link."""
        return not self._closed

    @property
    def queued_frames(self) -> int:
        """Frames written but not yet matched with a reply."""
        return self._pending

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        with self._lock:
            self._mark_closed()

    def _mark_closed(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        self._pending = 0

    # ------------------------------------------------------------------
    # Transport surface
    # ------------------------------------------------------------------

    def send(self, frame: Frame) -> SendOutcome:
        """Write one frame without waiting for the reply.

        Returns ``status="queued"`` on success (ack pending — the
        fan-out engine counts it against the in-flight window) or
        ``status="failed"`` when the link is down.
        """
        with self._lock:
            if self._closed:
                return SendOutcome(status="failed")
            data = frame_to_bytes(frame)
            try:
                send_frame(self._sock, data)
            except (OSError, TransportError):
                self._mark_closed()
                return SendOutcome(status="failed")
            transfer = self._record_send(data, frame)
            self._pending += 1
            return SendOutcome(status="queued", transfer=transfer)

    def flush(self, wait: bool = False) -> list:
        """Collect outstanding reply frames.

        With ``wait=False`` (the default — what the fan-out engine's
        per-pump drain uses) only replies *already buffered* are
        collected — including the no-complete-frame-yet case, where
        the partial bytes stay in the receive buffer for next time —
        so a slow edge can never stall the write path: its
        unacknowledged frames simply keep occupying the in-flight
        window and the engine skips it, exactly like a frame-holding
        in-process link.

        With ``wait=True`` this blocks until the link *settles*:
        either every sent frame has been answered one-for-one (the
        pre-batching cadence) or a cumulative
        :class:`~repro.edge.transport.CursorAckFrame` arrives — a
        cumulative ack zeroes the pending count, so replies its
        cursors do not yet cover (frames still queued behind the ack
        point) surface on a *later* flush rather than being blocked
        for here.  Settle points that must cover a coalescing peer's
        whole pipeline therefore use the probe-then-:meth:`poll` drain
        (the fan-out engine's), not this.  On EOF / reset / timeout
        the link is closed and whatever was collected is returned —
        in-flight frames are forgotten, leaving the peer's cursors
        behind so a later pump (or a reconnect handshake) retries or
        heals.
        """
        with self._lock:
            replies = list(self._stray)
            self._stray.clear()
            while True:
                if wait and not self._pending:
                    break
                reply = self._read_reply(wait=wait)
                if reply is _NOT_READY or reply is None:
                    break
                replies.append(reply)
            return replies

    def poll(self) -> list:
        """Block for at least one reply frame; return all available.

        The batched-ack settle primitive (see
        :meth:`Transport.poll <repro.edge.transport.Transport.poll>`):
        the caller has just solicited a cursor ack and knows *a* reply
        is coming, but not how many frames it will cover.  A receive
        timeout or EOF closes the link and returns whatever arrived.
        """
        with self._lock:
            replies = list(self._stray)
            self._stray.clear()
            if not replies:
                reply = self._read_reply(wait=True)
                if reply is not None and reply is not _NOT_READY:
                    replies.append(reply)
            while True:  # drain whatever else is already buffered
                reply = self._read_reply(wait=False)
                if reply is _NOT_READY or reply is None:
                    break
                replies.append(reply)
            return replies

    def _readable(self) -> bool:
        """True if at least one reply byte is waiting in the buffer."""
        if self._closed:
            return False
        try:
            ready, _, _ = select.select([self._sock], [], [], 0)
        except (OSError, ValueError):
            return False
        return bool(ready)

    def request(self, frame: Frame) -> Frame:
        """One synchronous request/reply round-trip (query path).

        Replies arrive strictly in order, so the query's answer is the
        first :class:`~repro.edge.transport.QueryResponseFrame` to
        arrive after the send; replication replies read on the way
        (acks a coalescing edge was holding, or pipelined per-frame
        acks) are stashed for the next :meth:`flush`.  Matching by
        *type* instead of by count matters under batched acks: a peer
        with deferred acks outstanding answers fewer frames than it
        received, and the old drain-``pending``-replies-first protocol
        would block on acks that are never coming.

        Raises:
            TransportError: If the link is down or drops mid-exchange.
        """
        with self._lock:
            outcome = self.send(frame)
            if outcome.status != "queued":
                raise TransportError(f"link to {self.name!r} is down")
            while True:
                reply = self._read_reply()
                if reply is None:
                    raise TransportError(
                        f"link to {self.name!r} lost awaiting reply"
                    )
                if isinstance(reply, QueryResponseFrame):
                    return reply
                self._stray.append(reply)

    def _buffered_frame(self) -> Optional[bytes]:
        """Pop one complete frame from the receive buffer, if present.

        Raises:
            TransportError: On an implausible length header.
        """
        if len(self._rbuf) < FRAME_HEADER.size:
            return None
        (length,) = FRAME_HEADER.unpack_from(self._rbuf)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"declared frame length {length} exceeds limit"
            )
        end = FRAME_HEADER.size + length
        if len(self._rbuf) < end:
            return None
        data = self._rbuf[FRAME_HEADER.size:end]
        self._rbuf = self._rbuf[end:]
        return data

    def _read_reply(self, wait: bool = True) -> Optional[Frame]:
        """One reply frame through the receive buffer.

        Returns ``_NOT_READY`` when ``wait=False`` and no *complete*
        frame has arrived (partial bytes stay buffered — never handed
        to a blocking read), or ``None`` (and close) on any fault.
        """
        while True:
            try:
                data = self._buffered_frame()
            except TransportError:
                self._mark_closed()
                return None
            if data is not None:
                break
            if not wait and not self._readable():
                return _NOT_READY
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except (OSError, TransportError):
                self._mark_closed()
                return None
            if not chunk:  # clean EOF
                self._mark_closed()
                return None
            self._rbuf += chunk
        try:
            reply = frame_from_bytes(data)
        except TransportError:
            self._mark_closed()
            return None
        if isinstance(reply, CursorAckFrame):
            # A cumulative ack answers *everything* the peer received
            # before emitting it (FIFO link, cursors cover the lot) —
            # one-for-one pending accounting would otherwise drift
            # upward forever on a coalescing link, and a later
            # ``flush(wait=True)`` would block on replies that are
            # never coming until the timeout tore the link down.
            self._pending = 0
        else:
            self._pending = max(0, self._pending - 1)
        self._record_reply(data, reply)
        return reply
