"""Edge-server process entrypoint: ``python -m repro.edge.serve``.

Runs one :class:`~repro.edge.edge_server.EdgeServer` as a standalone OS
process that dials the central listener, performs the registration
handshake (DESIGN.md section 8), and then serves frames until the
connection drops — reconnecting with its current replica cursors so a
*transient* disconnect resumes via deltas, while a killed-and-restarted
process (fresh, replica-less) re-registers empty and heals via
snapshot.

Quickstart (central side is :class:`repro.edge.deploy.Deployment`)::

    python -m repro.edge.serve --name edge-0 --host 127.0.0.1 --port 7401

The process exits 0 when the central server closes the connection and
the reconnect budget is exhausted, non-zero on handshake failure.
"""

from __future__ import annotations

import argparse
import socket
import sys

from repro.edge import telemetry
from repro.edge.socket_transport import (
    connect_with_retry,
    recv_frame,
    send_frame,
    send_frames,
)
from repro.edge.transport import (
    ConfigFrame,
    HelloFrame,
    QueryResponseFrame,
    config_from_frame,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.exceptions import TransportError

__all__ = ["serve_connection", "run_edge", "main"]


def serve_connection(sock: socket.socket, name: str, edge=None):
    """Handshake then serve frames on one connection until EOF.

    Sends a :class:`~repro.edge.transport.HelloFrame` (with resume
    cursors when ``edge`` already holds replicas), expects a
    :class:`~repro.edge.transport.ConfigFrame` back, then answers every
    incoming frame with the edge server's replies.

    Args:
        sock: Connected socket to the central listener.
        name: This edge server's name.
        edge: An existing :class:`~repro.edge.edge_server.EdgeServer`
            to resume with, or ``None`` to build one from the handshake
            config.

    Returns:
        The (possibly newly constructed) edge server, once the central
        server closes the connection.

    Raises:
        TransportError: If the handshake does not complete.
    """
    from repro.edge.edge_server import EdgeServer

    cursors = edge.replication_cursors() if edge is not None else ()
    send_frame(sock, frame_to_bytes(HelloFrame(edge=name, cursors=cursors)))
    data = recv_frame(sock)
    if data is None:
        raise TransportError("central closed during handshake")
    reply = frame_from_bytes(data)
    if not isinstance(reply, ConfigFrame):
        raise TransportError(
            f"expected ConfigFrame, got {type(reply).__name__}"
        )
    if edge is None:
        edge = EdgeServer(
            name=name,
            config=config_from_frame(reply),
            ack_every=reply.ack_every,
            ack_bytes=reply.ack_bytes,
        )
    else:
        # A reconnect's handshake carries the *current* verification
        # bundle — apply it so a key rotation that happened while this
        # edge was disconnected is already known before any frame.
        # Ack-coalescing policy travels with it.
        edge.config = config_from_frame(reply)
        edge.ack_every = max(1, reply.ack_every)
        edge.ack_bytes = max(1, reply.ack_bytes)
    while True:
        try:
            data = recv_frame(sock)
        except TimeoutError:
            continue  # idle link (no writes lately): keep serving
        except (TransportError, OSError):
            break  # torn frame / reset: treat as a disconnect, resync later
        if data is None:
            break
        try:
            replies = edge.handle_frame(data)
        except Exception as exc:
            # Broad by design: one bad frame must not kill the process
            # (and the central expects exactly one reply per frame, so
            # answer with an error response).  Counted per FL002.
            telemetry.note("serve.handle_frame", exc)
            replies = [
                frame_to_bytes(
                    QueryResponseFrame(
                        edge=name,
                        payload=b"",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
            ]
        try:
            # One frame can yield several replies (a delta's ack plus a
            # nack, a heal's cursor ack): gather them into one vectored
            # write instead of one syscall per reply.
            send_frames(sock, replies)
        except OSError:
            break
    return edge


def run_edge(
    name: str,
    host: str,
    port: int,
    *,
    max_reconnects: int | None = None,
    retry_attempts: int = 40,
    retry_delay: float = 0.25,
    io_timeout: float = 30.0,
    verbose: bool = False,
):
    """Connect-serve-reconnect loop for one edge process.

    Args:
        name: Edge server name (registered in the handshake).
        host / port: The central listener's address.
        max_reconnects: How many times to re-dial after a disconnect
            (``None`` = until dialing itself fails).
        retry_attempts / retry_delay: Per-dial retry budget while the
            listener comes up (or back up).
        io_timeout: Socket receive timeout while serving.
        verbose: Narrate connections on stdout (useful under ``-m``).

    Returns:
        The edge server with whatever replicas it accumulated.
    """
    edge = None
    reconnects = 0
    while True:
        try:
            sock = connect_with_retry(
                host, port, attempts=retry_attempts, delay=retry_delay,
                timeout=io_timeout,
            )
        except TransportError:
            if edge is not None:
                # Served at least once: the central going away for good
                # is a normal shutdown, not a fatal error.
                return edge
            raise
        sock.settimeout(io_timeout)
        if verbose:
            print(f"[edge {name}] connected to {host}:{port}", flush=True)
        try:
            edge = serve_connection(sock, name, edge)
        except (TransportError, OSError):
            # Handshake timed out / tore mid-frame (e.g. the central's
            # accept loop was busy): treat as a disconnect and re-dial,
            # don't kill the process.
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if verbose:
            print(f"[edge {name}] disconnected", flush=True)
        reconnects += 1
        if max_reconnects is not None and reconnects > max_reconnects:
            return edge


def main(argv: list[str] | None = None) -> int:
    """CLI wrapper for :func:`run_edge` / :func:`~repro.edge.relay.run_relay`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.edge.serve",
        description="Run one edge server (or relay) process against an "
        "upstream listener.",
    )
    parser.add_argument("--name", required=True, help="edge/relay name")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--max-reconnects", type=int, default=None,
        help="stop after this many disconnects (default: keep re-dialing "
        "until the listener is gone for good)",
    )
    parser.add_argument("--retry-attempts", type=int, default=40)
    parser.add_argument("--retry-delay", type=float, default=0.25)
    parser.add_argument("--io-timeout", type=float, default=30.0)
    parser.add_argument(
        "--relay", action="store_true",
        help="run as an unkeyed store-and-forward relay instead of an edge: "
        "dial --host/--port upstream, fan out to edges dialing "
        "--listen-host/--listen-port",
    )
    parser.add_argument(
        "--listen-host", default="127.0.0.1",
        help="(relay) downstream listen address",
    )
    parser.add_argument(
        "--listen-port", type=int, default=0,
        help="(relay) downstream listen port (0 = ephemeral)",
    )
    parser.add_argument(
        "--spot-check-every", type=int, default=0,
        help="(relay) verify every Nth ingested delta signature (0 = never)",
    )
    parser.add_argument(
        "--max-store-bytes", type=int, default=0,
        help="(relay) per-table frame-store byte cap; exceeding it "
        "evicts the chain and heals by snapshot (0 = unbounded)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    try:
        if args.relay:
            from repro.edge.relay import run_relay

            run_relay(
                args.name,
                args.host,
                args.port,
                listen_host=args.listen_host,
                listen_port=args.listen_port,
                max_reconnects=args.max_reconnects,
                retry_attempts=args.retry_attempts,
                retry_delay=args.retry_delay,
                io_timeout=args.io_timeout,
                spot_check_every=args.spot_check_every,
                max_store_bytes=args.max_store_bytes,
                verbose=not args.quiet,
            )
        else:
            run_edge(
                args.name,
                args.host,
                args.port,
                max_reconnects=args.max_reconnects,
                retry_attempts=args.retry_attempts,
                retry_delay=args.retry_delay,
                io_timeout=args.io_timeout,
                verbose=not args.quiet,
            )
    except TransportError as exc:
        print(f"[edge {args.name}] fatal: {exc}", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
