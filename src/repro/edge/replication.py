"""Central-side replication state: per-table delta logs and cursors.

The seed implementation's :meth:`CentralServer.propagate` shipped a
full VB-tree clone to every edge on every mutation.  This module holds
the machinery of its replacement (DESIGN.md section 6): every mutation
is recorded as a signed, serialized :class:`~repro.core.delta.ReplicaDelta`
in a per-table :class:`DeltaLog`; edges advance a per-table LSN cursor
by applying deltas, and fall back to a full snapshot only on

* bootstrap (edge has no replica of the table yet),
* log gap (the log was truncated past the edge's cursor),
* key rotation (every signature in the replica is re-issued, so the
  log restarts under the new epoch).

Eager replication pushes each delta as it is recorded; lazy replication
lets deltas accumulate and coalesces the pending run into one signed
batch per edge pull (:func:`repro.core.delta.coalesce`), which both
amortizes the per-message signature and drops superseded node digests
(ancestors near the root are re-signed by every mutation; only the
latest survives a batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.delta import ReplicaDelta, coalesce, delta_digest
from repro.core.wire import delta_body_bytes
from repro.crypto.signatures import DigestSigner
from repro.exceptions import DeltaGapError, ReplicaDeltaError

__all__ = ["LogEntry", "DeltaLog", "Replicator"]


@dataclass(frozen=True)
class LogEntry:
    """One sealed delta retained in a table's log."""

    lsn: int
    delta: ReplicaDelta
    payload: bytes

    @property
    def nbytes(self) -> int:
        """Wire size of the sealed delta."""
        return len(self.payload)


@dataclass
class DeltaLog:
    """Ordered log of sealed deltas for one table.

    LSNs are per-table and strictly monotonic; they never reset, even
    across key rotations — a rotation consumes an LSN as a *barrier*
    (no entry is retained for it), so any edge whose cursor predates
    the barrier sees a gap and resyncs via snapshot.

    Attributes:
        table: The VB-tree this log replicates.
        max_entries: Retention bound; older entries are truncated,
            forcing laggard edges onto the snapshot path.
    """

    table: str
    max_entries: int = 1024
    last_lsn: int = 0
    _entries: list[LogEntry] = field(default_factory=list)

    @property
    def first_retained_lsn(self) -> int:
        """LSN of the oldest retained entry (0 if the log is empty)."""
        return self._entries[0].lsn if self._entries else 0

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, entry: LogEntry) -> None:
        """Retain a sealed entry (must carry ``last_lsn``)."""
        if entry.lsn != self.last_lsn:
            raise ReplicaDeltaError(
                f"log entry lsn {entry.lsn} != assigned lsn {self.last_lsn}"
            )
        self._entries.append(entry)
        if len(self._entries) > self.max_entries:
            del self._entries[: len(self._entries) - self.max_entries]

    def next_lsn(self) -> int:
        """Consume and return the next LSN."""
        self.last_lsn += 1
        return self.last_lsn

    def barrier(self) -> int:
        """Consume an LSN without retaining an entry and drop the log.

        Called on key rotation: every retained delta's signatures are
        obsolete, and any cursor at or before the barrier now has a gap,
        which is exactly what forces the snapshot resync.
        """
        self._entries.clear()
        return self.next_lsn()

    def has_gap(self, cursor: int) -> bool:
        """True if a replica at ``cursor`` can no longer catch up from
        this log alone."""
        if cursor >= self.last_lsn:
            return False
        if not self._entries:
            return True  # pending LSNs exist but no entries survive
        return cursor + 1 < self.first_retained_lsn

    def entries_since(self, cursor: int) -> list[LogEntry]:
        """All retained entries after ``cursor``, oldest first.

        Raises:
            DeltaGapError: If truncation (or a rotation barrier) removed
                entries the replica still needs.
        """
        if self.has_gap(cursor):
            raise DeltaGapError(
                f"log for {self.table!r} starts at lsn "
                f"{self.first_retained_lsn}, replica cursor is {cursor}; "
                "snapshot resync required"
            )
        if not self._entries:
            return []
        # Retained LSNs are contiguous, so the suffix is a direct slice
        # (this sits on the eager per-mutation hot path).
        start = max(0, cursor + 1 - self.first_retained_lsn)
        return self._entries[start:]


class Replicator:
    """Assigns LSNs, signs deltas, and retains them for edge catch-up.

    Args:
        max_log_entries: Per-table log retention (see
            :attr:`DeltaLog.max_entries`).
    """

    def __init__(self, max_log_entries: int = 1024) -> None:
        self.max_log_entries = max_log_entries
        self.logs: dict[str, DeltaLog] = {}

    def log_for(self, table: str) -> DeltaLog:
        """The (lazily created) log for ``table``."""
        log = self.logs.get(table)
        if log is None:
            log = DeltaLog(table=table, max_entries=self.max_log_entries)
            self.logs[table] = log
        return log

    def seal(
        self, delta: ReplicaDelta, signer: DigestSigner, sig_len: int
    ) -> tuple[ReplicaDelta, bytes]:
        """Sign a delta's body and serialize body + signature."""
        body = delta_body_bytes(delta, sig_len)
        signed = signer.sign(delta_digest(body))
        sealed = replace(delta, signature=signed)
        return sealed, body + signed.to_bytes(sig_len)

    def record(
        self,
        replica_name: str,
        delta: ReplicaDelta,
        signer: DigestSigner,
        sig_len: int,
    ) -> LogEntry:
        """Assign the next LSN to an updater-emitted delta, seal it, and
        retain it in the replica's log.

        ``replica_name`` overrides the delta's table field: a secondary
        VB-tree's updater emits deltas under the *base* schema name, but
        each replicated tree (base table, join view, secondary index)
        has its own log and LSN sequence.
        """
        log = self.log_for(replica_name)
        lsn = log.next_lsn()
        stamped = replace(
            delta,
            table=replica_name,
            lsn_first=lsn,
            lsn_last=lsn,
            epoch=signer.epoch,
        )
        sealed, payload = self.seal(stamped, signer, sig_len)
        entry = LogEntry(lsn=lsn, delta=sealed, payload=payload)
        log.append(entry)
        return entry

    def batch_since(
        self,
        table: str,
        cursor: int,
        signer: DigestSigner,
        sig_len: int,
    ) -> bytes | None:
        """One wire payload bringing a replica at ``cursor`` up to date.

        A single pending delta ships its retained payload verbatim; a
        run of pending deltas is coalesced into one freshly signed batch.
        Returns ``None`` when the replica is current.

        Raises:
            DeltaGapError: If the log cannot cover the cursor.
        """
        # entries_since raises DeltaGapError whenever the cursor is
        # behind LSNs the log no longer covers, so an empty result here
        # always means the replica is current.
        entries = self.log_for(table).entries_since(cursor)
        if not entries:
            return None
        if len(entries) == 1:
            return entries[0].payload
        batch = coalesce([e.delta for e in entries])
        _sealed, payload = self.seal(batch, signer, sig_len)
        return payload
