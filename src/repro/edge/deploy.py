"""Multi-process deployment: central listener + edge OS processes.

This is the paper's Figure 2 drawn with real process boundaries: the
trusted central DBMS runs in *this* process and listens on a TCP port;
each edge server is a separate OS process (``python -m
repro.edge.serve``) that dials in, registers, and receives its replicas
over the wire.  Nothing but serialized frames ever crosses the
boundary — the same property the in-process transport enforces
structurally, now enforced by the operating system.

Typical use (see also ``examples/socket_deployment.py`` and the
README's Deployment section)::

    central = CentralServer("proddb", seed=7)
    central.create_table(schema, rows)
    with Deployment(central) as deploy:
        deploy.launch_edge("edge-0")
        deploy.launch_edge("edge-1")
        deploy.wait_for_edge("edge-0")
        deploy.wait_for_edge("edge-1")
        central.insert("items", (1001, "new row"))
        deploy.sync()
        response = deploy.range_query("edge-0", "items", low=1, high=50)
        assert central.make_client().verify(response).ok

Failure handling rides entirely on the existing replication machinery:
a killed edge's link reports ``failed`` sends (like a partitioned
in-process link) and the central write path never blocks on it; when
the process is relaunched it re-registers with an empty cursor list
and the fan-out engine's epoch check heals it with snapshots — the
same nack→retry→snapshot-heal escalation, now exercised by real
``ECONNRESET``\\ s.
"""

from __future__ import annotations

import os
import random
import socket
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.vo import VOFormat
from repro.core.wire import predicate_to_bytes, result_from_bytes
from repro.edge.central import CentralServer
from repro.edge.edge_server import EdgeResponse
from repro.edge.event_loop import EdgeEventLoop, ReactorTransport
from repro.edge import telemetry
from repro.edge.socket_transport import TcpTransport, recv_frame, send_frame
from repro.edge.transport import (
    HelloFrame,
    Transport,
    QueryRequestFrame,
    QueryResponseFrame,
    config_to_frame,
    frame_from_bytes,
    frame_to_bytes,
    range_query_frame,
    secondary_query_frame,
    select_query_frame,
)
from repro.exceptions import TransportError

__all__ = ["EdgeProcess", "Deployment", "ShardedDeployment", "RelayDeployment"]


def _src_root() -> str:
    """The directory to put on the edge processes' ``PYTHONPATH``."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@dataclass
class EdgeProcess:
    """One managed edge: its OS process and its current link.

    Attributes:
        name: Edge server name.
        process: The ``python -m repro.edge.serve`` subprocess (``None``
            for externally launched edges that just dialed in).
        transport: Link over the edge's most recent connection.
        registered: Set each time the edge completes a handshake.
        log: The open log-file handle the current process writes to
            (``None`` when logging to ``/dev/null``).  Kept per edge so
            a restart closes the superseded handle instead of leaking
            one file descriptor per relaunch.
    """

    name: str
    process: Optional[subprocess.Popen] = None
    transport: Optional[Transport] = None
    registered: threading.Event = field(default_factory=threading.Event)
    log: Any = None

    @property
    def connected(self) -> bool:
        return self.transport is not None and self.transport.connected

    @property
    def alive(self) -> bool:
        """True while the subprocess is running."""
        return self.process is not None and self.process.poll() is None


class Deployment:
    """Run a central listener and manage edge server processes.

    Args:
        central: The trusted central server (lives in this process).
        host: Listen address (loopback by default).
        port: Listen port (``0`` = ephemeral; read :attr:`address`).
        io_timeout: Receive timeout on every accepted edge link.
        log_dir: Directory for per-edge stdout/stderr logs; edges are
            silenced (``/dev/null``) when not given.
        io_mode: ``"reactor"`` (default) serves every accepted edge
            link from one shared :class:`~repro.edge.event_loop.EdgeEventLoop`
            — single-threaded, non-blocking, vectored writes; the
            fan-out engine's settle points become readiness-driven.
            ``"threaded"`` is the blocking-``sendall``
            :class:`~repro.edge.socket_transport.TcpTransport` path,
            kept as a selectable fallback (every deployment test runs
            against both; see the ``REPRO_IO_MODE`` env override).
        reactor: Share an existing :class:`EdgeEventLoop` instead of
            owning a private one (reactor mode only).  A sharded
            deployment runs one ``Deployment`` per signer shard on one
            machine; sharing the loop keeps every shard's accepted
            links on a single selector.  A shared reactor is *not*
            closed by :meth:`shutdown` — its owner closes it.
        shard_map: A :class:`~repro.edge.sharding.ShardMap` to push to
            every registering edge in the handshake ``ConfigFrame``
            (optional trailing fields — absent, the handshake is
            byte-identical to the unsharded protocol).
    """

    def __init__(
        self,
        central: CentralServer,
        host: str = "127.0.0.1",
        port: int = 0,
        io_timeout: float = 10.0,
        log_dir: str | None = None,
        io_mode: str | None = None,
        reactor: EdgeEventLoop | None = None,
        shard_map=None,
    ) -> None:
        self.central = central
        self.io_timeout = io_timeout
        self.log_dir = log_dir
        self.shard_map = shard_map
        self.io_mode = (
            io_mode or os.environ.get("REPRO_IO_MODE", "reactor")
        ).lower()
        if self.io_mode not in ("reactor", "threaded"):
            raise ValueError(
                f"io_mode must be 'reactor' or 'threaded', got {self.io_mode!r}"
            )
        self.reactor: EdgeEventLoop | None = None
        self._owns_reactor = reactor is None
        if self.io_mode == "reactor":
            self.reactor = reactor if reactor is not None else EdgeEventLoop()
            central.fanout.reactor = self.reactor
        self.edges: dict[str, EdgeProcess] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="deploy-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Listener / handshake
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` edges should dial."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            try:
                self._handshake(conn)
            except (TransportError, OSError) as exc:
                # A broken dialer must not take the listener down.
                telemetry.note("deploy.accept_loop.handshake", exc)
                try:
                    conn.close()
                except OSError:
                    pass
            except Exception as exc:  # broad by design: anything else is
                # a bug worth counting, not a torn socket.
                telemetry.note("deploy.accept_loop.unexpected", exc)
                try:
                    conn.close()
                except OSError:
                    pass

    def _handshake(self, conn: socket.socket) -> None:
        """Serve one edge registration (runs on the accept thread)."""
        conn.settimeout(self.io_timeout)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        data = recv_frame(conn)
        if data is None:
            raise TransportError("edge closed during handshake")
        hello = frame_from_bytes(data)
        if not isinstance(hello, HelloFrame):
            raise TransportError(
                f"expected HelloFrame, got {type(hello).__name__}"
            )
        config = config_to_frame(
            self.central.edge_config(),
            ack_every=self.central.ack_every,
            ack_bytes=self.central.ack_bytes,
            shard_id=self.central.shard_id,
            shard_map=(
                self.shard_map.to_wire() if self.shard_map is not None else None
            ),
        )
        send_frame(conn, frame_to_bytes(config))
        transport: Transport
        if self.reactor is not None:
            transport = ReactorTransport(
                hello.edge, self.reactor, conn, timeout=self.io_timeout
            )
        else:
            transport = TcpTransport(hello.edge, conn, timeout=self.io_timeout)
        # Seed the peer with the epoch of the bundle we *actually sent*
        # — a rotation racing this handshake must still trigger a
        # refresh on the next pump.
        sent_epoch = max(
            (record[0] for record in config.epochs), default=-1
        )
        self.central.attach_remote_edge(
            hello.edge, transport, cursors=hello.cursors,
            config_epoch=sent_epoch,
        )
        handle = self.edges.setdefault(hello.edge, EdgeProcess(hello.edge))
        handle.transport = transport
        handle.registered.set()

    # ------------------------------------------------------------------
    # Edge process management
    # ------------------------------------------------------------------

    def launch_edge(
        self, name: str, *, extra_args: Sequence[str] = ()
    ) -> EdgeProcess:
        """Start ``python -m repro.edge.serve`` for ``name``.

        The subprocess inherits this interpreter and gets the package's
        source root prepended to ``PYTHONPATH``.  Call
        :meth:`wait_for_edge` before relying on its replicas.
        """
        host, port = self.address
        env = dict(os.environ)
        env["PYTHONPATH"] = _src_root() + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        handle = self.edges.setdefault(name, EdgeProcess(name))
        if handle.log is not None:
            # Relaunch under the same name: the dead process's log
            # handle is superseded — close it now or every restart
            # leaks one file descriptor.
            try:
                handle.log.close()
            except OSError:
                pass
            handle.log = None
        stdout: Any = subprocess.DEVNULL
        if self.log_dir is not None:
            os.makedirs(self.log_dir, exist_ok=True)
            stdout = open(  # not a context manager: closed on relaunch/shutdown
                os.path.join(self.log_dir, f"{name}.log"), "ab"
            )
            handle.log = stdout
        handle.registered.clear()
        handle.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.edge.serve",
                "--name", name, "--host", host, "--port", str(port),
                *extra_args,
            ],
            env=env,
            stdout=stdout,
            stderr=subprocess.STDOUT if stdout is not subprocess.DEVNULL
            else subprocess.DEVNULL,
        )
        return handle

    def wait_for_edge(
        self, name: str, timeout: float = 30.0, sync: bool = True
    ) -> EdgeProcess:
        """Block until ``name`` has completed its handshake.

        Args:
            name: Edge to wait for.
            timeout: Registration deadline.
            sync: Also run a :meth:`sync` round so the edge's replicas
                are current when this returns.

        Raises:
            TransportError: If the edge does not register in time.
        """
        handle = self.edges.setdefault(name, EdgeProcess(name))
        if not handle.registered.wait(timeout):
            raise TransportError(
                f"edge {name!r} did not register within {timeout}s"
            )
        if sync:
            self.sync()
        return handle

    def kill_edge(self, name: str) -> None:
        """SIGKILL the edge's process — the mid-stream crash scenario.

        The central side is *not* told: its next send discovers the
        reset, exactly as with a remote machine failure.
        """
        handle = self.edges[name]
        if handle.process is not None and handle.process.poll() is None:
            handle.process.kill()
            handle.process.wait(timeout=10)
        handle.registered.clear()

    def restart_edge(self, name: str) -> EdgeProcess:
        """Relaunch a (killed) edge process under the same name."""
        self.kill_edge(name)
        return self.launch_edge(name)

    def restart_storm(
        self,
        names: Sequence[str] | None = None,
        cycles: int = 1,
        seed: int = 0,
        wait: bool = True,
        timeout: float = 30.0,
    ) -> list[str]:
        """Seeded SIGKILL/relaunch storm over the named edges.

        Each cycle kills and relaunches every target once, in an order
        drawn from ``random.Random(seed)`` — the same seed always
        produces the same kill order, which is what makes a storm
        failure replayable (see ``src/repro/chaos``).

        Args:
            names: Edges to storm (default: every managed edge).
            cycles: Kill/relaunch passes over the whole target set.
            seed: Shuffle seed; the schedule is a pure function of it.
            wait: Re-wait for registration (and sync) after each cycle,
                so the storm ends with a healed fleet.
            timeout: Per-edge registration deadline when waiting.

        Returns:
            The kill order actually applied, one entry per kill.
        """
        rng = random.Random(seed)
        targets = list(names) if names is not None else sorted(self.edges)
        order: list[str] = []
        for _ in range(max(0, cycles)):
            shuffled = list(targets)
            rng.shuffle(shuffled)
            for name in shuffled:
                self.restart_edge(name)
                order.append(name)
            if wait:
                for name in shuffled:
                    self.wait_for_edge(name, timeout=timeout)
        return order

    # ------------------------------------------------------------------
    # Replication & queries over the wire
    # ------------------------------------------------------------------

    def sync(self, table: str | None = None, max_rounds: int = 8) -> int:
        """Propagate until every *connected* edge is current.

        Each round pumps the fan-out engine and then drains the
        pipelined acks; multiple rounds let the nack→retry→snapshot
        escalation run to quiescence (a heal needs one round to learn
        of the problem and one to ship the fix).  Under the reactor
        the drain is readiness-driven: every edge's queued frames and
        its cursor probe leave in one vectored write, and one shared
        ``select`` loop settles the whole fleet as acks land — no
        per-peer probe→poll rounds, no busy polling.

        Returns:
            Total frames shipped.
        """
        shipped = 0
        for _ in range(max_rounds):
            shipped += self.central.propagate(table)
            self.central.fanout.drain(wait=True)
            if self._settled(table):
                break
        return shipped

    def _settled(self, table: str | None) -> bool:
        tables = [table] if table else list(self.central.vbtrees)
        # Snapshot: the accept thread may register a dialing edge
        # mid-iteration.
        for handle in list(self.edges.values()):
            if not handle.connected:
                continue
            peer = self.central.fanout.peer(handle.name)
            if peer.needs_snapshot or peer.inflight:
                return False
            for t in tables:
                if self.central.fanout.staleness(handle.name, t) != 0:
                    return False
        return True

    def staleness(self, name: str, table: str) -> int:
        """LSN lag of ``name``'s replica of ``table`` (ack-fed)."""
        return self.central.staleness(name, table)

    def _request(self, name: str, frame: QueryRequestFrame) -> EdgeResponse:
        handle = self.edges.get(name)
        if handle is None or handle.transport is None:
            raise TransportError(f"no connected edge {name!r}")
        reply = handle.transport.request(frame)
        if not isinstance(reply, QueryResponseFrame):
            raise TransportError(
                f"expected QueryResponseFrame, got {type(reply).__name__}"
            )
        # The response rode the same ordered link replication uses, so
        # its piggybacked cursors are acks the central can bank — under
        # coalescing this keeps the authoritative staleness view fresh
        # between settle points without a single extra frame.
        self.central.fanout.observe_response_cursors(name, reply.cursors)
        if reply.error:
            raise TransportError(
                f"edge {name!r} rejected query: {reply.error}"
            )
        result = result_from_bytes(reply.payload)
        return EdgeResponse(
            edge_name=reply.edge,
            result=result,
            wire_bytes=len(reply.payload),
            transfer=handle.transport.up_channel.transfers[-1],
            lsn=reply.lsn,
            epoch=reply.epoch,
        )

    def make_router(
        self,
        names: Sequence[str] | None = None,
        policy="round_robin",
        **kwargs,
    ):
        """A :class:`~repro.edge.router.VerifyingRouter` over this
        deployment's edge processes, on real TCP query channels.

        Channels resolve each edge's *current* connection per request,
        so a killed edge fails fast (and enters router cooldown) while
        a restarted one is routable again right after re-registering.
        Staleness hints are seeded from the fan-out engine's cursors.

        Args:
            names: Edges to route over (default: every edge known to
                the deployment, connected or not — an unreachable edge
                just starts in the failure path).
            policy: Routing policy name or enum.
            **kwargs: Forwarded to :class:`~repro.edge.router.EdgeRouter`.
        """
        from repro.edge.router import (
            DeploymentQueryChannel,
            EdgeRouter,
            VerifyingRouter,
        )

        if names is None:
            names = list(self.edges)
        channels = [DeploymentQueryChannel(self, name) for name in names]
        router = EdgeRouter(channels, policy=policy, **kwargs)
        router.seed_from_fanout(self.central.fanout)
        return VerifyingRouter(router, self.central.make_client())

    def range_query(
        self,
        edge: str,
        table: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """Primary-key range query against a remote edge, over TCP."""
        return self._request(
            edge, range_query_frame(table, low, high, columns, vo_format)
        )

    def secondary_range_query(
        self,
        edge: str,
        table: str,
        attribute: str,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """Secondary-index range query against a remote edge."""
        return self._request(
            edge,
            secondary_query_frame(table, attribute, low, high, columns, vo_format),
        )

    def select(
        self,
        edge: str,
        table: str,
        predicate,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
    ) -> EdgeResponse:
        """General predicate selection against a remote edge."""
        return self._request(
            edge,
            select_query_frame(
                table, predicate_to_bytes(predicate), columns, vo_format
            ),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Close the listener, links, and every managed process."""
        if self._closed:
            return
        self._closed = True
        try:
            # shutdown() (not just close()) is what actually wakes a
            # thread blocked in accept() on Linux.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        handles = list(self.edges.values())
        for handle in handles:
            if handle.transport is not None:
                handle.transport.close()
        if self.reactor is not None:
            if self._owns_reactor:
                self.reactor.close()
            if self.central.fanout.reactor is self.reactor:
                self.central.fanout.reactor = None
        for handle in handles:
            proc = handle.process
            if proc is None or proc.poll() is not None:
                continue
            proc.terminate()
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=timeout)
        for handle in handles:
            if handle.log is not None:
                try:
                    handle.log.close()
                except OSError:
                    pass
                handle.log = None
        self._accept_thread.join(timeout=timeout)

    def __enter__(self) -> "Deployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class RelayDeployment:
    """Central → k relay processes → n edge processes (DESIGN.md §13).

    The hierarchical face of the fabric: the trusted central runs in
    this process behind a :class:`Deployment` listener; each **relay**
    is a separate OS process (``python -m repro.edge.serve --relay``)
    that dials the central like an edge (``role="relay"`` in its hello)
    and re-listens for its own downstream edge processes.  The central
    sees only the k relays — its egress scales with k, not n — while
    every edge still verifies the byte-identical signed frames
    end-to-end, so the relays need no trust.

    Relay listen ports are reserved up front and *pinned per name*: a
    killed relay's replacement rebinds the same address, so its
    downstream edges' reconnect loops find it again without any
    coordination.  A relay SIGKILL loses the relay's frame store; its
    restart re-registers empty, heals from the central via snapshot,
    and re-seeds the whole subtree — the exact escalation path a killed
    edge already exercises, one level up.

    Args:
        central: The trusted central server (lives in this process).
        host: Listen address for the central and every relay.
        io_timeout / log_dir / io_mode: As for :class:`Deployment`.
    """

    def __init__(
        self,
        central: CentralServer,
        host: str = "127.0.0.1",
        io_timeout: float = 10.0,
        log_dir: str | None = None,
        io_mode: str | None = None,
    ) -> None:
        self.host = host
        self.log_dir = log_dir
        self.deploy = Deployment(
            central, host=host, io_timeout=io_timeout,
            log_dir=log_dir, io_mode=io_mode,
        )
        self.central = central
        self.relays: dict[str, EdgeProcess] = {}
        self.relay_ports: dict[str, int] = {}
        #: Launch kwargs pinned per relay name, so a restart rebuilds
        #: the process with the same store cap / spot-check policy.
        self.relay_opts: dict[str, dict] = {}
        self.edge_procs: dict[str, EdgeProcess] = {}
        self.edge_relay: dict[str, str] = {}

    @property
    def address(self) -> tuple[str, int]:
        """The central listener's ``(host, port)``."""
        return self.deploy.address

    def relay_address(self, name: str) -> tuple[str, int]:
        """The ``(host, port)`` edges of relay ``name`` dial."""
        return (self.host, self.relay_ports[name])

    def _reserve_port(self) -> int:
        """Pick a currently-free port the relay process will rebind.

        The reservation socket closes before the relay binds, so this
        is only *probably* free — fine for tests/benches on loopback,
        and what makes relay restart address-stable.
        """
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((self.host, 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def _spawn(
        self, handles: dict[str, EdgeProcess], name: str, args: list[str]
    ) -> EdgeProcess:
        """Popen a serve subprocess with the same env/log discipline as
        :meth:`Deployment.launch_edge`."""
        env = dict(os.environ)
        env["PYTHONPATH"] = _src_root() + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        handle = handles.setdefault(name, EdgeProcess(name))
        if handle.log is not None:
            try:
                handle.log.close()
            except OSError:
                pass
            handle.log = None
        stdout: Any = subprocess.DEVNULL
        if self.log_dir is not None:
            os.makedirs(self.log_dir, exist_ok=True)
            stdout = open(  # not a context manager: closed on relaunch/shutdown
                os.path.join(self.log_dir, f"{name}.log"), "ab"
            )
            handle.log = stdout
        handle.registered.clear()
        handle.process = subprocess.Popen(
            [sys.executable, "-m", "repro.edge.serve", *args],
            env=env,
            stdout=stdout,
            stderr=subprocess.STDOUT if stdout is not subprocess.DEVNULL
            else subprocess.DEVNULL,
        )
        return handle

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------

    def launch_relay(
        self, name: str, *, spot_check_every: int = 0,
        max_store_bytes: int = 0,
    ) -> EdgeProcess:
        """Start a relay process dialing the central listener.

        The relay's downstream listen port is reserved on the first
        launch and reused on every relaunch under the same name.
        """
        chost, cport = self.deploy.address
        port = self.relay_ports.get(name)
        if port is None:
            port = self._reserve_port()
            self.relay_ports[name] = port
        self.relay_opts[name] = {
            "spot_check_every": spot_check_every,
            "max_store_bytes": max_store_bytes,
        }
        return self._spawn(
            self.relays,
            name,
            [
                "--relay", "--name", name,
                "--host", chost, "--port", str(cport),
                "--listen-host", self.host, "--listen-port", str(port),
                "--spot-check-every", str(spot_check_every),
                "--max-store-bytes", str(max_store_bytes),
                "--retry-attempts", "120",
            ],
        )

    def launch_edge(self, name: str, relay: str) -> EdgeProcess:
        """Start an edge process dialing relay ``relay``'s listener.

        The generous retry budget keeps the edge re-dialing through a
        relay kill/restart window instead of giving up.
        """
        self.edge_relay[name] = relay
        return self._spawn(
            self.edge_procs,
            name,
            [
                "--name", name,
                "--host", self.host,
                "--port", str(self.relay_ports[relay]),
                "--retry-attempts", "120",
            ],
        )

    def wait_for_relay(self, name: str, timeout: float = 30.0) -> EdgeProcess:
        """Block until relay ``name`` has registered with the central.

        Registration is observed at the central listener (the relay's
        upstream hello), so this also guarantees the relay's downstream
        listener is up — it binds before dialing.
        """
        handle = self.deploy.edges.setdefault(name, EdgeProcess(name))
        if not handle.registered.wait(timeout):
            raise TransportError(
                f"relay {name!r} did not register within {timeout}s"
            )
        return self.relays[name]

    def wait_for_edges(
        self,
        relay: str,
        names: Sequence[str],
        table: str,
        timeout: float = 30.0,
    ) -> None:
        """Block until every named edge answers a query through the
        relay.

        Edges register with the relay *process*, which this process
        cannot observe directly — so readiness is probed the way it
        will be used: round-robin queries through the relay until every
        name has answered, interleaved with sync rounds so the probed
        replicas exist.

        Raises:
            TransportError: If some edge never answered in time.
        """
        import time as _time

        deadline = _time.monotonic() + timeout
        missing = set(names)
        while missing:
            if _time.monotonic() > deadline:
                raise TransportError(
                    f"edges {sorted(missing)} behind relay {relay!r} did not "
                    f"answer within {timeout}s"
                )
            self.sync()
            for _ in range(len(missing) + 1):
                try:
                    response = self.deploy.range_query(relay, table)
                except TransportError:
                    _time.sleep(0.2)
                    break
                missing.discard(response.edge_name)
            else:
                continue

    def kill_relay(self, name: str) -> None:
        """SIGKILL the relay — its frame store dies with it; the
        central discovers the reset on its next send and the subtree's
        edges re-dial the (pinned) listen address until a replacement
        binds it."""
        handle = self.relays[name]
        if handle.process is not None and handle.process.poll() is None:
            handle.process.kill()
            handle.process.wait(timeout=10)
        central_handle = self.deploy.edges.get(name)
        if central_handle is not None:
            central_handle.registered.clear()

    def restart_relay(self, name: str) -> EdgeProcess:
        """Relaunch a (killed) relay on the same listen port, with the
        same launch options it was first given."""
        self.kill_relay(name)
        return self.launch_relay(name, **self.relay_opts.get(name, {}))

    def restart_storm(
        self,
        names: Sequence[str] | None = None,
        cycles: int = 1,
        seed: int = 0,
    ) -> list[str]:
        """Seeded SIGKILL/relaunch storm over the named relays.

        The relay-tier sibling of :meth:`Deployment.restart_storm`:
        the kill order is a pure function of ``seed``.  Waiting is the
        caller's job (:meth:`wait_for_edges` probes the subtree the
        way it will be used), because a relay's readiness is only
        observable through its edges.

        Returns:
            The kill order actually applied, one entry per kill.
        """
        rng = random.Random(seed)
        targets = list(names) if names is not None else sorted(self.relays)
        order: list[str] = []
        for _ in range(max(0, cycles)):
            shuffled = list(targets)
            rng.shuffle(shuffled)
            for name in shuffled:
                self.restart_relay(name)
                order.append(name)
        return order

    def kill_edge(self, name: str) -> None:
        """SIGKILL a downstream edge process."""
        handle = self.edge_procs[name]
        if handle.process is not None and handle.process.poll() is None:
            handle.process.kill()
            handle.process.wait(timeout=10)

    def restart_edge(self, name: str) -> EdgeProcess:
        """Relaunch a (killed) edge under the same name and relay."""
        self.kill_edge(name)
        return self.launch_edge(name, self.edge_relay[name])

    # ------------------------------------------------------------------
    # Replication & queries
    # ------------------------------------------------------------------

    def sync(self, table: str | None = None, max_rounds: int = 16) -> int:
        """Propagate until the whole *tree* is current.

        The relay's cumulative acks carry min-cursor aggregates over
        its connected edges, so the central's ``_settled`` check — all
        connected peers current — is transitively a statement about the
        subtree.  The extra rounds (vs a flat deployment) cover the
        store-and-forward hop: one round lands frames on the relays,
        later rounds let the relays pump them down and the aggregate
        acks ride back.
        """
        return self.deploy.sync(table, max_rounds=max_rounds)

    def make_router(self, names: Sequence[str] | None = None, **kwargs):
        """A :class:`~repro.edge.router.VerifyingRouter` over the relay
        links: each channel queries one relay, which round-robins the
        request over its own connected edges.  A killed relay fails
        fast into router cooldown and its sibling serves — failover one
        tier up, verification still end-to-end."""
        return self.deploy.make_router(
            names=list(self.relays) if names is None else names, **kwargs
        )

    def range_query(self, relay: str, table: str, **kwargs):
        """Range query routed through ``relay`` to one of its edges."""
        return self.deploy.range_query(relay, table, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop edges, then relays, then the central listener."""
        for handles in (self.edge_procs, self.relays):
            for handle in handles.values():
                proc = handle.process
                if proc is not None and proc.poll() is None:
                    proc.terminate()
            for handle in handles.values():
                proc = handle.process
                if proc is None:
                    continue
                try:
                    proc.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=timeout)
                if handle.log is not None:
                    try:
                        handle.log.close()
                    except OSError:
                        pass
                    handle.log = None
        self.deploy.shutdown(timeout=timeout)

    def __enter__(self) -> "RelayDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ShardedDeployment:
    """One listener per signer shard, one shared reactor, one machine.

    The multi-process face of
    :class:`~repro.edge.sharding.ShardedCentral`: every shard gets its
    own :class:`Deployment` (own TCP listener, own fan-out engine, own
    edge processes), while reactor mode shares a single
    :class:`~repro.edge.event_loop.EdgeEventLoop` across all of them —
    N signer shards' worth of accepted links on one selector.  Each
    shard's handshake ``ConfigFrame`` carries the plane's versioned
    shard map plus that shard's id and public keys, so a registering
    edge (or a map-restoring router) learns the whole placement from
    any one shard.

    Args:
        sharded: The sharded central plane.
        host: Listen address for every shard listener.
        io_mode / io_timeout / log_dir: As for :class:`Deployment`.
    """

    def __init__(
        self,
        sharded,
        host: str = "127.0.0.1",
        io_timeout: float = 10.0,
        log_dir: str | None = None,
        io_mode: str | None = None,
    ) -> None:
        self.sharded = sharded
        mode = (io_mode or os.environ.get("REPRO_IO_MODE", "reactor")).lower()
        self.reactor: EdgeEventLoop | None = (
            EdgeEventLoop() if mode == "reactor" else None
        )
        self.deployments: list[Deployment] = [
            Deployment(
                shard,
                host=host,
                io_timeout=io_timeout,
                log_dir=log_dir,
                io_mode=mode,
                reactor=self.reactor,
                shard_map=sharded.shard_map,
            )
            for shard in sharded.shards
        ]

    def deployment(self, shard_id: int) -> Deployment:
        """The per-shard deployment (IndexError if unknown)."""
        return self.deployments[shard_id]

    def address(self, shard_id: int) -> tuple[str, int]:
        """The ``(host, port)`` edges of shard ``shard_id`` dial."""
        return self.deployments[shard_id].address

    def launch_edge(self, shard_id: int, name: str) -> EdgeProcess:
        """Start an edge process attached to shard ``shard_id``."""
        return self.deployments[shard_id].launch_edge(name)

    def wait_for_edge(
        self, shard_id: int, name: str, timeout: float = 30.0
    ) -> EdgeProcess:
        """Block until the edge has registered with its shard."""
        return self.deployments[shard_id].wait_for_edge(name, timeout=timeout)

    def sync(self) -> int:
        """Propagate every shard until its connected edges are current.

        Shards are share-nothing, so per-shard sync rounds compose
        without any cross-shard ordering concern.

        Returns:
            Total frames shipped across all shards.
        """
        return sum(deploy.sync() for deploy in self.deployments)

    def make_router(self, policy="round_robin", **kwargs):
        """A :class:`~repro.edge.router.ScatterGatherRouter` over every
        shard's TCP edge processes: per-shard verify-or-failover
        routers (each holding its own shard's public keys) composed
        with the plane's shard map."""
        routers = {
            shard_id: deploy.make_router(policy=policy, **kwargs)
            for shard_id, deploy in enumerate(self.deployments)
        }
        return self.sharded.make_sharded_router(routers)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Shut down every shard deployment, then the shared reactor."""
        for deploy in self.deployments:
            deploy.shutdown(timeout=timeout)
        if self.reactor is not None:
            self.reactor.close()

    def __enter__(self) -> "ShardedDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
