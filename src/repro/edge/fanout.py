"""Central-side replication fan-out over the message transport.

Before this engine existed, ``CentralServer._after_update`` walked every
edge synchronously inside the write path — a diverged replica was healed
with an O(tree) snapshot *before* the insert returned, and one wedged
edge delayed all the others.  The fan-out engine decouples that:
mutations only *record* deltas; delivery happens in :meth:`pump` cycles
that walk the attached edges (serially or on a thread pool), with

* **per-edge cursors** — each peer's delta cursor is central-side state
  fed exclusively by :class:`~repro.edge.transport.AckFrame` replies
  (the edge is untrusted, so acks are treated as routing hints: a lying
  cursor can only cause redundant sends or a snapshot heal, never an
  integrity violation — every payload is signed);
* **a bounded in-flight window** — at most ``window`` unacknowledged
  frames per edge; a slow (frame-holding) link absorbs up to the window
  and is then skipped, so the write path and the other edges never wait
  on it;
* **nack → retry → snapshot-heal escalation** — a ``gap`` nack gets one
  retry from the cursor the edge reports; ``tamper``/``diverged`` nacks
  (and a failed retry) escalate to a full snapshot;
* **payload sharing** — peers at the same cursor receive byte-identical
  sealed batches, built once per pump.

Wedged links (partitioned or dropping) simply leave the peer's cursor
behind; a later pump retries, and if the delta log has been truncated
past the cursor by then, the peer heals via the snapshot path — the
standard lazy-catch-up machinery, no special recovery code.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.wire import snapshot_to_bytes
from repro.edge.transport import (
    AckFrame,
    DeltaFrame,
    InProcessTransport,
    SnapshotFrame,
    Transport,
    config_to_frame,
)
from repro.exceptions import DeltaGapError, ReplicationError, StaleKeyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.edge.central import CentralServer

__all__ = ["PeerState", "FanoutEngine"]


@dataclass
class PeerState:
    """Central-side replication state for one edge server.

    Attributes:
        name: The edge's name (transport link label).
        transport: The link to the edge.
        acked_lsns: Per-table cursor confirmed by the edge's acks.
        acked_epochs: Per-table key epoch confirmed by acks.
        sent_lsns: Optimistic per-table cursor including frames still
            in flight (queued in a slow link); falls back to the acked
            cursor when a send is known lost.
        inflight: Unacknowledged frames sitting in the link.
        needs_snapshot: Tables flagged for a full-resync heal.
        snapshot_inflight: Tables whose snapshot sits unacknowledged in
            a slow link — suppresses duplicate O(tree) sends until the
            edge acks (any ack for the table clears it).
        config_epoch: Key epoch of the last verification bundle shipped
            to this peer (handshake or refresh) — suppresses duplicate
            key-ring refreshes when several tables heal after one
            rotation.
    """

    name: str
    transport: Transport
    acked_lsns: dict[str, int] = field(default_factory=dict)
    acked_epochs: dict[str, int] = field(default_factory=dict)
    sent_lsns: dict[str, int] = field(default_factory=dict)
    inflight: int = 0
    needs_snapshot: set[str] = field(default_factory=set)
    snapshot_inflight: set[str] = field(default_factory=set)
    config_epoch: int = -1

    def cursor(self, table: str) -> int:
        """The cursor to extend with the next send."""
        return self.sent_lsns.get(table, self.acked_lsns.get(table, 0))

    def reset_cursor(self, table: str) -> None:
        """Forget optimistic progress (a send was lost or rejected)."""
        self.sent_lsns[table] = self.acked_lsns.get(table, 0)


class FanoutEngine:
    """Concurrent, flow-controlled delta/snapshot delivery to all edges.

    Args:
        central: The owning central server (same trust domain).
        window: Per-edge bound on unacknowledged in-flight frames.
        workers: Thread-pool size for concurrent per-edge delivery;
            ``1`` (default) uses a deterministic serial sweep.
    """

    def __init__(
        self, central: "CentralServer", window: int = 8, workers: int = 1
    ) -> None:
        self.central = central
        self.window = window
        self.workers = workers
        self.peers: dict[str, PeerState] = {}
        self._payload_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Peer management
    # ------------------------------------------------------------------

    def attach(
        self,
        name: str,
        transport: Transport,
        cursors: Iterable[tuple[str, int, int]] = (),
        config_epoch: Optional[int] = None,
    ) -> PeerState:
        """Register an edge's transport link.

        ``config_epoch`` is the key epoch of the verification bundle
        the edge actually received (socket handshake); it defaults to
        the current epoch for in-process edges, whose constructor just
        got the live bundle.  Passing the *delivered* epoch matters
        when a rotation races the handshake — seeding from the current
        ring would mark the refresh as already sent when it never was.
        ``cursors`` (resume state from a reconnect handshake, already
        sanitized by the caller) are seeded *before* the peer is
        published, so a concurrent pump can never observe the
        cursor-less intermediate state and ship a redundant snapshot."""
        peer = PeerState(name=name, transport=transport)
        if config_epoch is not None:
            peer.config_epoch = config_epoch
        else:
            try:
                peer.config_epoch = self.central.keyring.current_epoch
            except StaleKeyError:
                pass  # no epoch registered yet (bare central in unit tests)
        for table, lsn, epoch in cursors:
            peer.acked_lsns[table] = lsn
            peer.acked_epochs[table] = epoch
            peer.sent_lsns[table] = lsn
        self.peers[name] = peer
        return peer

    def peer(self, name: str) -> PeerState:
        """The peer state for ``name``.

        Raises:
            ReplicationError: If no such edge is attached.
        """
        try:
            return self.peers[name]
        except KeyError:
            raise ReplicationError(f"no edge {name!r} attached") from None

    def bootstrap(self, name: str) -> int:
        """Ship every table's snapshot to a newly attached edge."""
        peer = self.peer(name)
        shipped = 0
        for table in self.central.vbtrees:
            shipped += self._send_snapshot(peer, table, {})
        return shipped

    def staleness(self, name: str, table: str) -> int:
        """How many LSNs the edge's *acknowledged* replica of ``table``
        lags the central delta log.  Key rotation consumes an LSN
        barrier per table, so a replica that missed a rotation reports
        as stale even though no tuple changed."""
        peer = self.peer(name)
        log = self.central.replicator.logs.get(table)
        if log is None:
            # Never logged: stale only if the edge was never bootstrapped.
            if table in peer.acked_epochs:
                return 0
            return self.central.vbtrees[table].version + 1
        return log.last_lsn - peer.acked_lsns.get(table, 0)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def pump(
        self,
        tables: Optional[Iterable[str]] = None,
        force_snapshot: bool = False,
    ) -> int:
        """One delivery cycle over every attached (and still listed)
        edge; returns the number of frames shipped.

        Each peer is first drained (queued frames flushed, pending acks
        applied), then brought up to date on ``tables`` (default: all
        replicated trees) subject to its in-flight window.  Peers are
        processed concurrently when ``workers > 1``.
        """
        central = self.central
        peers = [
            self.peers[edge.name]
            for edge in central._edges
            if edge.name in self.peers
        ]
        if not peers:
            return 0
        names = list(tables) if tables is not None else list(central.vbtrees)
        payloads: dict = {}
        if self.workers > 1 and len(peers) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.workers, len(peers))
            ) as pool:
                counts = pool.map(
                    lambda p: self._sync_peer(p, names, force_snapshot, payloads),
                    peers,
                )
                return sum(counts)
        return sum(
            self._sync_peer(peer, names, force_snapshot, payloads)
            for peer in peers
        )

    def _sync_peer(
        self, peer: PeerState, names: list, force_snapshot: bool, payloads: dict
    ) -> int:
        self._drain(peer)
        shipped = 0
        for table in names:
            if force_snapshot:
                shipped += self._send_snapshot(peer, table, payloads)
            else:
                shipped += self._sync_table(peer, table, payloads)
        return shipped

    def drain(self, name: Optional[str] = None, wait: bool = False) -> None:
        """Collect and apply outstanding acks without sending anything.

        Pipelining transports (the socket transport's non-blocking
        sends) leave acks in the link until the next pump; deployments
        call this to settle cursors after a propagation round
        (``wait=True`` blocks until every outstanding ack arrives —
        never do that on the write path).
        """
        peers = [self.peer(name)] if name is not None else list(self.peers.values())
        for peer in peers:
            self._drain(peer, wait=wait)

    def _drain(self, peer: PeerState, wait: bool = False) -> None:
        for reply in peer.transport.flush(wait=wait):
            # Every reply settles one in-flight frame, whatever its
            # type — an edge that answers a replication frame with an
            # error response (serve loop catch-all) must still release
            # the window slot, or the peer starves permanently.
            peer.inflight = max(0, peer.inflight - 1)
            if isinstance(reply, AckFrame):
                self._apply_ack(peer, reply)
            else:
                # A non-ack reply to a replication frame is an edge-side
                # failure with no table attribution: forget *all*
                # optimistic progress so later pumps resend (and, via
                # the edge's nacks, heal) instead of assuming delivery.
                peer.snapshot_inflight.clear()
                for table in list(peer.sent_lsns):
                    peer.reset_cursor(table)

    def _sync_table(self, peer: PeerState, table: str, payloads: dict) -> int:
        central = self.central
        log = central.replicator.log_for(table)
        shipped = 0
        for _attempt in (0, 1):
            needs_snapshot = (
                table in peer.needs_snapshot
                or peer.acked_epochs.get(table)
                != central.keyring.current_epoch
            )
            if needs_snapshot:
                return shipped + self._send_snapshot(peer, table, payloads)
            cursor = peer.cursor(table)
            if cursor >= log.last_lsn:
                return shipped
            if peer.inflight >= self.window:
                return shipped  # flow control: revisit on a later pump
            try:
                payload = self._batch_payload(table, cursor, payloads)
            except DeltaGapError:
                return shipped + self._send_snapshot(peer, table, payloads)
            if payload is None:
                return shipped
            outcome = peer.transport.send(DeltaFrame(table, payload))
            if outcome.status == "failed":
                peer.reset_cursor(table)
                return shipped  # partitioned: retry on a later pump
            shipped += 1
            if outcome.status == "dropped":
                peer.reset_cursor(table)
                return shipped  # lost in flight: retry on a later pump
            if outcome.status == "queued":
                peer.inflight += 1
                peer.sent_lsns[table] = log.last_lsn
                return shipped
            peer.sent_lsns[table] = log.last_lsn
            verdict = self._process_replies(peer, outcome.replies)
            if verdict != "gap":
                if table in peer.needs_snapshot:
                    shipped += self._send_snapshot(peer, table, payloads)
                return shipped
            # gap nack: one retry from the cursor the edge reported,
            # then the loop either succeeds or escalates to a snapshot.
        return shipped + self._send_snapshot(peer, table, payloads)

    def _send_snapshot(
        self, peer: PeerState, table: str, payloads: dict
    ) -> int:
        if peer.inflight >= self.window:
            return 0
        if table in peer.snapshot_inflight:
            return 0  # one O(tree) transfer per table in the link at a time
        # A peer holding an older key ring (a remote edge's ring is a
        # handshake-time copy, not the shared object an in-process edge
        # sees) gets one refresh per rotation — before the first
        # cross-epoch snapshot, or its signatures will not verify over
        # there.  In-process peers share the central's *live* ring
        # (expiry clock included) and must never have it swapped for a
        # frozen-clock copy, so the refresh is strictly a
        # process-boundary affair.
        current_epoch = self.central.keyring.current_epoch
        if (
            peer.config_epoch != current_epoch
            and not isinstance(peer.transport, InProcessTransport)
        ):
            outcome = peer.transport.send(
                config_to_frame(self.central.edge_config())
            )
            if outcome.status in ("failed", "dropped"):
                return 0  # link is down; retry the heal on a later pump
            peer.config_epoch = current_epoch
            if outcome.status == "queued":
                peer.inflight += 1
                if peer.inflight >= self.window:
                    # The refresh consumed the last window slot; the
                    # O(tree) snapshot waits for a later pump rather
                    # than overshooting the bound.
                    return 1
            else:
                self._process_replies(peer, outcome.replies)
        frame = self._snapshot_frame(table, payloads)
        outcome = peer.transport.send(frame)
        if outcome.status == "failed":
            return 0
        if outcome.status == "dropped":
            return 1
        if outcome.status == "queued":
            peer.inflight += 1
            peer.sent_lsns[table] = frame.lsn
            peer.snapshot_inflight.add(table)
            return 1
        peer.sent_lsns[table] = frame.lsn
        self._process_replies(peer, outcome.replies)
        return 1

    def _process_replies(self, peer: PeerState, replies: list) -> str:
        verdict = "ok"
        for reply in replies:
            if isinstance(reply, AckFrame):
                verdict = self._apply_ack(peer, reply)
        return verdict

    def _apply_ack(self, peer: PeerState, ack: AckFrame) -> str:
        table = ack.table
        if not table:
            return "ok"  # control ack (e.g. a key-ring refresh): no cursor
        peer.snapshot_inflight.discard(table)
        if ack.ok or ack.reason == "stale":
            # `stale` means the edge already holds the range — a benign
            # duplicate (e.g. a resend racing a queued frame).
            peer.acked_lsns[table] = max(
                peer.acked_lsns.get(table, 0), ack.lsn
            )
            peer.acked_epochs[table] = ack.epoch
            peer.sent_lsns[table] = max(
                peer.sent_lsns.get(table, 0), peer.acked_lsns[table]
            )
            peer.needs_snapshot.discard(table)
            return "ok"
        if ack.reason == "gap":
            # Trust the reported cursor as a routing hint only; the
            # retried batch is signed, so a lying edge gains nothing.
            peer.acked_lsns[table] = ack.lsn
            peer.sent_lsns[table] = ack.lsn
            return "gap"
        # tamper / diverged / unknown: the replica cannot be trusted to
        # extend — replace it wholesale.
        peer.needs_snapshot.add(table)
        peer.reset_cursor(table)
        return "snapshot"

    # ------------------------------------------------------------------
    # Payload construction (shared across peers within one pump)
    # ------------------------------------------------------------------

    def _batch_payload(
        self, table: str, cursor: int, payloads: dict
    ) -> bytes | None:
        key = ("delta", table, cursor)
        with self._payload_lock:
            if key not in payloads:
                central = self.central
                payloads[key] = central.replicator.batch_since(
                    table, cursor, central._signer,
                    central.public_key.signature_len,
                )
            return payloads[key]

    def _snapshot_frame(self, table: str, payloads: dict) -> SnapshotFrame:
        key = ("snapshot", table)
        with self._payload_lock:
            if key not in payloads:
                central = self.central
                vbt = central.vbtrees[table]
                payloads[key] = SnapshotFrame(
                    table=table,
                    lsn=central.replicator.log_for(table).last_lsn,
                    epoch=central.keyring.current_epoch,
                    naive=table in central.naive_stores,
                    payload=snapshot_to_bytes(
                        vbt, central.public_key.signature_len
                    ),
                )
            return payloads[key]
