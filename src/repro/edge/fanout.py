"""Central-side replication fan-out over the message transport.

Before this engine existed, ``CentralServer._after_update`` walked every
edge synchronously inside the write path — a diverged replica was healed
with an O(tree) snapshot *before* the insert returned, and one wedged
edge delayed all the others.  The fan-out engine decouples that:
mutations only *record* deltas; delivery happens in :meth:`pump` cycles
that walk the attached edges (serially or on a thread pool), with

* **per-edge cumulative cursors** — each peer's delta cursor is
  central-side state fed exclusively by the edge's acknowledgements
  (:class:`~repro.edge.transport.CursorAckFrame` cumulative acks, the
  cursors piggybacked on query responses, and immediate
  :class:`~repro.edge.transport.AckFrame` nacks).  Cursor application
  is **monotonic**: a delayed, duplicated, or reordered ack can never
  regress a newer cumulative one.  The edge is untrusted, so acks are
  treated as routing hints: a lying cursor can only cause redundant
  sends or a snapshot heal, never an integrity violation — every
  payload is signed;
* **batched acknowledgement settle** — a cursor ≥ a sent frame's LSN
  acknowledges that frame and everything at or below it, so one
  cumulative ack (or one probe round) settles an entire pipelined
  window instead of one ack per frame (DESIGN.md section 10);
* **an adaptive in-flight window** — per-edge AIMD flow control
  (:class:`AdaptiveWindow`) driven by observed ack latency: fast links
  grow toward a ceiling, slow acks shrink toward a floor, and a nack
  or link fault halves the window instantly;
* **nack → retry → snapshot-heal escalation** — a ``gap`` nack gets one
  retry from the cursor the edge reports; ``tamper``/``diverged`` nacks
  (and a failed retry) escalate to a full snapshot;
* **payload sharing** — peers at the same cursor receive byte-identical
  sealed batches, built once per pump.

Wedged links (partitioned or dropping) simply leave the peer's cursor
behind; a later pump retries, and if the delta log has been truncated
past the cursor by then, the peer heals via the snapshot path — the
standard lazy-catch-up machinery, no special recovery code.

The engine's *frame source* is pluggable: every read of the owning
server (table list, log heads, key epoch, batch/snapshot payloads,
config bundles) goes through overridable ``_``-hooks, so the same
delivery machinery — windows, cursors, nack escalation, settle — fans
out either the central signer's freshly sealed batches (the default
wiring here) or a relay's verbatim stored frames
(:class:`~repro.edge.relay.RelayFanout`, DESIGN.md section 13).

Thread/loop ownership: pumps and drains run on whatever thread calls
them (the deployment's sync loop, or a reactor tick); per-peer state is
guarded by ``PeerState.lock`` because piggybacked query-response
cursors arrive on query threads.  Trust: this module runs **central
side** — in the default wiring the owning server holds the signing
key, but the engine itself never touches it except through the payload
hooks, which is exactly what lets an unkeyed relay reuse it verbatim.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.core.wire import snapshot_to_bytes
from repro.edge.transport import (
    AckFrame,
    CursorAckFrame,
    CursorProbeFrame,
    DeltaFrame,
    InProcessTransport,
    SnapshotFrame,
    Transport,
    config_to_frame,
)
from repro.exceptions import DeltaGapError, ReplicationError, StaleKeyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.edge.central import CentralServer

__all__ = ["AdaptiveWindow", "SentRecord", "PeerState", "FanoutEngine"]

#: Settle rounds a wait-drain attempts before giving up on a peer that
#: keeps losing frames (each round is probe → poll → apply).
_DRAIN_ROUNDS = 4


@dataclass
class AdaptiveWindow:
    """AIMD-style per-edge in-flight window (DESIGN.md section 10.3).

    Replaces the engine-wide fixed ``window`` constant: each peer's
    bound adapts to what its link can actually absorb.  Additive
    increase — every settled ack whose smoothed latency is at or under
    ``target`` grows the window by one, up to ``ceiling``; decrease —
    a slow ack shrinks it by one, and :meth:`on_fault` (nack, failed
    or dropped send, dead link) halves it instantly, never below
    ``floor``.  With ``ceiling == size`` (the default wiring) the
    window is effectively the classic fixed bound, so simulations that
    depend on an exact constant keep their determinism.

    Attributes:
        size: Current bound on unacknowledged in-flight frames.
        floor: Hard lower bound (a link must always be probed-able).
        ceiling: Hard upper bound (memory/burst safety).
        target: Smoothed ack latency (seconds) at or under which the
            link counts as fast; above it the window shrinks.
        alpha: EWMA smoothing factor for observed ack latency.
        ewma: Smoothed observed ack latency, ``None`` until the first
            settle.

    Latency samples are capped at ``8 × target`` before entering the
    EWMA: under deferred acks a frame can sit settled-but-unclaimed
    until the next sync point, and one idle-period settle measuring
    seconds would otherwise poison the average for dozens of
    subsequent fast acks (the engine additionally skips latency credit
    entirely for settles *it* solicited — see
    :meth:`FanoutEngine._settle`).
    """

    size: int
    floor: int = 1
    ceiling: int = 8
    target: float = 0.05
    alpha: float = 0.3
    ewma: Optional[float] = None

    def on_ack(self, latency: float) -> None:
        """One frame settled after ``latency`` seconds in flight."""
        sample = min(latency, 8 * self.target)
        if self.ewma is None:
            self.ewma = sample
        else:
            self.ewma = self.alpha * sample + (1 - self.alpha) * self.ewma
        if self.ewma <= self.target:
            self.size = min(self.ceiling, self.size + 1)
        else:
            self.size = max(self.floor, self.size - 1)

    def on_fault(self) -> None:
        """Instant multiplicative shrink (nack or link fault)."""
        self.size = max(self.floor, self.size // 2)


@dataclass
class SentRecord:
    """One replication frame awaiting acknowledgement coverage.

    Attributes:
        kind: ``delta`` / ``snapshot`` / ``config``.
        table: Replica the frame addresses (``""`` for config).
        lsn: Highest LSN the frame carries — covered (settled) once the
            peer's acknowledged cursor reaches it.
        epoch: Key epoch the frame was issued under (snapshots must
            match it before settling; deltas settle on LSN alone, LSNs
            being globally monotonic per table across epochs).
        sent_at: Monotonic send timestamp — ack latency feeds the
            peer's :class:`AdaptiveWindow` at settle time.
    """

    kind: str
    table: str
    lsn: int
    epoch: int
    sent_at: float


@dataclass
class PeerState:
    """Central-side replication state for one edge server.

    Attributes:
        name: The edge's name (transport link label).
        transport: The link to the edge.
        acked_lsns: Per-table cursor confirmed by the edge's acks
            (monotonic — see :meth:`FanoutEngine._advance_cursor`).
        acked_epochs: Per-table key epoch confirmed by acks.
        sent_lsns: Optimistic per-table cursor including frames still
            in flight (queued in a slow link); falls back to the acked
            cursor when a send is known lost.
        outstanding: Sent replication frames not yet covered by an
            acknowledged cursor; its length is the in-flight count the
            window bounds.
        window: This peer's adaptive in-flight bound.
        probe_inflight: A cursor probe is in the link — suppresses
            duplicate probes until its (or any) cumulative ack arrives.
        needs_snapshot: Tables flagged for a full-resync heal.
        snapshot_inflight: Tables whose snapshot sits unacknowledged in
            a slow link — suppresses duplicate O(tree) sends until the
            edge acks (cursor coverage clears it).
        config_epoch: Key epoch of the last verification bundle shipped
            to this peer (handshake or refresh) — suppresses duplicate
            key-ring refreshes when several tables heal after one
            rotation.
        lock: Serializes every mutation of this record.  The pump and
            drain paths were single-writer per peer by construction,
            but piggybacked query-response cursors
            (:meth:`FanoutEngine.observe_response_cursors`) arrive on
            whatever thread served the query — without the lock a
            settle there could race an append in the pump and drop a
            sent-frame record.
    """

    name: str
    transport: Transport
    #: Required — sized by the owning engine's window configuration
    #: (:meth:`FanoutEngine.attach`), never defaulted: a silently
    #: misconfigured flow-control bound is worse than a TypeError.
    window: AdaptiveWindow
    acked_lsns: dict[str, int] = field(default_factory=dict)
    acked_epochs: dict[str, int] = field(default_factory=dict)
    sent_lsns: dict[str, int] = field(default_factory=dict)
    outstanding: list[SentRecord] = field(default_factory=list)
    probe_inflight: bool = False
    needs_snapshot: set[str] = field(default_factory=set)
    snapshot_inflight: set[str] = field(default_factory=set)
    config_epoch: int = -1
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False
    )

    @property
    def inflight(self) -> int:
        """Unacknowledged replication frames in the link."""
        return len(self.outstanding)

    def cursor(self, table: str) -> int:
        """The cursor to extend with the next send."""
        return self.sent_lsns.get(table, self.acked_lsns.get(table, 0))

    def reset_cursor(self, table: str) -> None:
        """Forget optimistic progress (a send was lost or rejected)."""
        self.sent_lsns[table] = self.acked_lsns.get(table, 0)


class FanoutEngine:
    """Concurrent, flow-controlled delta/snapshot delivery to all edges.

    Args:
        central: The owning central server (same trust domain).
        window: Initial per-edge bound on unacknowledged in-flight
            frames (each peer's :class:`AdaptiveWindow` starts here).
        workers: Thread-pool size for concurrent per-edge delivery;
            ``1`` (default) uses a deterministic serial sweep.
        window_min: Adaptive-window floor.
        window_max: Adaptive-window ceiling; ``None`` pins it to
            ``window`` (a fixed window — the deterministic default).
        ack_latency_target: Smoothed ack latency (seconds) at or under
            which a link counts as fast and its window grows.
    """

    def __init__(
        self,
        central: "CentralServer",
        window: int = 8,
        workers: int = 1,
        window_min: int = 1,
        window_max: Optional[int] = None,
        ack_latency_target: float = 0.05,
    ) -> None:
        self.central = central
        self.window = window
        self.window_min = min(window_min, window)
        self.window_max = max(window_max or window, window)
        self.ack_latency_target = ack_latency_target
        self.workers = workers
        self.peers: dict[str, PeerState] = {}
        self._payload_lock = threading.Lock()
        #: The event loop owning this engine's remote links, when the
        #: deployment runs the reactor path (``None`` = threaded /
        #: in-process only).  Set by
        #: :class:`~repro.edge.deploy.Deployment`; pumps then collect
        #: already-ready acks without flushing (frames keep coalescing
        #: per connection), and ``drain(wait=True)`` becomes one
        #: readiness-driven settle over *all* peers at once instead of
        #: per-peer probe→poll rounds.
        self.reactor = None
        #: Settle deadline for the reactor drain (seconds).
        self.drain_timeout = 5.0

    # ------------------------------------------------------------------
    # Frame source hooks
    #
    # Everything the delivery machinery needs to know about the frame
    # *source* funnels through these overridables.  The defaults read
    # the owning CentralServer (live signer); RelayFanout overrides
    # them to read a relay's verbatim frame store instead — same
    # windows, cursors, and escalation, different upstream truth.
    # ------------------------------------------------------------------

    def _tables(self) -> list:
        """Replicated tables, in pump order."""
        return list(self.central.vbtrees)

    def _has_table(self, table: str) -> bool:
        """Whether ``table`` is a replica this source can serve (the
        untrusted-ack sanitization predicate)."""
        return table in self.central.vbtrees

    def _log_head(self, table: str) -> Optional[int]:
        """Highest LSN the source holds for ``table``; ``None`` when
        the table has never been logged (bootstrap-only state)."""
        log = self.central.replicator.logs.get(table)
        return None if log is None else log.last_lsn

    def _bootstrap_lag(self, table: str) -> int:
        """Staleness reported for a never-bootstrapped peer of a
        never-logged table (every version is missing, plus one for the
        snapshot itself)."""
        return self.central.vbtrees[table].version + 1

    def _current_epoch(self) -> int:
        """The key epoch of the source's verification bundle.

        Raises:
            StaleKeyError: If the source has no registered epoch yet.
        """
        return self.central.keyring.current_epoch

    def _issue_epoch(self, table: str) -> int:
        """The key epoch the next frame for ``table`` will be issued
        under.  The central wiring signs everything under the ring's
        current epoch; a relay serves whatever epoch its stored chain
        carries — which may lag the ring right after a rotation, and
        must not be mistaken for a peer needing a (same-chain) snapshot
        on every pump.

        Raises:
            StaleKeyError: As :meth:`_current_epoch`.
        """
        return self._current_epoch()

    def _peer_order(self) -> list:
        """Attached peers in delivery order (the central wiring follows
        the server's edge listing so detached edges drop out)."""
        return [
            self.peers[edge.name]
            for edge in self.central._edges
            if edge.name in self.peers
        ]

    def _ack_every(self) -> int:
        """The ack-coalescing frame threshold peers run with (drives
        window-full probe solicitation)."""
        return self.central.ack_every

    def _config_frame(self):
        """A fresh verification-bundle frame for a config refresh."""
        return config_to_frame(
            self.central.edge_config(),
            ack_every=self.central.ack_every,
            ack_bytes=self.central.ack_bytes,
        )

    def _shares_live_ring(self, peer: PeerState) -> bool:
        """Whether ``peer`` sees the source's *live* key ring (an
        in-process edge) and must never have it swapped for a
        frozen-clock copy via a config refresh."""
        return isinstance(peer.transport, InProcessTransport)

    def _on_cursors_advanced(self, peer: PeerState) -> None:
        """Called after any ack/settle application for ``peer`` (its
        lock held).  Default: nothing.  A relay overrides this to
        recompute its aggregated upstream cursor."""

    def _on_peer_nack(self, peer: PeerState, ack, verdict: str) -> None:
        """Called when ``peer`` nacked a frame (its lock held);
        ``verdict`` is the escalation chosen (``gap``/``snapshot``).
        Default: nothing.  A relay overrides this to spot-check its
        store and escalate upstream when the store itself is bad."""

    # ------------------------------------------------------------------
    # Peer management
    # ------------------------------------------------------------------

    def attach(
        self,
        name: str,
        transport: Transport,
        cursors: Iterable[tuple[str, int, int]] = (),
        config_epoch: Optional[int] = None,
    ) -> PeerState:
        """Register an edge's transport link.

        ``config_epoch`` is the key epoch of the verification bundle
        the edge actually received (socket handshake); it defaults to
        the current epoch for in-process edges, whose constructor just
        got the live bundle.  Passing the *delivered* epoch matters
        when a rotation races the handshake — seeding from the current
        ring would mark the refresh as already sent when it never was.
        ``cursors`` (resume state from a reconnect handshake, already
        sanitized by the caller) are seeded *before* the peer is
        published, so a concurrent pump can never observe the
        cursor-less intermediate state and ship a redundant snapshot."""
        peer = PeerState(
            name=name,
            transport=transport,
            window=AdaptiveWindow(
                size=self.window,
                floor=self.window_min,
                ceiling=self.window_max,
                target=self.ack_latency_target,
            ),
        )
        if config_epoch is not None:
            peer.config_epoch = config_epoch
        else:
            try:
                peer.config_epoch = self._current_epoch()
            except StaleKeyError:
                pass  # no epoch registered yet (bare central in unit tests)
        for table, lsn, epoch in cursors:
            peer.acked_lsns[table] = lsn
            peer.acked_epochs[table] = epoch
            peer.sent_lsns[table] = lsn
        self.peers[name] = peer
        return peer

    def peer(self, name: str) -> PeerState:
        """The peer state for ``name``.

        Raises:
            ReplicationError: If no such edge is attached.
        """
        try:
            return self.peers[name]
        except KeyError:
            raise ReplicationError(f"no edge {name!r} attached") from None

    def bootstrap(self, name: str, payloads: Optional[dict] = None) -> int:
        """Ship every table's snapshot to a newly attached edge.

        ``payloads`` is the per-sweep payload cache: callers attaching
        a whole fleet pass one shared dict so the O(tree) snapshot is
        serialized once, not once per edge (see
        :meth:`CentralServer.spawn_edge_fleet
        <repro.edge.central.CentralServer.spawn_edge_fleet>`).
        """
        peer = self.peer(name)
        if payloads is None:
            payloads = {}
        with peer.lock:
            shipped = 0
            for table in self._tables():
                shipped += self._send_snapshot(peer, table, payloads)
            return shipped

    def staleness(self, name: str, table: str) -> int:
        """How many LSNs the edge's *acknowledged* replica of ``table``
        lags the central delta log.  Key rotation consumes an LSN
        barrier per table, so a replica that missed a rotation reports
        as stale even though no tuple changed."""
        peer = self.peer(name)
        head = self._log_head(table)
        if head is None:
            # Never logged: stale only if the edge was never bootstrapped.
            if table in peer.acked_epochs:
                return 0
            return self._bootstrap_lag(table)
        return head - peer.acked_lsns.get(table, 0)

    def stats(self) -> dict[str, dict]:
        """Per-peer delivery summary (benches / operator dashboards).

        One entry per attached edge: the in-flight count, the adaptive
        window's current bound, per-table acked cursors, and — where
        the link meters traffic — replication bytes shipped down the
        link.  In a sharded plane every shard engine reports only its
        own fleet, which is what makes per-shard fan-out cost a
        directly observable quantity."""
        out: dict[str, dict] = {}
        for name, peer in self.peers.items():
            with peer.lock:
                down = getattr(peer.transport, "down_channel", None)
                out[name] = {
                    "inflight": peer.inflight,
                    "window": peer.window.size,
                    "needs_snapshot": sorted(peer.needs_snapshot),
                    "acked_lsns": dict(peer.acked_lsns),
                    "bytes_down": down.total_bytes if down is not None else 0,
                    "bytes_by_kind": (
                        down.bytes_by_kind() if down is not None else {}
                    ),
                }
        return out

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def pump(
        self,
        tables: Optional[Iterable[str]] = None,
        force_snapshot: bool = False,
    ) -> int:
        """One delivery cycle over every attached (and still listed)
        edge; returns the number of frames shipped.

        Each peer is first drained (queued frames flushed, pending acks
        applied), then brought up to date on ``tables`` (default: all
        replicated trees) subject to its in-flight window.  Peers are
        processed concurrently when ``workers > 1``.
        """
        peers = self._peer_order()
        if not peers:
            return 0
        if self.reactor is not None:
            # Read-collect spin: land whatever acks the kernel already
            # has (so the per-peer drain below applies them) WITHOUT
            # flushing outbound queues — consecutive eager pumps keep
            # stacking frames per connection, and the next settle ships
            # each edge's whole batch in one vectored write.
            self.reactor.run_once(0.0, flush_writes=False)
        names = list(tables) if tables is not None else self._tables()
        payloads: dict = {}
        if self.workers > 1 and len(peers) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.workers, len(peers))
            ) as pool:
                counts = pool.map(
                    lambda p: self._sync_peer(p, names, force_snapshot, payloads),
                    peers,
                )
                return sum(counts)
        return sum(
            self._sync_peer(peer, names, force_snapshot, payloads)
            for peer in peers
        )

    def _sync_peer(
        self, peer: PeerState, names: list, force_snapshot: bool, payloads: dict
    ) -> int:
        with peer.lock:
            self._drain(peer)
            shipped = 0
            for table in names:
                if force_snapshot:
                    shipped += self._send_snapshot(peer, table, payloads)
                else:
                    shipped += self._sync_table(peer, table, payloads)
            return shipped

    def drain(self, name: Optional[str] = None, wait: bool = False) -> None:
        """Collect and apply outstanding acks without sending deltas.

        Pipelining transports (the socket transport's non-blocking
        sends) leave acks in the link until the next pump; deployments
        call this to settle cursors after a propagation round.  With
        ``wait=True`` this is the batched-ack settle loop: apply what
        is buffered, and while frames remain outstanding on a live
        link, solicit a :class:`~repro.edge.transport.CursorProbeFrame`
        and poll for the cumulative ack — one probe settles the whole
        window.  A link that dies mid-settle has its optimistic state
        forgotten (frames the peer never processed are resent by a
        later pump — a lost tail is never silently dropped), and a
        held-but-alive in-process link is simply left outstanding,
        exactly as before.  Never do ``wait=True`` on the write path.
        """
        peers = [self.peer(name)] if name is not None else list(self.peers.values())
        if wait and self.reactor is not None:
            # Reactor-backed peers settle together off readiness
            # notifications; anything else (in-process links in a mixed
            # fleet) keeps the per-peer settle loop.
            shared = [p for p in peers if self._reactor_backed(p)]
            rest = [p for p in peers if not self._reactor_backed(p)]
            if shared:
                self._drain_reactor(shared)
            peers = rest
        for peer in peers:
            with peer.lock:
                self._drain(peer, wait=wait)

    def _reactor_backed(self, peer: PeerState) -> bool:
        return getattr(peer.transport, "_loop", None) is self.reactor

    def _drain_reactor(self, peers: list) -> None:
        """Settle every reactor peer off the loop's readiness signal.

        The threaded settle is per-peer probe→poll rounds — over N
        edges that is N blocking reply waits per drain.  Here the
        probes for *all* peers are enqueued first (each rides the same
        vectored write as the peer's queued deltas), then one
        ``select`` loop waits for whichever edges answer, applying
        cumulative acks as they land — no busy polling, no per-peer
        blocking, and a dead or held link never delays the rest.
        Semantics per peer are unchanged: a dead link forgets its
        optimistic state (later pumps resend), a held-but-alive link
        keeps it, and a peer still uncovered at the deadline is treated
        as frame-losing, exactly like exhausted settle rounds.
        """
        pending: list = []
        for peer in peers:
            with peer.lock:
                self._process_replies(peer, peer.transport.flush(wait=False))
                if not peer.outstanding and not peer.probe_inflight:
                    continue
                if not peer.transport.connected:
                    self._forget_outstanding(peer)
                    continue
                faults = getattr(peer.transport, "faults", None)
                if faults is not None and faults.blocks_delivery:
                    continue  # parked queue: keep optimism, settle later
                status = self._solicit(peer)
                if status in ("failed", "dropped"):
                    if not peer.transport.connected:
                        self._forget_outstanding(peer, fault=False)
                    continue
                pending.append(peer)
        deadline = time.monotonic() + self.drain_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self.reactor.run_once(min(remaining, 0.2))
            still: list = []
            for peer in pending:
                with peer.lock:
                    self._process_replies(
                        peer, peer.transport.flush(wait=False)
                    )
                    if not peer.outstanding and not peer.probe_inflight:
                        continue
                    if not peer.transport.connected:
                        self._forget_outstanding(peer)
                        continue
                    faults = getattr(peer.transport, "faults", None)
                    if faults is not None and faults.blocks_delivery:
                        continue
                    if not peer.probe_inflight:
                        # A partial ack landed (coalescing threshold)
                        # but frames remain: re-solicit the rest.
                        self._solicit(peer)
                    still.append(peer)
            pending = still
        for peer in pending:
            # Deadline exhausted with frames still uncovered on a live,
            # unparked link: it is losing frames.  Forget the optimism
            # so later pumps resend — never a silently-dropped tail.
            with peer.lock:
                if peer.outstanding:
                    self._forget_outstanding(peer)

    def _drain(self, peer: PeerState, wait: bool = False) -> None:
        self._process_replies(peer, peer.transport.flush(wait=False))
        if not wait:
            return
        rounds = 0
        while rounds < _DRAIN_ROUNDS:
            if not peer.outstanding and not peer.probe_inflight:
                return
            if not peer.transport.connected:
                self._forget_outstanding(peer)
                return
            before = (dict(peer.acked_lsns), dict(peer.acked_epochs))
            status = self._solicit(peer)
            if status in ("failed", "dropped"):
                # The probe itself could not travel (the solicit
                # already charged the window); if the link object is
                # dead the optimism is forgotten, otherwise (a
                # partitioned in-process link) the frames may still be
                # delivered later — leave them outstanding.
                if not peer.transport.connected:
                    self._forget_outstanding(peer, fault=False)
                return
            if not peer.outstanding and not peer.probe_inflight:
                return  # delivered probe settled everything synchronously
            if status != "delivered":
                replies = peer.transport.poll()
                if not replies:
                    if not peer.transport.connected:
                        self._forget_outstanding(peer)
                    return  # held-but-alive link: keep optimism, retry later
                self._process_replies(peer, replies)
            # else: the probe round-tripped synchronously and its ack
            # is already applied, yet frames remain uncovered — the
            # peer's cumulative ack omitted their tables (e.g. a
            # relay-aggregated ack whose slowest downstream edge lags).
            # Burn a settle round and probe again; this path used to
            # return here with the optimism intact, which treated "no
            # news" as good news — the records stayed outstanding
            # forever, sent_lsns never reset, no pump resent the tail,
            # and the window eventually wedged.
            #
            # A round whose ack advanced *any* cursor is progress, not
            # loss: it does not consume budget (bounded — cursors are
            # monotone and clamped to the log head), so a healthy but
            # lagging peer is not declared frame-losing and flooded
            # with resends.
            if (dict(peer.acked_lsns), dict(peer.acked_epochs)) == before:
                rounds += 1
        # Settle rounds exhausted with frames still uncovered: the link
        # is losing frames (drop injection, or a peer rejecting frames
        # without nacks).  Forget the optimism so later pumps resend —
        # the tail must never be silently dropped.
        if peer.outstanding:
            self._forget_outstanding(peer)

    def _solicit(self, peer: PeerState) -> str:
        """Ask the peer for its cumulative cursors (ack solicitation)."""
        if peer.probe_inflight:
            return "pending"
        outcome = peer.transport.send(CursorProbeFrame())
        if outcome.status in ("failed", "dropped"):
            peer.window.on_fault()
            return outcome.status
        if outcome.status == "queued":
            peer.probe_inflight = True
            return "queued"
        # Delivered synchronously (in-process): mark the probe in
        # flight *before* applying its replies, so the cumulative ack
        # is recognized as solicited and skips the latency credit —
        # frames it settles aged at the workload's pace, not the
        # link's.  The ack clears the flag; reset defensively in case
        # none came back.
        peer.probe_inflight = True
        self._process_replies(peer, outcome.replies)
        peer.probe_inflight = False
        return "delivered"

    def _forget_outstanding(self, peer: PeerState, fault: bool = True) -> None:
        """A link fault lost (or may have lost) every in-flight frame:
        drop the optimistic state so later pumps resend and heal —
        delivery failures surface as resends/nacks, never as a
        silently-dropped tail.  ``fault=False`` when the caller already
        charged the window for this same event (one fault, one halving
        — §10.3's AIMD contract)."""
        peer.outstanding.clear()
        peer.snapshot_inflight.clear()
        peer.probe_inflight = False
        for table in list(peer.sent_lsns):
            peer.reset_cursor(table)
        if fault:
            peer.window.on_fault()

    def _sync_table(self, peer: PeerState, table: str, payloads: dict) -> int:
        shipped = 0
        gap_retried = False
        while True:
            needs_snapshot = (
                table in peer.needs_snapshot
                or peer.acked_epochs.get(table) != self._issue_epoch(table)
            )
            if needs_snapshot:
                return shipped + self._send_snapshot(peer, table, payloads)
            cursor = peer.cursor(table)
            head = self._log_head(table) or 0
            if cursor >= head:
                return shipped
            if self._window_blocked(peer):
                return shipped  # flow control: revisit on a later pump
            try:
                payload, lsn_last = self._delta_payload(
                    table, cursor, payloads
                )
            except DeltaGapError:
                return shipped + self._send_snapshot(peer, table, payloads)
            if payload is None or lsn_last <= cursor:
                return shipped
            outcome = peer.transport.send(DeltaFrame(table, payload))
            if outcome.status == "failed":
                peer.window.on_fault()
                peer.reset_cursor(table)
                if not peer.transport.connected:
                    # A dead link (mid-batch ECONNRESET/EPIPE) loses
                    # the whole pipelined tail, not just this frame —
                    # one event, so the window was charged once above.
                    self._forget_outstanding(peer, fault=False)
                return shipped  # partitioned: retry on a later pump
            shipped += 1
            if outcome.status == "dropped":
                peer.window.on_fault()
                peer.reset_cursor(table)
                return shipped  # lost in flight: retry on a later pump
            peer.outstanding.append(
                SentRecord(
                    kind="delta", table=table, lsn=lsn_last,
                    epoch=peer.acked_epochs.get(table, 0),
                    sent_at=time.monotonic(),
                )
            )
            peer.sent_lsns[table] = lsn_last
            if outcome.status == "queued":
                if lsn_last >= head:
                    return shipped
                # A stored-frame source (relay) ships pre-sealed
                # batches one frame at a time: keep forwarding toward
                # the head, window permitting.  The central's live
                # batches always reach the head in one frame, so this
                # branch never loops there.
                continue
            verdict = self._process_replies(peer, outcome.replies)
            if verdict == "gap":
                # gap nack: one retry from the cursor the edge
                # reported, then either success or snapshot escalation.
                if gap_retried:
                    return shipped + self._send_snapshot(
                        peer, table, payloads
                    )
                gap_retried = True
                continue
            if table in peer.needs_snapshot:
                return shipped + self._send_snapshot(peer, table, payloads)
            if peer.cursor(table) >= (self._log_head(table) or 0):
                return shipped
            # Delivered mid-stream with ground still to cover (stored
            # frames ahead): keep forwarding.

    def _window_blocked(self, peer: PeerState) -> bool:
        """Window check, with ack solicitation under coalescing.

        When acks are deferred (``ack_every > 1``), a full window may
        consist entirely of frames the edge has already *applied* but
        not yet acknowledged — without solicitation the pipeline would
        wedge until the next settle point whenever the coalescing
        threshold exceeds the window.  One probe frees the whole
        window (synchronously in-process, by the next pump's drain
        over TCP), so ack traffic stays paced by the window, never by
        the frame count.  Under per-frame acks a full window means
        genuinely undelivered frames and probing it is pure noise.
        """
        if peer.inflight < peer.window.size:
            return False
        if self._ack_every() > 1:
            self._solicit(peer)
            return peer.inflight >= peer.window.size
        return True

    def _send_snapshot(
        self, peer: PeerState, table: str, payloads: dict
    ) -> int:
        if self._window_blocked(peer):
            return 0
        if table in peer.snapshot_inflight:
            return 0  # one O(tree) transfer per table in the link at a time
        # A peer holding an older key ring (a remote edge's ring is a
        # handshake-time copy, not the shared object an in-process edge
        # sees) gets one refresh per rotation — before the first
        # cross-epoch snapshot, or its signatures will not verify over
        # there.  In-process peers share the central's *live* ring
        # (expiry clock included) and must never have it swapped for a
        # frozen-clock copy, so the refresh is strictly a
        # process-boundary affair.
        current_epoch = self._current_epoch()
        if (
            peer.config_epoch != current_epoch
            and not self._shares_live_ring(peer)
        ):
            outcome = peer.transport.send(self._config_frame())
            if outcome.status in ("failed", "dropped"):
                peer.window.on_fault()
                return 0  # link is down; retry the heal on a later pump
            peer.config_epoch = current_epoch
            peer.outstanding.append(
                SentRecord(
                    kind="config", table="", lsn=0, epoch=current_epoch,
                    sent_at=time.monotonic(),
                )
            )
            if outcome.status == "queued":
                if peer.inflight >= peer.window.size:
                    # The refresh consumed the last window slot; the
                    # O(tree) snapshot waits for a later pump rather
                    # than overshooting the bound.
                    return 1
            else:
                self._process_replies(peer, outcome.replies)
        try:
            frame = self._snapshot_frame(table, payloads)
        except ReplicationError:
            # A source that cannot produce the snapshot right now (a
            # relay whose store was dropped after a tamper escalation)
            # leaves the table flagged; the heal completes once the
            # source is re-seeded.  The central wiring never raises.
            peer.needs_snapshot.add(table)
            return 0
        if frame.lsn < peer.acked_lsns.get(table, 0):
            # Rewind heal: the snapshot is *behind* the peer's banked
            # cursor.  The central never produces this (its snapshots
            # are built at the log head, and acked cursors are clamped
            # to it), but a stored-frame source can — a relay whose
            # chain was replaced by a coalesced resend serves its
            # stored snapshot, and a peer that acked a now-vanished
            # frame boundary must be rewound through it and replayed.
            # Its banked cursor refers to a chain this source no longer
            # serves, so drop it; otherwise the monotone-cursor guard
            # discards the regressed ack and the heal livelocks.
            peer.acked_lsns.pop(table, None)
            peer.acked_epochs.pop(table, None)
            peer.sent_lsns.pop(table, None)
        outcome = peer.transport.send(frame)
        if outcome.status == "failed":
            peer.window.on_fault()
            if not peer.transport.connected:
                self._forget_outstanding(peer, fault=False)
            return 0
        if outcome.status == "dropped":
            peer.window.on_fault()
            return 1
        peer.outstanding.append(
            SentRecord(
                kind="snapshot", table=table, lsn=frame.lsn,
                epoch=frame.epoch, sent_at=time.monotonic(),
            )
        )
        peer.sent_lsns[table] = frame.lsn
        if outcome.status == "queued":
            peer.snapshot_inflight.add(table)
            return 1
        self._process_replies(peer, outcome.replies)
        return 1

    # ------------------------------------------------------------------
    # Acknowledgement application (DESIGN.md section 10)
    # ------------------------------------------------------------------

    def _process_replies(self, peer: PeerState, replies: Sequence) -> str:
        """Apply every reply frame; returns the *worst* verdict seen
        (``snapshot`` > ``gap`` > ``ok``), so a nack travelling next to
        a cumulative ack still drives the escalation."""
        rank = {"ok": 0, "gap": 1, "snapshot": 2}
        verdict = "ok"
        for reply in replies:
            if isinstance(reply, CursorAckFrame):
                self._apply_cursor_ack(peer, reply)
                outcome = "ok"
            elif isinstance(reply, AckFrame):
                outcome = self._apply_ack(peer, reply)
            else:
                # A non-ack reply to a replication frame is an edge-side
                # failure with no table attribution: forget *all*
                # optimistic progress so later pumps resend (and, via
                # the edge's nacks, heal) instead of assuming delivery.
                self._forget_outstanding(peer)
                outcome = "ok"
            if rank[outcome] > rank[verdict]:
                verdict = outcome
        return verdict

    def _advance_cursor(
        self, peer: PeerState, table: str, lsn: int, epoch: int
    ) -> None:
        """Monotonic cursor application, with untrusted-input
        sanitization.

        Every cursor here came from an edge (cumulative ack, nack, or
        a piggybacked query response), so the hello-path rules apply
        at this one choke point too: unknown replicas are dropped
        (else fabricated table names grow ``acked_lsns`` without
        bound) and the LSN/epoch are clamped to the log head / current
        epoch — a lying cursor *ahead* of the log would otherwise make
        ``_sync_table`` skip the table forever (silent permanent
        staleness, the outcome §10.2 promises cannot happen), and an
        epoch from the future would pin the cross-epoch check into a
        perpetual snapshot loop.

        Table LSNs are globally monotonic (key rotation burns a
        barrier LSN instead of restarting the sequence), so the newest
        information always carries the highest ``(lsn, epoch)`` — any
        out-of-order, duplicate, or stale ack is simply outranked and
        can never regress ``acked_lsns``/``acked_epochs`` (the
        regression the pre-batching engine allowed by assigning
        cursors unconditionally).
        """
        if not self._has_table(table):
            return
        lsn = min(lsn, self._log_head(table) or 0)
        try:
            epoch = min(epoch, self._current_epoch())
        except StaleKeyError:
            pass  # no epoch registered yet (bare central in unit tests)
        current = peer.acked_lsns.get(table)
        if current is None or lsn > current:
            peer.acked_lsns[table] = lsn
            peer.acked_epochs[table] = epoch
        elif lsn == current and epoch > peer.acked_epochs.get(table, -1):
            peer.acked_epochs[table] = epoch
        peer.sent_lsns[table] = max(
            peer.sent_lsns.get(table, 0), peer.acked_lsns[table]
        )

    def _settle(self, peer: PeerState, credit_latency: bool = True) -> None:
        """Retire every outstanding frame the acknowledged cursors now
        cover — the batched-ack core: one cumulative cursor settles an
        entire window.  Each settled frame feeds its observed ack
        latency into the peer's adaptive window, except when
        ``credit_latency`` is off: a settle *we* solicited (probe
        reply) or happened upon (piggybacked query cursors) measures
        the central's own settle timing, not the link's speed, and
        must not walk a fast link's window down."""
        if not peer.outstanding:
            return
        now = time.monotonic()
        remaining: list[SentRecord] = []
        for record in peer.outstanding:
            if record.kind == "config":
                remaining.append(record)  # settled by its control ack
                continue
            acked = peer.acked_lsns.get(record.table)
            covered = acked is not None and acked >= record.lsn
            if covered and record.kind == "snapshot":
                covered = (
                    peer.acked_epochs.get(record.table, -1) >= record.epoch
                )
            if covered:
                if credit_latency:
                    peer.window.on_ack(now - record.sent_at)
                if record.kind == "snapshot":
                    peer.snapshot_inflight.discard(record.table)
                    peer.needs_snapshot.discard(record.table)
            else:
                remaining.append(record)
        peer.outstanding = remaining

    def _drop_outstanding(self, peer: PeerState, table: str) -> None:
        """Retire (without ack credit) every outstanding frame for
        ``table`` — they were nacked or superseded; the escalation
        path owns the table now."""
        peer.outstanding = [
            r for r in peer.outstanding if r.table != table
        ]
        peer.snapshot_inflight.discard(table)

    def _apply_cursor_ack(self, peer: PeerState, ack: CursorAckFrame) -> None:
        """One cumulative ack: advance every cursor monotonically, then
        settle the outstanding frames those cursors cover.  An ack that
        answers *our* probe carries no link-speed information (the
        frames may have sat settled-but-unclaimed until we asked), so
        solicited settles skip the latency feedback."""
        solicited = peer.probe_inflight
        for table, lsn, epoch in ack.cursors:
            self._advance_cursor(peer, table, lsn, epoch)
        peer.probe_inflight = False
        self._settle(peer, credit_latency=not solicited)
        self._on_cursors_advanced(peer)

    def observe_response_cursors(
        self, name: str, cursors: Sequence[tuple[str, int, int]]
    ) -> None:
        """Feed the cursors piggybacked on a query response into the
        peer's ack state (the deployment layer calls this — query
        responses travel on the same ordered link as replication, so a
        piggybacked cursor is exactly as authoritative as a
        :class:`~repro.edge.transport.CursorAckFrame`).  Unknown peers
        are ignored; application is monotonic like every other ack."""
        peer = self.peers.get(name)
        if peer is None or not cursors:
            return
        # This is the one PeerState writer that runs on a query thread
        # rather than the pump's; the peer lock keeps its settle from
        # racing a concurrent send's bookkeeping.
        with peer.lock:
            for table, lsn, epoch in cursors:
                self._advance_cursor(peer, table, lsn, epoch)
            self._settle(peer, credit_latency=False)
            self._on_cursors_advanced(peer)

    def _apply_ack(self, peer: PeerState, ack: AckFrame) -> str:
        table = ack.table
        if table and not self._has_table(table):
            # Untrusted input: a fabricated replica name must not grow
            # needs_snapshot (or any per-table state) without bound.
            return "ok"
        if not table:
            # Control ack (a key-ring refresh): settle the config frame.
            now = time.monotonic()
            remaining = []
            for record in peer.outstanding:
                if record.kind == "config":
                    peer.window.on_ack(now - record.sent_at)
                else:
                    remaining.append(record)
            peer.outstanding = remaining
            return "ok"
        if ack.ok or ack.reason == "stale":
            # `stale` means the edge already holds the range — a benign
            # duplicate (e.g. a resend racing a queued frame).  The
            # carried cursor still advances central state (monotonic).
            self._advance_cursor(peer, table, ack.lsn, ack.epoch)
            self._settle(peer)
            self._on_cursors_advanced(peer)
            return "ok"
        if ack.reason == "gap":
            if ack.lsn < peer.acked_lsns.get(table, 0):
                # An outranked gap nack is never a mere delay: replies
                # travel the ordered link in generation order and the
                # edge's cursor is monotone, so a cursor *behind* what
                # this edge already acknowledged means the replica
                # regressed underneath us (state loss, at-rest
                # tampering).  Obeying it would regress `acked_lsns`
                # (the monotonicity bug); ignoring it would retry the
                # same gapping delta forever.  Escalate: replace the
                # replica wholesale — monotonic cursors must never
                # mask divergence.
                peer.needs_snapshot.add(table)
                self._drop_outstanding(peer, table)
                peer.reset_cursor(table)
                peer.window.on_fault()
                self._on_peer_nack(peer, ack, "snapshot")
                return "snapshot"
            # Trust the reported cursor as a routing hint only; the
            # retried batch is signed, so a lying edge gains nothing.
            # The retry resumes from the *sanitized* acknowledged
            # cursor (reset, not the raw ack.lsn — a lying cursor
            # ahead of the log must not park sent_lsns in the future).
            self._advance_cursor(peer, table, ack.lsn, ack.epoch)
            peer.reset_cursor(table)
            self._drop_outstanding(peer, table)
            peer.window.on_fault()
            self._on_peer_nack(peer, ack, "gap")
            return "gap"
        # tamper / diverged / unknown: the replica cannot be trusted to
        # extend — replace it wholesale.
        peer.needs_snapshot.add(table)
        self._drop_outstanding(peer, table)
        peer.reset_cursor(table)
        peer.window.on_fault()
        self._on_peer_nack(peer, ack, "snapshot")
        return "snapshot"

    # ------------------------------------------------------------------
    # Payload construction (shared across peers within one pump)
    # ------------------------------------------------------------------

    def _delta_payload(
        self, table: str, cursor: int, payloads: dict
    ) -> tuple[bytes | None, int]:
        """The next delta payload to send past ``cursor`` and the
        highest LSN it carries, or ``(None, cursor)`` when there is
        nothing to ship.  The central wiring seals one batch covering
        everything up to the log head; a stored-frame source returns
        its next verbatim frame instead (which may stop short of the
        head — ``_sync_table`` keeps forwarding).

        Raises:
            DeltaGapError: When the source cannot bridge from
                ``cursor`` (log truncated / store gap) — the caller
                escalates to a snapshot.
        """
        key = ("delta", table, cursor)
        with self._payload_lock:
            if key not in payloads:
                central = self.central
                payload = central.replicator.batch_since(
                    table, cursor, central._signer,
                    central.public_key.signature_len,
                )
                payloads[key] = (payload, self._log_head(table) or 0)
            return payloads[key]

    def _snapshot_frame(self, table: str, payloads: dict) -> SnapshotFrame:
        key = ("snapshot", table)
        with self._payload_lock:
            if key not in payloads:
                central = self.central
                vbt = central.vbtrees[table]
                payloads[key] = SnapshotFrame(
                    table=table,
                    lsn=central.replicator.log_for(table).last_lsn,
                    epoch=central.keyring.current_epoch,
                    naive=table in central.naive_stores,
                    payload=snapshot_to_bytes(
                        vbt, central.public_key.signature_len
                    ),
                )
            return payloads[key]
