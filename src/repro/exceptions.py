"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors (``TypeError``, ``KeyError``, ...).  Sub-hierarchies mirror the
package layout: crypto, storage/DB, authentication (VB-tree / VO), SQL,
and the edge-computing simulation.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CryptoError",
    "KeyGenerationError",
    "SignatureError",
    "StaleKeyError",
    "EncodingError",
    "DatabaseError",
    "SchemaError",
    "TypeMismatchError",
    "DuplicateKeyError",
    "KeyNotFoundError",
    "PageGeometryError",
    "LockError",
    "DeadlockError",
    "TransactionError",
    "AuthenticationError",
    "VerificationFailure",
    "TamperDetected",
    "IncompleteResultError",
    "VOFormatError",
    "SQLError",
    "SQLSyntaxError",
    "PlanningError",
    "EdgeError",
    "ReplicationError",
    "TransportError",
    "ReplicaDeltaError",
    "DeltaGapError",
    "StaleDeltaError",
    "DeltaTamperError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """RSA key generation failed (e.g. no prime found in the search bound)."""


class SignatureError(CryptoError):
    """A signature failed to verify, or could not be produced."""


class StaleKeyError(CryptoError):
    """A signature was produced under a key epoch outside the validity window.

    This is how clients detect edge servers replaying data signed with an
    out-of-date private key (Section 3.4 of the paper).
    """


class EncodingError(CryptoError):
    """A value could not be canonically encoded or decoded."""


# ---------------------------------------------------------------------------
# Mini-DBMS substrate
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for storage / query-engine failures."""


class SchemaError(DatabaseError):
    """Schema definition or catalog-level inconsistency."""


class TypeMismatchError(DatabaseError):
    """A value does not conform to its declared column type."""


class DuplicateKeyError(DatabaseError):
    """Insert would violate primary-key uniqueness."""


class KeyNotFoundError(DatabaseError):
    """Lookup / delete on a key that does not exist."""


class PageGeometryError(DatabaseError):
    """Block/key/pointer/digest widths do not admit a valid node layout."""


class LockError(DatabaseError):
    """Lock manager protocol violation (e.g. releasing a lock not held)."""


class DeadlockError(LockError):
    """A lock request would create a cycle in the waits-for graph."""


class TransactionError(DatabaseError):
    """Transaction lifecycle misuse (e.g. operating on a finished txn)."""


# ---------------------------------------------------------------------------
# Authenticated query processing (the paper's core)
# ---------------------------------------------------------------------------


class AuthenticationError(ReproError):
    """Base class for VB-tree / verification-object failures."""


class VerificationFailure(AuthenticationError):
    """The client's recomputed digest did not match the signed digest.

    Raised (or returned as a failed :class:`~repro.core.verify.Verdict`)
    whenever a query result cannot be proven authentic.
    """


class TamperDetected(VerificationFailure):
    """Verification failed and the mismatch is attributable to tampering."""


class IncompleteResultError(AuthenticationError):
    """The VO's structure is inconsistent with the claimed result set
    (missing tuples, gaps not covered by digests, bad envelope)."""


class VOFormatError(AuthenticationError):
    """A verification object could not be built or parsed.

    Also raised when the ``FLAT_SET`` VO format is requested for an
    enveloping subtree taller than one node, where the paper's set-only
    encoding is insufficient (see DESIGN.md, deviation D3).
    """


# ---------------------------------------------------------------------------
# SQL front-end
# ---------------------------------------------------------------------------


class SQLError(ReproError):
    """Base class for SQL front-end failures."""


class SQLSyntaxError(SQLError):
    """Lexing or parsing failed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class PlanningError(SQLError):
    """The statement parsed but cannot be planned against the catalog."""


# ---------------------------------------------------------------------------
# Edge simulation
# ---------------------------------------------------------------------------


class EdgeError(ReproError):
    """Base class for edge-computing simulation failures."""


class ReplicationError(EdgeError):
    """Replica propagation failed or diverged."""


class TransportError(EdgeError):
    """A transport frame could not be delivered (link partitioned) or
    could not be encoded/decoded (malformed frame)."""


class RouterError(EdgeError):
    """The query router ran out of eligible edges: every candidate is
    quarantined, unreachable, or returned an unusable response (see
    DESIGN.md section 9 for the verify-or-failover semantics)."""


class ReplicaDeltaError(ReplicationError):
    """A replica delta could not be built, serialized, or applied
    (see DESIGN.md section 6 for the delta replication protocol)."""


class DeltaGapError(ReplicaDeltaError):
    """A delta's LSN range does not extend the replica's log cursor —
    an intermediate delta is missing (out-of-order delivery or log
    truncation).  The edge must resync via a full snapshot."""


class StaleDeltaError(ReplicaDeltaError):
    """A delta at or below the replica's log cursor was offered again
    (duplicate delivery or a replay attack); it is rejected without
    touching the replica, which makes delta application idempotent."""


class DeltaTamperError(ReplicaDeltaError):
    """A delta failed authentication: bad signature over the body,
    unknown/expired key epoch, or a body that does not parse."""
