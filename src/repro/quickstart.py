"""One-call demo environment used by the README and the test-suite smoke
tests.

:func:`quick_setup` wires together a central server with a synthetic
table, one edge server replica and a verifying client — the minimal
Figure-2 deployment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.edge.central import CentralServer
    from repro.edge.client import Client
    from repro.edge.edge_server import EdgeServer


def quick_setup(
    rows: int = 1000,
    columns: int = 10,
    rsa_bits: int = 512,
    seed: int = 7,
    table_name: str = "items",
):
    """Build a ready-to-query central/edge/client trio.

    Args:
        rows: Number of synthetic tuples in the demo table.
        columns: Number of attributes (including the integer key ``id``).
        rsa_bits: RSA modulus size for the signing key (512 keeps the
            demo fast; use 1024+ for anything serious).
        seed: Seed for deterministic data and keys.
        table_name: Name of the generated table.

    Returns:
        ``(central, edge, client)`` — a
        :class:`~repro.edge.central.CentralServer`, an attached
        :class:`~repro.edge.edge_server.EdgeServer`, and a
        :class:`~repro.edge.client.Client` that trusts the central
        server's key ring.
    """
    # Imported here to keep `import repro` cheap and cycle-free.
    from repro.edge.central import CentralServer
    from repro.workloads.generator import TableSpec, generate_table

    central = CentralServer(db_name="quickstart", rsa_bits=rsa_bits, seed=seed)
    spec = TableSpec(name=table_name, rows=rows, columns=columns, seed=seed)
    schema, rows_data = generate_table(spec)
    central.create_table(schema, rows_data)
    edge = central.spawn_edge_server("edge-0")
    client = central.make_client()
    return central, edge, client
