"""Paper-wide default parameters (Table 1 of Pang & Tan, ICDE 2004).

These are the defaults used throughout the analytical evaluation in
Section 4 of the paper.  The executable system takes its own concrete
values (e.g. real RSA signature lengths); the analytical models in
:mod:`repro.analysis` default to the values below so that the benchmark
harness regenerates the paper's figures at the paper's scale.
"""

from __future__ import annotations

#: ``|D|`` — length of a signed node/tuple/attribute digest, in bytes.
DIGEST_LEN = 16

#: ``|K|`` — length of a search key, in bytes.
KEY_LEN = 16

#: ``|P|`` — length of a node pointer, in bytes.
POINTER_LEN = 4

#: ``|B|`` — size of a block / node, in bytes (4 KiB).
BLOCK_SIZE = 4 * 1024

#: ``N_r`` — number of tuples in the base table (1 million).
NUM_ROWS = 1_000_000

#: ``N_c`` — number of attributes (columns) in the base table.
NUM_COLS = 10

#: ``Q_c`` — number of attributes in the query result (projection width).
QUERY_COLS = 10

#: Average tuple size used in Figure 10 (bytes); 20 bytes per attribute.
TUPLE_SIZE = 200

#: Average attribute size implied by :data:`TUPLE_SIZE` / :data:`NUM_COLS`.
ATTR_SIZE = TUPLE_SIZE // NUM_COLS

#: Ratio ``Cost_a / Cost_c`` between deriving an attribute digest and
#: combining two digests (Table 1's final row).
COST_RATIO_ATTR_TO_COMBINE = 10

#: Default ``X = Cost_v / Cost_a`` — signature decryption relative to a
#: one-way hash.  Section 4.3 cites hash functions being ~100x faster than
#: signature verification; the paper sweeps X over {5, 10, 100}.
DEFAULT_X = 10

#: Modulus bit-width for the paper's commutative hash ``g^x mod 2^k``
#: matching the 16-byte digest default.
COMMUTATIVE_HASH_BITS = DIGEST_LEN * 8

#: Generator ``g`` for the commutative hash.  Any odd g > 1 works modulo a
#: power of two; 3 keeps exponentiation cheap in the reference path.
COMMUTATIVE_HASH_GENERATOR = 3

#: Default RSA modulus size for the executable system's signatures (bits).
#: Tests use 512 for speed; examples/benches use this default.
RSA_BITS = 1024
