"""The standing chaos battery: named, seeded failure storms.

Each scenario is a zero-or-seed-argument callable returning a
:class:`~repro.chaos.orchestrator.ChaosReport`; the :data:`SCENARIOS`
registry is what ``tests/chaos/test_scenarios.py`` iterates and what
``benchmarks/bench_chaos.py`` commits baselines for.  All of them run
in-process, deterministically, in tier-1 time — the socket-level storm
(real SIGKILLs over a relay tree) lives in
``tests/chaos/test_chaos_deploy.py`` under the ``socket`` marker.

Every scenario must uphold the battery's three invariants (DESIGN.md
§14): zero unverified results surfaced, tamper quarantined, post-storm
cursor parity.  What each scenario is *allowed* to degrade differs —
availability may dip under a full partition, latency may blow through
the SLO on a slow link — and the per-scenario docstrings below are the
normative statement of those allowances.
"""

from __future__ import annotations

from repro.chaos.orchestrator import (
    ChaosOrchestrator,
    ChaosReport,
    InProcessFleet,
)
from repro.chaos.plan import FaultEvent, FaultPlan
from repro.core.wire import result_from_bytes
from repro.edge.edge_server import EdgeServer
from repro.edge.relay import RelayServer
from repro.edge.transport import (
    InProcessTransport,
    config_from_frame,
    config_to_frame,
    frame_from_bytes,
    frame_to_bytes,
    range_query_frame,
)
from repro.workloads.load_gen import LoadProfile

__all__ = [
    "SCENARIOS",
    "network_flaps",
    "slow_links",
    "byzantine_edges",
    "rotation_mid_partition",
    "relay_storm",
    "combined_storm",
]


def network_flaps(seed: int = 0) -> ChaosReport:
    """Links flap up and down across the fleet, with frame drops.

    May degrade: nothing user-visible — at most one edge is down at a
    time, so the router always has a healthy fallback and availability
    stays 100%.  Must hold: zero unverified, parity after heal.
    """
    plan = FaultPlan(
        name="network_flaps",
        seed=seed,
        ticks=12,
        events=(
            FaultEvent(1, "partition", "edge-0"),
            FaultEvent(2, "drop", "edge-1", 2.0),
            FaultEvent(3, "heal", "edge-0"),
            FaultEvent(4, "partition", "edge-1"),
            FaultEvent(6, "heal", "edge-1"),
            FaultEvent(6, "partition", "edge-2"),
            FaultEvent(7, "drop", "edge-3", 3.0),
            FaultEvent(8, "heal", "edge-2"),
            FaultEvent(9, "partition", "edge-0"),
            FaultEvent(11, "heal", "edge-0"),
        ),
    )
    fleet = InProcessFleet(n_edges=4, seed=11 + seed)
    orch = ChaosOrchestrator(
        fleet, plan, LoadProfile(n_keys=fleet.n_keys, seed=seed)
    )
    return orch.run()


def slow_links(seed: int = 0) -> ChaosReport:
    """Staggered latency shaping: one link at a time turns slow.

    May degrade: per-query latency on the shaped link (queries that
    land there fail over — the open-loop report counts the detour);
    replication to the slow edge lags by design, healing on release.
    Must hold: zero unverified, parity after heal.
    """
    plan = FaultPlan(
        name="slow_links",
        seed=seed,
        ticks=12,
        events=(
            FaultEvent(1, "slow", "edge-0", 0.02),
            FaultEvent(4, "heal", "edge-0"),
            FaultEvent(4, "slow", "edge-1", 0.03),
            FaultEvent(7, "heal", "edge-1"),
            FaultEvent(7, "slow", "edge-2", 0.01),
            FaultEvent(10, "heal", "edge-2"),
        ),
    )
    fleet = InProcessFleet(n_edges=4, seed=13 + seed)
    orch = ChaosOrchestrator(
        fleet, plan, LoadProfile(n_keys=fleet.n_keys, seed=seed)
    )
    return orch.run()


def byzantine_edges(seed: int = 0) -> ChaosReport:
    """Two edges serve tampered replicas of the hottest keys.

    Must hold: every tamper is *detected* (the Zipf head guarantees
    the corrupted keys are queried), each byzantine edge is
    quarantined, the caller still only ever sees verified ACCEPTs, and
    after the storm the respawned edges reach parity.  May degrade:
    effective fleet size (quarantine removes capacity).
    """
    plan = FaultPlan(
        name="byzantine_edges",
        seed=seed,
        ticks=14,
        events=(
            # Key 0 is the Zipf-hottest: detection is a matter of a
            # few queries, and the detection-latency count is stable.
            FaultEvent(2, "tamper", "edge-1", 0.0),
            FaultEvent(6, "tamper", "edge-2", 1.0),
        ),
    )
    fleet = InProcessFleet(n_edges=4, seed=17 + seed)
    orch = ChaosOrchestrator(
        fleet,
        plan,
        LoadProfile(n_keys=fleet.n_keys, seed=seed, queries_per_tick=10),
    )
    return orch.run()


def rotation_mid_partition(seed: int = 0) -> ChaosReport:
    """The signing key rotates while an edge is partitioned.

    The partitioned edge misses the rotation entirely; on heal it
    holds only stale-epoch state and must be snapshot-healed across
    the epoch barrier.  Must hold: its stale-epoch answers (if routed)
    still verify against the key ring's epoch history — old signatures
    are valid, they are just old — zero unverified throughout, and
    post-heal parity on the new epoch.  May degrade: the healed edge's
    staleness window.
    """
    plan = FaultPlan(
        name="rotation_mid_partition",
        seed=seed,
        ticks=12,
        events=(
            FaultEvent(1, "partition", "edge-0"),
            FaultEvent(3, "rotate", "central"),
            FaultEvent(5, "rotate", "central"),
            FaultEvent(7, "heal", "edge-0"),
            FaultEvent(8, "partition", "edge-2"),
            FaultEvent(9, "rotate", "central"),
            FaultEvent(10, "heal", "edge-2"),
        ),
    )
    fleet = InProcessFleet(n_edges=4, seed=19 + seed)
    orch = ChaosOrchestrator(
        fleet, plan, LoadProfile(n_keys=fleet.n_keys, seed=seed)
    )
    return orch.run()


def combined_storm(seed: int = 0) -> ChaosReport:
    """Everything at once: generated flap/slow/drop/kill noise plus a
    scheduled tamper and a rotation, under sustained load.

    Must hold: the full triad — zero unverified, tamper quarantined,
    post-storm parity.  May degrade: availability (the generated storm
    can partition several edges at once) and latency.
    """
    # The generated noise covers edges 0–3; the byzantine edge (4) is
    # deliberately outside it, so the tamper can't be masked by a
    # coincidental kill or partition — detection must come from the
    # verifying router, not from the storm erasing the evidence.
    noise = FaultPlan.generate(
        seed=seed,
        targets=[f"edge-{i}" for i in range(4)],
        ticks=16,
        events_per_tick=1.5,
        name="combined_storm",
    )
    extra = (
        FaultEvent(4, "tamper", "edge-4", 0.0),
        FaultEvent(8, "rotate", "central"),
    )
    plan = FaultPlan(
        name="combined_storm",
        seed=seed,
        ticks=16,
        events=tuple(noise.events) + extra,
    )
    fleet = InProcessFleet(n_edges=5, seed=23 + seed)
    orch = ChaosOrchestrator(
        fleet,
        plan,
        LoadProfile(n_keys=fleet.n_keys, seed=seed, queries_per_tick=10),
    )
    return orch.run()


# ---------------------------------------------------------------------------
# Relay storm (its own harness: the fleet has a store-and-forward tier)
# ---------------------------------------------------------------------------


class _RelayHarness:
    """Central → relay → edges, all in-process (the wiring of
    ``tests/edge/test_relay.py``, packaged for chaos runs)."""

    def __init__(self, seed: int, max_store_bytes: int = 0) -> None:
        from repro.edge.central import CentralServer
        from repro.workloads.generator import TableSpec, generate_table

        self.table = "items"
        self.central = CentralServer("chaosrelay", seed=29 + seed, rsa_bits=512)
        schema, data = generate_table(
            TableSpec(name=self.table, rows=48, columns=3, seed=7)
        )
        self.central.create_table(schema, data, fanout_override=6)
        self.max_store_bytes = max_store_bytes
        self.client = self.central.make_client()
        #: Store counters banked across relay kills (a supervisor's
        #: cumulative view; each kill resets the live relay's own).
        self.banked = {"compacted_frames": 0, "store_evictions": 0}
        self.relay: RelayServer | None = None
        self.up: InProcessTransport | None = None
        self.edges: dict[str, EdgeServer] = {}
        self._attach_relay()
        for i in range(2):
            self._attach_edge(f"edge-{i}")
        self.tree_sync()

    def _attach_relay(self) -> None:
        relay = RelayServer(
            "relay-0", max_store_bytes=self.max_store_bytes
        )
        up = InProcessTransport("relay-0")
        up.connect(relay.handle_frame)
        cfg = config_to_frame(
            self.central.edge_config(),
            ack_every=self.central.ack_every,
            ack_bytes=self.central.ack_bytes,
        )
        relay.adopt_config(cfg)
        sent_epoch = max((rec[0] for rec in cfg.epochs), default=-1)
        self.central.attach_remote_edge(
            "relay-0", up, config_epoch=sent_epoch
        )
        self.relay, self.up = relay, up

    def _attach_edge(self, name: str) -> None:
        edge = EdgeServer(
            name=name,
            config=config_from_frame(self.relay.downstream_config_frame()),
        )
        down = InProcessTransport(name)
        down.connect(edge.handle_frame)
        self.relay.attach_edge(name, down)
        self.edges[name] = edge

    def push_config(self) -> None:
        """Deliver the central's current ConfigFrame to the relay
        (what the socket serve loop does after a key rotation)."""
        cfg = config_to_frame(
            self.central.edge_config(),
            ack_every=self.central.ack_every,
            ack_bytes=self.central.ack_bytes,
        )
        self.relay.handle_frame(frame_to_bytes(cfg))

    def kill_relay(self) -> None:
        """Discard the relay wholesale (store and all) and bring up an
        empty replacement; its subtree re-attaches and snapshot-heals —
        the in-process image of SIGKILL + supervisor relaunch."""
        for key in self.banked:
            self.banked[key] += self.relay.counters[key]
        self._attach_relay()
        for name in list(self.edges):
            self._attach_edge(name)

    def total_counters(self) -> dict:
        """Banked + live store counters across every relay incarnation."""
        return {
            key: self.banked[key] + self.relay.counters[key]
            for key in self.banked
        }

    def tree_sync(self, rounds: int = 30) -> int:
        """Drive the whole tree to quiescence; returns rounds used.

        Raises:
            AssertionError: When the tree cannot settle — a wedged
                relay subtree is a failed run.
        """
        relay_peer = self.central.fanout.peer("relay-0")
        for used in range(1, rounds + 1):
            self.central.propagate()
            self.central.fanout.drain(wait=True)
            self.relay.fanout.pump()
            self.relay.fanout.drain(wait=True)
            frames = [
                frame_from_bytes(b) for b in self.relay.pending_upstream()
            ]
            if frames:
                self.central.fanout._process_replies(relay_peer, frames)
            settled = all(
                self.central.fanout.staleness("relay-0", t) == 0
                for t in self.central.vbtrees
            ) and all(
                self.relay.fanout.staleness(name, t) == 0
                for name in self.edges
                for t in self.central.vbtrees
            )
            if settled:
                return used
        raise AssertionError("relay subtree failed to settle")

    def query(self, low: int, high: int):
        """One forwarded query; returns ``(result, verdict)``."""
        reply = self.up.request(
            range_query_frame(self.table, low, high, None, None)
        )
        result = result_from_bytes(reply.payload)
        return result, self.client.verify(result)


def relay_storm(seed: int = 0) -> ChaosReport:
    """The relay tier dies repeatedly (and sheds store state) under
    query load, with a tight store byte-cap forcing evictions.

    Must hold: every forwarded result the caller sees verifies (the
    relay adds and removes nothing — a healed, empty relay serves
    byte-identical signed frames), the subtree re-settles after every
    kill, and the byte-cap eviction path heals by snapshot rather than
    wedging.  May degrade: heal traffic (snapshots instead of deltas).
    """
    # A cap above snapshot+short-chain early in the run but below it
    # once the table has grown: steady insert churn must trip eviction
    # at least once, while the early chain survives long enough for
    # the rotation snapshot to have deltas to compact.
    harness = _RelayHarness(seed, max_store_bytes=33_000)
    trace: list[str] = []
    report = ChaosReport(
        scenario="relay_storm",
        plan_bytes=FaultPlan(
            name="relay_storm", seed=seed, ticks=10
        ).to_bytes(),
        trace=(),
    )
    writes = 0
    recovery = 0
    for tick in range(10):
        if tick in (3, 7):
            harness.kill_relay()
            trace.append(f"{tick}:kill:relay-0:0.0")
        if tick == 2:
            # Rotate while the relay holds a delta chain: the rotation
            # snapshot covers it, exercising store compaction.  The
            # socket serve loop pushes the refreshed ConfigFrame to
            # connected relays; in-process we deliver it by hand.
            harness.central.rotate_key(seed=4100 + seed)
            harness.push_config()
            trace.append(f"{tick}:rotate:central:0.0")
        if tick == 5:
            harness.relay.drop_store(harness.table)
            trace.append(f"{tick}:drop_store:{harness.table}:0.0")
        for _ in range(4):
            key = 200_000 + writes
            writes += 1
            harness.central.insert(harness.table, (key, "wr", "wr"))
        recovery += harness.tree_sync()
        for low, high in ((0, 6), (200_000 + writes - 4, 200_000 + writes)):
            result, verdict = harness.query(low, high)
            if verdict.ok:
                report.verified += 1
            else:  # pragma: no cover - the broken invariant
                report.unverified += 1
    report.recovery_pumps = recovery
    report.detection_queries = 0
    report.trace = tuple(trace)
    report.load_summary = {
        "issued": report.verified + report.unverified,
        "answered": report.verified,
        **harness.total_counters(),
    }
    return report


#: The battery: what the chaos tests iterate and the bench baselines.
SCENARIOS = {
    "network_flaps": network_flaps,
    "slow_links": slow_links,
    "byzantine_edges": byzantine_edges,
    "rotation_mid_partition": rotation_mid_partition,
    "relay_storm": relay_storm,
    "combined_storm": combined_storm,
}
