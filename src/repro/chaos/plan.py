"""Fault schedules: tick-indexed, seed-deterministic, byte-replayable.

A :class:`FaultPlan` is the chaos battery's unit of reproducibility.
It is built either by a scenario (hand-authored event lists) or by
:meth:`FaultPlan.generate` (a pseudo-random storm that is a *pure
function* of its seed), and it serializes to a canonical text form —
two plans are the same storm if and only if their bytes are equal,
which is what lets a failing chaos run be re-filed as "seed N, plan
bytes B" and replayed exactly (the hypothesis property test in
``tests/chaos/test_plan.py`` holds this line).

Nothing here touches the fleet: the plan is pure data.  The
orchestrator interprets event kinds; the vocabulary is:

========== ============================================================
kind       meaning (``target`` = link/edge/relay name, ``arg`` varies)
========== ============================================================
partition  link down — sends fail until ``heal``
heal       clear every fault on the link (partition/hold/drop/slow)
hold       park outbound frames on the link until ``release``
release    stop holding (parked frames drain on the next flush)
drop       lose the next ``int(arg)`` frames in flight
slow       shape link latency to ``arg`` seconds per frame
tamper     corrupt key ``int(arg)`` in the target edge's replica
kill       crash the target (in-process: respawn empty → snapshot heal)
rotate     rotate the central signing key (``target`` ignored)
drop_store lose the relay's stored chain for table ``target``
========== ============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["FaultEvent", "FaultPlan", "EVENT_KINDS"]

#: The closed vocabulary of event kinds (serialization rejects others).
EVENT_KINDS = (
    "partition",
    "heal",
    "hold",
    "release",
    "drop",
    "slow",
    "tamper",
    "kill",
    "rotate",
    "drop_store",
)

_MAGIC = b"faultplan v1"


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: *at tick, do kind to target (with arg)*.

    Ordering is total (tick, kind, target, arg) so a plan's event list
    has exactly one canonical sort — the serialized form is unique.
    """

    tick: int
    kind: str
    target: str
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.tick < 0:
            raise ValueError(f"negative tick {self.tick}")
        if "\n" in self.target or " " in self.target:
            raise ValueError(f"unserializable target {self.target!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded storm: ``ticks`` steps of scheduled faults.

    Attributes:
        name: Scenario label (shows up in reports and baselines).
        seed: The seed the plan was derived from (provenance only —
            equality and serialization cover the events themselves).
        ticks: Storm duration in orchestrator ticks.
        events: The schedule, canonically sorted.
    """

    name: str
    seed: int
    ticks: int
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events))
        if ordered != tuple(self.events):
            object.__setattr__(self, "events", ordered)
        for ev in self.events:
            if ev.tick >= self.ticks:
                raise ValueError(
                    f"event at tick {ev.tick} outside plan of {self.ticks}"
                )
        if "\n" in self.name or " " in self.name:
            raise ValueError(f"unserializable plan name {self.name!r}")

    # ------------------------------------------------------------------
    # Interpretation
    # ------------------------------------------------------------------

    def at(self, tick: int) -> tuple[FaultEvent, ...]:
        """Events scheduled for ``tick``, in canonical order."""
        return tuple(ev for ev in self.events if ev.tick == tick)

    def targets(self) -> tuple[str, ...]:
        """Every distinct target named by the plan, sorted."""
        return tuple(sorted({ev.target for ev in self.events if ev.target}))

    # ------------------------------------------------------------------
    # Canonical serialization (the replay contract)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical encoding: equal plans ⇔ equal bytes.

        Floats are encoded with ``repr`` (shortest round-tripping
        form), so ``from_bytes(p.to_bytes()) == p`` exactly.
        """
        lines = [
            _MAGIC.decode(),
            f"name={self.name}",
            f"seed={self.seed}",
            f"ticks={self.ticks}",
        ]
        for ev in self.events:
            lines.append(f"{ev.tick} {ev.kind} {ev.target} {ev.arg!r}")
        return ("\n".join(lines) + "\n").encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "FaultPlan":
        """Decode :meth:`to_bytes` output (strict — any deviation raises)."""
        lines = data.decode().splitlines()
        if not lines or lines[0] != _MAGIC.decode():
            raise ValueError("not a faultplan v1 byte string")
        header = dict(
            line.split("=", 1) for line in lines[1:4] if "=" in line
        )
        if set(header) != {"name", "seed", "ticks"}:
            raise ValueError("malformed faultplan header")
        events = []
        for line in lines[4:]:
            tick_s, kind, target, arg_s = line.split(" ")
            events.append(
                FaultEvent(
                    tick=int(tick_s), kind=kind, target=target,
                    arg=float(arg_s),
                )
            )
        return cls(
            name=header["name"],
            seed=int(header["seed"]),
            ticks=int(header["ticks"]),
            events=tuple(events),
        )

    # ------------------------------------------------------------------
    # Seeded generation
    # ------------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        targets: Sequence[str],
        ticks: int = 20,
        events_per_tick: float = 1.0,
        kinds: Iterable[str] = ("partition", "heal", "hold", "release",
                                "drop", "slow", "kill"),
        name: str = "generated",
    ) -> "FaultPlan":
        """A pseudo-random storm that is a pure function of its inputs.

        Every ``partition``/``hold`` drawn is paired with a matching
        ``heal``/``release`` at a later (seeded) tick, so a generated
        storm always ends with every link nominally healthy — the
        orchestrator's final heal-all is belt and braces, not load
        bearing.  ``slow`` draws a delay in [5, 50] ms; ``drop`` loses
        1–3 frames.
        """
        rng = random.Random(seed)
        kinds = tuple(kinds)
        events: list[FaultEvent] = []
        for tick in range(ticks):
            n = int(events_per_tick) + (
                1 if rng.random() < events_per_tick % 1 else 0
            )
            for _ in range(n):
                kind = rng.choice(kinds)
                target = rng.choice(list(targets))
                if kind in ("heal", "release"):
                    # Standalone heals are harmless no-ops; keep them —
                    # schedules with redundant heals must replay too.
                    events.append(FaultEvent(tick, kind, target))
                elif kind == "partition":
                    end = rng.randint(tick + 1, ticks)
                    events.append(FaultEvent(tick, "partition", target))
                    if end < ticks:
                        events.append(FaultEvent(end, "heal", target))
                elif kind == "hold":
                    end = rng.randint(tick + 1, ticks)
                    events.append(FaultEvent(tick, "hold", target))
                    if end < ticks:
                        events.append(FaultEvent(end, "release", target))
                elif kind == "drop":
                    events.append(
                        FaultEvent(tick, "drop", target, float(rng.randint(1, 3)))
                    )
                elif kind == "slow":
                    delay = round(rng.uniform(0.005, 0.05), 4)
                    events.append(FaultEvent(tick, "slow", target, delay))
                    end = rng.randint(tick + 1, ticks)
                    if end < ticks:
                        events.append(FaultEvent(end, "heal", target))
                elif kind == "kill":
                    events.append(FaultEvent(tick, "kill", target))
                else:
                    events.append(FaultEvent(tick, kind, target))
        return cls(name=name, seed=seed, ticks=ticks, events=tuple(events))
