"""Tick-driven chaos execution against an in-process fleet.

The orchestrator is a deterministic interpreter: at every tick it
applies the :class:`~repro.chaos.plan.FaultPlan`'s scheduled events to
the fleet (recording each application in an append-only ``trace``),
issues that tick's open-loop query batch through the verifying router,
runs one replication pump, and moves on.  Wall-clock never influences
control flow — two runs of the same (fleet seed, plan, load profile)
apply the same faults at the same ticks to the same query stream, so
the ``trace`` is byte-identical across runs and a chaos failure is a
seed, not an anecdote.

The invariants every run must uphold (asserted by ``tests/chaos/`` and
gated by ``bench_chaos.py``):

* **Zero unverified results** — every response the router surfaces is
  verified-ACCEPT; tamper turns into quarantine + failover, never into
  an answer.
* **Quarantine on tamper** — a byzantine edge is detected (counted as
  ``detection_queries``: routed queries between the first tamper and
  the first REJECT) and stays out of rotation until healed.
* **Post-storm parity** — after heal + settle, every edge's cursors
  reach the central's log heads (``recovery_pumps`` counts the settle
  rounds; the fleet converged or the run failed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.plan import FaultEvent, FaultPlan
from repro.edge.adversary import ValueTamper
from repro.edge.central import CentralServer
from repro.edge.router import TransportQueryChannel
from repro.edge.transport import FaultInjector, InProcessTransport
from repro.exceptions import RouterError
from repro.workloads.generator import TableSpec, generate_table
from repro.workloads.load_gen import LoadGenerator, LoadProfile

__all__ = ["InProcessFleet", "ChaosOrchestrator", "ChaosReport"]

TABLE = "items"


class InProcessFleet:
    """Central + n in-process edges wired for fault injection.

    Each edge's replication link *and* its dedicated query link share
    one :class:`~repro.edge.transport.FaultInjector`, so a partition
    severs the edge completely — replication stalls and queries fail
    over — exactly like pulling a network cable, not like two
    half-broken links.

    Args:
        n_edges: Fleet size.
        rows: Seed rows in the queried table (keys ``0..rows-1``).
        seed: Central's deterministic crypto/PRNG seed.
        data_seed: Table payload seed.
        rsa_bits: Key size (512 keeps chaos runs fast; verification
            strength is not what chaos tests).
        policy: Router policy.
        **central_kwargs: Forwarded to :class:`CentralServer`.
    """

    def __init__(
        self,
        n_edges: int = 4,
        rows: int = 64,
        seed: int = 11,
        data_seed: int = 5,
        rsa_bits: int = 512,
        policy: str = "round_robin",
        **central_kwargs,
    ) -> None:
        self.table = TABLE
        self.n_keys = rows
        self.central = CentralServer(
            "chaosdb", seed=seed, rsa_bits=rsa_bits, **central_kwargs
        )
        schema, data = generate_table(
            TableSpec(name=TABLE, rows=rows, columns=3, seed=data_seed)
        )
        self.central.create_table(schema, data, fanout_override=6)
        self.faults: dict[str, FaultInjector] = {}
        self.edges: dict = {}
        channels = []
        for i in range(n_edges):
            name = f"edge-{i}"
            injector = FaultInjector()
            self.faults[name] = injector
            self.edges[name] = self.central.spawn_edge_server(
                name, faults=injector
            )
            channels.append(self._query_channel(name, injector))
        self.router = self.central.make_router(
            channels=channels, policy=policy
        )
        self._rotations = 0
        self._writes = 0
        #: Edges currently carrying un-healed tampered replicas.
        self.tampered: set[str] = set()

    def _query_channel(
        self, name: str, injector: FaultInjector
    ) -> TransportQueryChannel:
        """A query link that always reaches the *current* edge object
        under ``name`` (an in-process restart swaps the object)."""
        link = InProcessTransport(name, faults=injector)
        link.connect(lambda data, _n=name: self.edges[_n].handle_frame(data))
        return TransportQueryChannel(name, link, simulated_latency=True)

    def edge_names(self) -> list[str]:
        return sorted(self.edges)

    # ------------------------------------------------------------------
    # Fault actions (the orchestrator's event vocabulary)
    # ------------------------------------------------------------------

    def tamper(self, name: str, key: int, column: str = "a1") -> None:
        """Byzantine edge: corrupt ``key`` in the replica at rest."""
        ValueTamper(
            table=self.table,
            key=key,
            column=column,
            new_value=f"tampered-{key}",
        ).apply(self.edges[name])
        self.tampered.add(name)

    def kill(self, name: str) -> None:
        """Crash + supervisor relaunch, in-process: the edge's replica
        store dies with it; the fresh server re-attaches empty and the
        fan-out engine heals it via snapshot (the same escalation a
        SIGKILLed ``serve`` process takes through the handshake)."""
        from repro.edge.edge_server import EdgeServer

        injector = self.faults[name]
        injector.clear()
        edge = EdgeServer(
            name=name,
            config=self.central.edge_config(),
            ack_every=self.central.ack_every,
            ack_bytes=self.central.ack_bytes,
        )
        link = InProcessTransport(name, faults=injector)
        edge.attach_transport(link)
        self.central.fanout.attach(name, link)
        self.central.fanout.bootstrap(name)
        self.edges[name] = edge
        self.tampered.discard(name)
        # The byzantine replica (if any) died with the process; let the
        # router probe the reborn edge again.
        self.router.router.release(name)

    def rotate(self) -> None:
        """Rotate the signing key (deterministic per-rotation seed)."""
        self._rotations += 1
        self.central.rotate_key(seed=4000 + self._rotations)

    def write(self, n: int = 1) -> None:
        """Deterministic insert churn (keys far above the seed range)."""
        for _ in range(n):
            key = 100_000 + self._writes
            self._writes += 1
            self.central.insert(self.table, (key, "wr", "wr"))

    # ------------------------------------------------------------------
    # Replication driving
    # ------------------------------------------------------------------

    def pump(self) -> None:
        """One replication cycle: ship what fits the windows, apply
        what acks arrived.  Faulted links simply fail/queue — the
        engine retries on later pumps."""
        self.central.propagate()
        self.central.fanout.drain(wait=False)

    def settle(self, max_pumps: int = 200) -> int:
        """Pump until every edge reaches cursor parity on every table.

        Returns the number of pumps taken.

        Raises:
            AssertionError: If parity is not reached within
                ``max_pumps`` — a stuck fleet is a failed run, not a
                slow one.
        """
        for pumps in range(1, max_pumps + 1):
            self.central.propagate()
            self.central.fanout.drain(wait=True)
            if self.at_parity():
                return pumps
        raise AssertionError(
            f"fleet failed to reach cursor parity in {max_pumps} pumps; "
            f"staleness={self.staleness_map()}"
        )

    def at_parity(self) -> bool:
        """True when no edge lags any table's log head."""
        return all(
            self.central.staleness(name, table) == 0
            for name in self.edges
            for table in self.central.vbtrees
        )

    def staleness_map(self) -> dict:
        return {
            name: {
                table: self.central.staleness(name, table)
                for table in self.central.vbtrees
            }
            for name in self.edges
        }

    def heal_all(self) -> None:
        """Clear every injected fault and respawn tampered edges."""
        for injector in self.faults.values():
            injector.clear()
        for name in sorted(self.tampered):
            self.kill(name)


@dataclass
class ChaosReport:
    """What one scenario run did and observed (all deterministic except
    the latency list inside ``load_summary``)."""

    scenario: str
    plan_bytes: bytes
    trace: tuple[str, ...]
    #: Routed queries whose result the caller saw — every one verified.
    verified: int = 0
    #: Results surfaced WITHOUT a verified ACCEPT — the invariant; any
    #: nonzero value fails the battery.
    unverified: int = 0
    #: Queries the router could not answer at all (fleet exhausted).
    unavailable: int = 0
    #: Verify-REJECTs observed en route (tamper detections).
    rejections: int = 0
    #: Routed queries between first tamper and first REJECT.
    detection_queries: int = -1
    #: Settle pumps needed to reach post-storm cursor parity.
    recovery_pumps: int = 0
    #: Edges quarantined at end of storm (before heal).
    quarantined: tuple[str, ...] = ()
    load_summary: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.unverified == 0

    def summary(self) -> dict:
        """Flat dict for benches / baselines."""
        return {
            "verified": self.verified,
            "unverified": self.unverified,
            "unavailable": self.unavailable,
            "rejections": self.rejections,
            "detection_queries": self.detection_queries,
            "recovery_pumps": self.recovery_pumps,
            **self.load_summary,
        }


class ChaosOrchestrator:
    """Run one plan against one fleet under one load profile."""

    def __init__(
        self,
        fleet: InProcessFleet,
        plan: FaultPlan,
        profile: LoadProfile | None = None,
        writes_per_tick: int = 2,
    ) -> None:
        self.fleet = fleet
        self.plan = plan
        self.profile = profile or LoadProfile(n_keys=fleet.n_keys)
        self.writes_per_tick = writes_per_tick
        self.load = LoadGenerator(self.profile, plan.ticks)
        self.trace: list[str] = []
        self._tamper_seen_tick: int | None = None
        self._detected_at_query: int | None = None
        self._queries_since_tamper = 0

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------

    def _apply(self, ev: FaultEvent) -> None:
        fleet = self.fleet
        if ev.kind == "partition":
            fleet.faults[ev.target].partitioned = True
        elif ev.kind == "heal":
            fleet.faults[ev.target].clear()
        elif ev.kind == "hold":
            fleet.faults[ev.target].hold = True
        elif ev.kind == "release":
            fleet.faults[ev.target].hold = False
        elif ev.kind == "drop":
            fleet.faults[ev.target].drop_next += int(ev.arg)
        elif ev.kind == "slow":
            fleet.faults[ev.target].delay = ev.arg
        elif ev.kind == "tamper":
            fleet.tamper(ev.target, key=int(ev.arg))
            if self._tamper_seen_tick is None:
                self._tamper_seen_tick = ev.tick
        elif ev.kind == "kill":
            fleet.kill(ev.target)
        elif ev.kind == "rotate":
            fleet.rotate()
        elif ev.kind == "drop_store":
            # Only meaningful on fleets with a relay tier; the flat
            # fleet records the event and moves on (scenarios that
            # schedule it run their own relay harness).
            pass
        else:  # pragma: no cover - plan validation forbids this
            raise ValueError(f"unhandled event kind {ev.kind!r}")
        self.trace.append(
            f"{ev.tick}:{ev.kind}:{ev.target}:{ev.arg!r}"
        )

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------

    def run(self) -> ChaosReport:
        fleet, plan, load = self.fleet, self.plan, self.load
        report = ChaosReport(
            scenario=plan.name,
            plan_bytes=plan.to_bytes(),
            trace=(),
        )
        for tick in range(plan.ticks):
            for ev in plan.at(tick):
                self._apply(ev)
            fleet.write(self.writes_per_tick)
            for low, high in load.batch(tick):
                load.note_issued()
                try:
                    resp = fleet.router.range_query(
                        fleet.table, low=low, high=high
                    )
                except RouterError:
                    load.note_unavailable()
                    report.unavailable += 1
                    continue
                if resp.verdict.ok:
                    report.verified += 1
                    load.note_answered(resp.latency)
                else:  # pragma: no cover - the broken invariant
                    report.unverified += 1
                report.rejections += len(resp.rejected)
                if self._tamper_seen_tick is not None:
                    if self._detected_at_query is None:
                        self._queries_since_tamper += 1
                        if resp.rejected:
                            self._detected_at_query = (
                                self._queries_since_tamper
                            )
            fleet.pump()
        report.quarantined = tuple(
            sorted(
                name
                for name, stats in fleet.router.router.stats().items()
                if stats.quarantined
            )
        )
        # --- storm over: heal, settle, converge -----------------------
        fleet.heal_all()
        report.recovery_pumps = fleet.settle()
        report.detection_queries = (
            self._detected_at_query
            if self._detected_at_query is not None
            else (-1 if self._tamper_seen_tick is not None else 0)
        )
        report.trace = tuple(self.trace)
        report.load_summary = load.report.summary()
        return report
