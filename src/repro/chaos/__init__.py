"""Deterministic, seedable chaos orchestration (DESIGN.md §14).

The package turns the fabric's existing fault hooks — in-process
:class:`~repro.edge.transport.FaultInjector` links, adversary tamper
modes, key rotation, relay store drops, deployment SIGKILL storms —
into *named, replayable scenarios* that run concurrently under
sustained query load and assert the paper's standing invariant: a
caller never sees an unverified result, no matter the weather.

* :mod:`repro.chaos.plan` — :class:`FaultPlan` / :class:`FaultEvent`:
  a tick-indexed fault schedule that is a pure function of its seed
  and replays byte-identically (``to_bytes``/``from_bytes``).
* :mod:`repro.chaos.orchestrator` — :class:`InProcessFleet` +
  :class:`ChaosOrchestrator`: applies a plan tick by tick against a
  live fleet while a :class:`~repro.workloads.load_gen.LoadGenerator`
  keeps routed queries flowing, then heals and settles, producing a
  :class:`ChaosReport`.
* :mod:`repro.chaos.scenarios` — the standing battery: network flaps,
  slow links, byzantine edges, relay storms, rotation mid-partition,
  and the combined storm, each a zero-argument callable in
  :data:`~repro.chaos.scenarios.SCENARIOS`.
"""

from repro.chaos.orchestrator import (
    ChaosOrchestrator,
    ChaosReport,
    InProcessFleet,
)
from repro.chaos.plan import FaultEvent, FaultPlan

__all__ = [
    "ChaosOrchestrator",
    "ChaosReport",
    "FaultEvent",
    "FaultPlan",
    "InProcessFleet",
]
