"""Mini relational DBMS substrate.

Everything the paper's system presupposes from "the database": typed
schemas, heap tables clustered on a primary-key B+-tree, a predicate
language, relational operators, materialized join views, and a 2PL
lock manager with deadlock detection.
"""

from repro.db.btree import BPlusTree, InternalNode, LeafNode, MutationTrace
from repro.db.buffer import BufferPool
from repro.db.executor import (
    Filter,
    IndexRangeScan,
    MergeJoin,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    execute_to_list,
)
from repro.db.expressions import (
    AlwaysTrue,
    And,
    Comparison,
    KeyRange,
    Not,
    Or,
    Predicate,
    between,
)
from repro.db.locks import LockManager, LockMode
from repro.db.mview import MaterializedJoinView
from repro.db.page import PageGeometry
from repro.db.rows import Row
from repro.db.schema import Catalog, Column, TableSchema
from repro.db.table import Table
from repro.db.transactions import Transaction, TransactionManager, TxnStatus
from repro.db.types import (
    BlobType,
    BoolType,
    ColumnType,
    FloatType,
    IntType,
    VarcharType,
    type_from_name,
)

__all__ = [
    "AlwaysTrue",
    "And",
    "BPlusTree",
    "BufferPool",
    "BlobType",
    "BoolType",
    "Catalog",
    "Column",
    "ColumnType",
    "Comparison",
    "Filter",
    "FloatType",
    "IndexRangeScan",
    "IntType",
    "InternalNode",
    "KeyRange",
    "LeafNode",
    "LockManager",
    "LockMode",
    "MaterializedJoinView",
    "MergeJoin",
    "MutationTrace",
    "NestedLoopJoin",
    "Not",
    "Or",
    "PageGeometry",
    "PlanNode",
    "Predicate",
    "Project",
    "Row",
    "SeqScan",
    "Table",
    "TableSchema",
    "Transaction",
    "TransactionManager",
    "TxnStatus",
    "VarcharType",
    "between",
    "execute_to_list",
    "type_from_name",
]
