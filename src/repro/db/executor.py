"""Relational operators: scan, filter, project, join.

A tiny pull-based (iterator) execution engine.  Plans are trees of
:class:`PlanNode`; ``execute()`` yields :class:`~repro.db.rows.Row`
objects.  The planner in :mod:`repro.sql.planner` builds these; the
edge server uses them for the relational part of query processing
before constructing verification objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.db.expressions import Predicate
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.exceptions import PlanningError, SchemaError

__all__ = [
    "PlanNode",
    "SeqScan",
    "IndexRangeScan",
    "Filter",
    "Project",
    "NestedLoopJoin",
    "MergeJoin",
    "execute_to_list",
]


class PlanNode:
    """Base class for plan operators."""

    @property
    def schema(self) -> TableSchema:
        """Schema of the rows this operator produces."""
        raise NotImplementedError

    def execute(self) -> Iterator[Row]:
        """Yield result rows."""
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        """Readable plan tree (mirrors EXPLAIN output)."""
        pad = "  " * depth
        line = pad + self._describe()
        children = "".join(
            "\n" + c.explain(depth + 1) for c in self._children()
        )
        return line + children

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> Sequence["PlanNode"]:
        return ()


@dataclass
class SeqScan(PlanNode):
    """Full scan of a table in key order."""

    table: Table

    @property
    def schema(self) -> TableSchema:
        return self.table.schema

    def execute(self) -> Iterator[Row]:
        return self.table.scan()

    def _describe(self) -> str:
        return f"SeqScan({self.table.name})"


@dataclass
class IndexRangeScan(PlanNode):
    """Key-range scan using the clustered index.

    The predicate is re-applied, so a convex over-approximation of the
    range (see ``Or.key_range``) stays correct.
    """

    table: Table
    predicate: Predicate

    @property
    def schema(self) -> TableSchema:
        return self.table.schema

    def execute(self) -> Iterator[Row]:
        key_range = self.predicate.key_range(self.table.schema.key)
        if key_range is None:
            raise PlanningError(
                "IndexRangeScan requires a predicate with a contiguous key range"
            )
        for row in self.table.range_scan(key_range):
            if self.predicate.evaluate(row):
                yield row

    def _describe(self) -> str:
        return f"IndexRangeScan({self.table.name}, {self.predicate})"


@dataclass
class Filter(PlanNode):
    """Row filter on any input."""

    child: PlanNode
    predicate: Predicate

    @property
    def schema(self) -> TableSchema:
        return self.child.schema

    def execute(self) -> Iterator[Row]:
        for row in self.child.execute():
            if self.predicate.evaluate(row):
                yield row

    def _describe(self) -> str:
        return f"Filter({self.predicate})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class Project(PlanNode):
    """Column projection."""

    child: PlanNode
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        child_cols = self.child.schema.column_names
        for name in self.columns:
            if name not in child_cols:
                raise PlanningError(f"projection of unknown column {name!r}")

    @property
    def schema(self) -> TableSchema:
        return self.child.schema.project(self.columns)

    def execute(self) -> Iterator[Row]:
        for row in self.child.execute():
            yield row.project(self.columns)

    def _describe(self) -> str:
        return f"Project({', '.join(self.columns)})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.child,)


def _joined_schema(
    left: TableSchema, right: TableSchema, name: str
) -> TableSchema:
    """Schema of a join result; columns are prefixed on collision."""
    columns: list[Column] = []
    left_names = set(left.column_names)
    for col in left.columns:
        columns.append(col)
    for col in right.columns:
        if col.name in left_names:
            columns.append(Column(f"{right.name}_{col.name}", col.type))
        else:
            columns.append(col)
    key = left.key  # join output keeps the left key as row identity
    return TableSchema(name=name, columns=columns, key=key)


@dataclass
class NestedLoopJoin(PlanNode):
    """Equi-join by nested loops (any inputs)."""

    left: PlanNode
    right: PlanNode
    left_column: str
    right_column: str

    @property
    def schema(self) -> TableSchema:
        return _joined_schema(
            self.left.schema,
            self.right.schema,
            f"{self.left.schema.name}_join_{self.right.schema.name}",
        )

    def execute(self) -> Iterator[Row]:
        schema = self.schema
        right_rows = list(self.right.execute())
        li = self.left.schema.column_index(self.left_column)
        ri = self.right.schema.column_index(self.right_column)
        for lrow in self.left.execute():
            for rrow in right_rows:
                if lrow.values[li] == rrow.values[ri]:
                    yield Row(schema, lrow.values + rrow.values)

    def _describe(self) -> str:
        return f"NestedLoopJoin({self.left_column} = {self.right_column})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass
class MergeJoin(PlanNode):
    """Equi-join by merging two inputs sorted on the join columns.

    Both inputs must arrive sorted on their join column (true for key
    scans); duplicate join values on both sides produce the full cross
    product of the duplicate groups.
    """

    left: PlanNode
    right: PlanNode
    left_column: str
    right_column: str

    @property
    def schema(self) -> TableSchema:
        return _joined_schema(
            self.left.schema,
            self.right.schema,
            f"{self.left.schema.name}_join_{self.right.schema.name}",
        )

    def execute(self) -> Iterator[Row]:
        schema = self.schema
        li = self.left.schema.column_index(self.left_column)
        ri = self.right.schema.column_index(self.right_column)
        left_rows = list(self.left.execute())
        right_rows = list(self.right.execute())
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            lval = left_rows[i].values[li]
            rval = right_rows[j].values[ri]
            if lval < rval:
                i += 1
            elif lval > rval:
                j += 1
            else:
                # Gather the duplicate groups on both sides.
                i_end = i
                while i_end < len(left_rows) and left_rows[i_end].values[li] == lval:
                    i_end += 1
                j_end = j
                while j_end < len(right_rows) and right_rows[j_end].values[ri] == rval:
                    j_end += 1
                for a in range(i, i_end):
                    for b in range(j, j_end):
                        yield Row(
                            schema, left_rows[a].values + right_rows[b].values
                        )
                i, j = i_end, j_end

    def _describe(self) -> str:
        return f"MergeJoin({self.left_column} = {self.right_column})"

    def _children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


def execute_to_list(plan: PlanNode) -> list[Row]:
    """Run a plan to completion and materialize the result."""
    return list(plan.execute())
