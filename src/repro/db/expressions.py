"""Predicate expressions for selections.

The expression AST supports the condition forms the paper allows for
selection — ``A_i θ a`` with ``θ ∈ {=, <, <=, >, >=, !=}`` — combined
with AND/OR/NOT.  Beyond evaluation, predicates can report:

* :meth:`Predicate.key_range` — the contiguous key interval implied on
  a given column (drives index selection and the paper's "selection on
  the primary key yields a range of contiguous tuples" case);
* :meth:`Predicate.columns` — referenced columns (planner bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.db.rows import Row
from repro.exceptions import DatabaseError

__all__ = [
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "AlwaysTrue",
    "KeyRange",
    "between",
]

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class KeyRange:
    """A (possibly half-open) interval of key values.

    ``low=None`` / ``high=None`` denote unbounded ends.  ``empty`` marks
    a provably unsatisfiable range (e.g. ``k > 5 AND k < 3``).
    """

    low: Any = None
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    empty: bool = False

    def intersect(self, other: "KeyRange") -> "KeyRange":
        """Intersection of two ranges (used when ANDing predicates)."""
        if self.empty or other.empty:
            return KeyRange(empty=True)
        low, low_inc = self.low, self.low_inclusive
        if other.low is not None and (low is None or other.low > low):
            low, low_inc = other.low, other.low_inclusive
        elif other.low is not None and other.low == low:
            low_inc = low_inc and other.low_inclusive
        high, high_inc = self.high, self.high_inclusive
        if other.high is not None and (high is None or other.high < high):
            high, high_inc = other.high, other.high_inclusive
        elif other.high is not None and other.high == high:
            high_inc = high_inc and other.high_inclusive
        result = KeyRange(low, high, low_inc, high_inc)
        if (
            low is not None
            and high is not None
            and (low > high or (low == high and not (low_inc and high_inc)))
        ):
            return KeyRange(empty=True)
        return result

    def contains(self, key: Any) -> bool:
        """True if ``key`` lies within the range."""
        if self.empty:
            return False
        if self.low is not None:
            if self.low_inclusive and key < self.low:
                return False
            if not self.low_inclusive and key <= self.low:
                return False
        if self.high is not None:
            if self.high_inclusive and key > self.high:
                return False
            if not self.high_inclusive and key >= self.high:
                return False
        return True


class Predicate:
    """Base class for filter predicates."""

    def evaluate(self, row: Row) -> bool:
        """Truth value of the predicate on ``row``."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns the predicate references."""
        raise NotImplementedError

    def key_range(self, column: str) -> Optional[KeyRange]:
        """The contiguous interval this predicate implies on ``column``,
        or ``None`` if it does not reduce to one (e.g. OR of disjoint
        ranges, or predicates on other columns under OR)."""
        raise NotImplementedError

    # Composition sugar ------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class AlwaysTrue(Predicate):
    """The trivial predicate (full scans)."""

    def evaluate(self, row: Row) -> bool:
        return True

    def columns(self) -> set[str]:
        return set()

    def key_range(self, column: str) -> Optional[KeyRange]:
        return KeyRange()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column θ literal``."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise DatabaseError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Row) -> bool:
        return _OPS[self.op](row[self.column], self.value)

    def columns(self) -> set[str]:
        return {self.column}

    def key_range(self, column: str) -> Optional[KeyRange]:
        if self.column != column:
            # A predicate on a different column doesn't constrain `column`.
            return KeyRange()
        if self.op == "=":
            return KeyRange(self.value, self.value)
        if self.op == "<":
            return KeyRange(high=self.value, high_inclusive=False)
        if self.op == "<=":
            return KeyRange(high=self.value)
        if self.op == ">":
            return KeyRange(low=self.value, low_inclusive=False)
        if self.op == ">=":
            return KeyRange(low=self.value)
        # != does not reduce to one contiguous interval.
        return None


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Row) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def key_range(self, column: str) -> Optional[KeyRange]:
        lr = self.left.key_range(column)
        rr = self.right.key_range(column)
        if lr is None or rr is None:
            return None
        return lr.intersect(rr)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Row) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def key_range(self, column: str) -> Optional[KeyRange]:
        lr = self.left.key_range(column)
        rr = self.right.key_range(column)
        if lr is None or rr is None:
            return None
        if not self.left.columns() and not self.right.columns():
            return KeyRange()
        # A disjunction only yields a usable single interval if both
        # sides constrain the same column; take the convex hull (safe
        # over-approximation for index scans — the filter re-checks).
        if self.columns() != {column}:
            return None
        low, low_inc = lr.low, lr.low_inclusive
        if rr.low is None or (low is not None and rr.low < low):
            low, low_inc = rr.low, rr.low_inclusive
        high, high_inc = lr.high, lr.high_inclusive
        if rr.high is None or (high is not None and rr.high > high):
            high, high_inc = rr.high, rr.high_inclusive
        if lr.empty:
            return rr
        if rr.empty:
            return lr
        return KeyRange(low, high, low_inc, high_inc)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    inner: Predicate

    def evaluate(self, row: Row) -> bool:
        return not self.inner.evaluate(row)

    def columns(self) -> set[str]:
        return self.inner.columns()

    def key_range(self, column: str) -> Optional[KeyRange]:
        # Negations rarely stay contiguous; be conservative.
        if column in self.inner.columns():
            return None
        return KeyRange()


def between(column: str, low: Any, high: Any) -> Predicate:
    """``low <= column <= high`` — the paper's canonical range selection."""
    return And(Comparison(column, ">=", low), Comparison(column, "<=", high))
