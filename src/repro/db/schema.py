"""Table schemas and the database catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.db.types import ColumnType
from repro.exceptions import SchemaError, TypeMismatchError

__all__ = ["Column", "TableSchema", "Catalog"]

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _check_identifier(name: str, what: str) -> None:
    if not name or name[0].isdigit() or any(c not in _IDENT_OK for c in name):
        raise SchemaError(f"invalid {what} name: {name!r}")


@dataclass(frozen=True)
class Column:
    """One column: a name and a type."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        _check_identifier(self.name, "column")


@dataclass(frozen=True)
class TableSchema:
    """Schema of a base table or materialized view.

    Attributes:
        name: Table name.
        columns: Ordered column definitions.
        key: Name of the primary-key column (the VB-tree search key).
    """

    name: str
    columns: tuple[Column, ...]
    key: str

    def __init__(self, name: str, columns: Sequence[Column], key: str) -> None:
        _check_identifier(name, "table")
        cols = tuple(columns)
        if not cols:
            raise SchemaError("a table needs at least one column")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {name!r}")
        if key not in names:
            raise SchemaError(f"key column {key!r} not in table {name!r}")
        key_col = cols[names.index(key)]
        if not key_col.type.orderable:
            raise SchemaError(
                f"key column {key!r} has non-orderable type {key_col.type}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "key", key)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self.columns)

    @property
    def num_columns(self) -> int:
        """``N_c`` in the paper's notation."""
        return len(self.columns)

    @property
    def key_index(self) -> int:
        """Position of the key column."""
        return self.column_names.index(self.key)

    @property
    def key_type(self) -> ColumnType:
        """Type of the key column."""
        return self.columns[self.key_index].type

    def column(self, name: str) -> Column:
        """Look up a column by name.

        Raises:
            SchemaError: If the column does not exist.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        """Position of column ``name``.

        Raises:
            SchemaError: If the column does not exist.
        """
        try:
            return self.column_names.index(name)
        except ValueError:
            raise SchemaError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def validate_row(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate one row against the schema; returns normalized values.

        Raises:
            TypeMismatchError: On arity or per-column type violations.
        """
        if len(values) != len(self.columns):
            raise TypeMismatchError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return tuple(
            col.type.validate(v) for col, v in zip(self.columns, values, strict=True)
        )

    def tuple_width(self) -> int:
        """Nominal tuple width in bytes (sum of column widths)."""
        return sum(c.type.byte_width() for c in self.columns)

    def project(self, names: Sequence[str]) -> "TableSchema":
        """Schema of a projection of this table (key must be retained
        by callers that need further key-based processing; projection
        itself does not require it)."""
        cols = tuple(self.column(n) for n in names)
        key = self.key if self.key in names else names[0]
        return TableSchema(name=self.name, columns=cols, key=key)


@dataclass
class Catalog:
    """Name → schema registry for one logical database."""

    db_name: str
    _schemas: dict[str, TableSchema] = field(default_factory=dict)

    def register(self, schema: TableSchema) -> None:
        """Add a schema.

        Raises:
            SchemaError: If a table of that name already exists.
        """
        if schema.name in self._schemas:
            raise SchemaError(f"table {schema.name!r} already exists")
        self._schemas[schema.name] = schema

    def drop(self, name: str) -> None:
        """Remove a schema.

        Raises:
            SchemaError: If the table does not exist.
        """
        if name not in self._schemas:
            raise SchemaError(f"no table {name!r}")
        del self._schemas[name]

    def get(self, name: str) -> TableSchema:
        """Look up a schema by table name.

        Raises:
            SchemaError: If the table does not exist.
        """
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._schemas.values())

    def table_names(self) -> list[str]:
        """Sorted list of registered table names."""
        return sorted(self._schemas)
