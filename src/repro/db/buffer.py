"""An LRU buffer pool over B+-tree nodes — the physical I/O model.

The in-memory B+-tree counts every node visit as one *logical* I/O.
Real edge servers cache hot nodes; the interesting quantity for the
paper's "I/O savings" discussion is the number of *physical* reads
(buffer misses).  :class:`BufferPool` replays a logical access trace
through an LRU cache of configurable capacity, giving miss counts
without coupling the tree to a storage layer.

Used by the edge-I/O analyses and available as a substrate component:

    pool = BufferPool(capacity=64)
    for node in access_trace:
        pool.access(node.node_id)
    print(pool.misses, pool.hit_rate)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable

from repro.exceptions import DatabaseError

__all__ = ["BufferPool"]


class BufferPool:
    """LRU page cache with hit/miss accounting.

    Args:
        capacity: Maximum number of resident pages (> 0).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise DatabaseError(f"buffer capacity must be positive: {capacity}")
        self.capacity = capacity
        self._pages: OrderedDict[Hashable, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, page_id: Hashable) -> bool:
        """Touch one page.

        Returns:
            True on a hit (already resident), False on a miss (the page
            is faulted in, possibly evicting the LRU page).
        """
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page_id] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.evictions += 1
        return False

    def access_many(self, page_ids: Iterable[Hashable]) -> int:
        """Touch a sequence of pages; returns the number of misses."""
        before = self.misses
        for page_id in page_ids:
            self.access(page_id)
        return self.misses - before

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident(self) -> int:
        """Number of pages currently cached."""
        return len(self._pages)

    def contains(self, page_id: Hashable) -> bool:
        """True if ``page_id`` is resident (does not count as an access)."""
        return page_id in self._pages

    @property
    def accesses(self) -> int:
        """Total accesses recorded."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / accesses (0.0 when nothing was accessed)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the counters, keeping resident pages."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop all pages and statistics."""
        self._pages.clear()
        self.reset_stats()
