"""Row values and row identities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.db.schema import TableSchema

__all__ = ["Row"]


@dataclass(frozen=True)
class Row:
    """An immutable tuple of column values bound to a schema.

    Rows compare and hash by their values, so result sets can be
    compared structurally in tests and verification code.
    """

    schema: TableSchema
    values: tuple[Any, ...]

    def __init__(self, schema: TableSchema, values: Sequence[Any]) -> None:
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "values", schema.validate_row(values))

    @property
    def key(self) -> Any:
        """Primary-key value of this row."""
        return self.values[self.schema.key_index]

    def __getitem__(self, column: str | int) -> Any:
        if isinstance(column, int):
            return self.values[column]
        return self.values[self.schema.column_index(column)]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def as_dict(self) -> dict[str, Any]:
        """Column-name → value mapping."""
        return dict(zip(self.schema.column_names, self.values, strict=False))

    def project(self, names: Sequence[str]) -> "Row":
        """A new row containing only ``names`` (in the given order)."""
        sub_schema = self.schema.project(names)
        return Row(sub_schema, tuple(self[n] for n in names))

    def replace(self, **updates: Any) -> "Row":
        """A copy of the row with some columns replaced."""
        vals = list(self.values)
        for name, value in updates.items():
            vals[self.schema.column_index(name)] = value
        return Row(self.schema, vals)

    def byte_width(self) -> int:
        """Nominal stored width of this row (fixed-width column model)."""
        return self.schema.tuple_width()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(f"{n}={v!r}" for n, v in self.as_dict().items())
        return f"Row({self.schema.name}: {cols})"
