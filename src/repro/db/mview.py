"""Materialized join views.

Section 3.3 (Join): ad-hoc joins cannot be pre-authenticated, but in
edge computing "most of the database queries are not likely to be
ad-hoc, but are embedded in application programs and hence known in
advance.  It is thus possible to materialize each join operation, and
construct a VB-tree on the materialized view."

:class:`MaterializedJoinView` materializes an equi-join of two base
tables into a regular :class:`~repro.db.table.Table` (with a synthetic
integer key, since join outputs need a unique primary key for the
VB-tree), and supports incremental maintenance when base rows are
inserted or deleted.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.db.executor import MergeJoin, SeqScan, _joined_schema
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import IntType
from repro.exceptions import SchemaError

__all__ = ["MaterializedJoinView"]

#: Name of the synthetic key column every materialized view gets.
VIEW_KEY = "view_id"


class MaterializedJoinView:
    """An equi-join of two tables, materialized and maintainable.

    Args:
        name: View name (registered like a table).
        left: Left base table.
        right: Right base table.
        left_column: Join column on the left table.
        right_column: Join column on the right table.

    The view's rows carry a synthetic ``view_id`` key assigned in join
    order, then the left row's columns, then the right row's columns
    (collision-renamed).  ``view_id`` gives the VB-tree built over the
    view a proper search key.
    """

    def __init__(
        self,
        name: str,
        left: Table,
        right: Table,
        left_column: str,
        right_column: str,
    ) -> None:
        left.schema.column(left_column)   # validate early
        right.schema.column(right_column)
        self.name = name
        self.left = left
        self.right = right
        self.left_column = left_column
        self.right_column = right_column
        joined = _joined_schema(left.schema, right.schema, name)
        self.schema = TableSchema(
            name=name,
            columns=(Column(VIEW_KEY, IntType()), *joined.columns),
            key=VIEW_KEY,
        )
        self._joined_schema = joined
        self._next_id = 0
        self.table = Table(self.schema)
        self.refresh()

    # ------------------------------------------------------------------
    # Full refresh
    # ------------------------------------------------------------------

    def refresh(self) -> int:
        """Recompute the view from scratch; returns the row count."""
        join = (
            MergeJoin(
                SeqScan(self.left),
                SeqScan(self.right),
                self.left_column,
                self.right_column,
            )
            if self.left_column == self.left.schema.key
            and self.right_column == self.right.schema.key
            else None
        )
        self.table = Table(self.schema)
        self._next_id = 0
        if join is not None:
            rows: Iterator[Row] = join.execute()
        else:
            from repro.db.executor import NestedLoopJoin

            rows = NestedLoopJoin(
                SeqScan(self.left),
                SeqScan(self.right),
                self.left_column,
                self.right_column,
            ).execute()
        for row in rows:
            self._append(row.values)
        return len(self.table)

    def _append(self, joined_values: tuple[Any, ...]) -> Row:
        row = Row(self.schema, (self._next_id, *joined_values))
        self.table.insert(row)
        self._next_id += 1
        return row

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def on_left_insert(self, row: Row) -> list[Row]:
        """Propagate an insert into the left base table.

        Returns:
            The view rows added.
        """
        ri = self.right.schema.column_index(self.right_column)
        li = self.left.schema.column_index(self.left_column)
        added = []
        for rrow in self.right.scan():
            if rrow.values[ri] == row.values[li]:
                added.append(self._append(row.values + rrow.values))
        return added

    def on_right_insert(self, row: Row) -> list[Row]:
        """Propagate an insert into the right base table."""
        ri = self.right.schema.column_index(self.right_column)
        li = self.left.schema.column_index(self.left_column)
        added = []
        for lrow in self.left.scan():
            if lrow.values[li] == row.values[ri]:
                added.append(self._append(lrow.values + row.values))
        return added

    def on_left_delete(self, row: Row) -> list[Row]:
        """Propagate a delete from the left base table.

        Returns:
            The view rows removed.
        """
        key_idx = self.left.schema.key_index
        # The left row's key appears at offset 1 + key_idx (after view_id).
        removed = [
            vrow
            for vrow in list(self.table.scan())
            if vrow.values[1 + key_idx] == row.values[key_idx]
        ]
        for vrow in removed:
            self.table.delete(vrow.key)
        return removed

    def on_right_delete(self, row: Row) -> list[Row]:
        """Propagate a delete from the right base table."""
        offset = 1 + len(self.left.schema.columns)
        key_idx = self.right.schema.key_index
        removed = [
            vrow
            for vrow in list(self.table.scan())
            if vrow.values[offset + key_idx] == row.values[key_idx]
        ]
        for vrow in removed:
            self.table.delete(vrow.key)
        return removed

    def __len__(self) -> int:
        return len(self.table)
