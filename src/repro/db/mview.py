"""Materialized join views.

Section 3.3 (Join): ad-hoc joins cannot be pre-authenticated, but in
edge computing "most of the database queries are not likely to be
ad-hoc, but are embedded in application programs and hence known in
advance.  It is thus possible to materialize each join operation, and
construct a VB-tree on the materialized view."

:class:`MaterializedJoinView` materializes an equi-join of two base
tables into a regular :class:`~repro.db.table.Table` (with a synthetic
integer key, since join outputs need a unique primary key for the
VB-tree), and supports incremental maintenance when base rows are
inserted or deleted.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.db.executor import MergeJoin, SeqScan, _joined_schema
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import IntType
from repro.exceptions import SchemaError

__all__ = ["MaterializedJoinView"]

#: Name of the synthetic key column every materialized view gets.
VIEW_KEY = "view_id"


class MaterializedJoinView:
    """An equi-join of two tables, materialized and maintainable.

    Args:
        name: View name (registered like a table).
        left: Left base table.
        right: Right base table.
        left_column: Join column on the left table.
        right_column: Join column on the right table.

    The view's rows carry a synthetic ``view_id`` key assigned in join
    order, then the left row's columns, then the right row's columns
    (collision-renamed).  ``view_id`` gives the VB-tree built over the
    view a proper search key.
    """

    def __init__(
        self,
        name: str,
        left: Table,
        right: Table,
        left_column: str,
        right_column: str,
    ) -> None:
        left.schema.column(left_column)   # validate early
        right.schema.column(right_column)
        self.name = name
        self.left = left
        self.right = right
        self.left_column = left_column
        self.right_column = right_column
        joined = _joined_schema(left.schema, right.schema, name)
        self.schema = TableSchema(
            name=name,
            columns=(Column(VIEW_KEY, IntType()), *joined.columns),
            key=VIEW_KEY,
        )
        self._joined_schema = joined
        self._next_id = 0
        self.table = Table(self.schema)
        self.refresh()

    # ------------------------------------------------------------------
    # Full refresh
    # ------------------------------------------------------------------

    def refresh(self) -> int:
        """Recompute the view from scratch; returns the row count."""
        join = (
            MergeJoin(
                SeqScan(self.left),
                SeqScan(self.right),
                self.left_column,
                self.right_column,
            )
            if self.left_column == self.left.schema.key
            and self.right_column == self.right.schema.key
            else None
        )
        self.table = Table(self.schema)
        self._next_id = 0
        if join is not None:
            rows: Iterator[Row] = join.execute()
        else:
            from repro.db.executor import NestedLoopJoin

            rows = NestedLoopJoin(
                SeqScan(self.left),
                SeqScan(self.right),
                self.left_column,
                self.right_column,
            ).execute()
        for row in rows:
            self._append(row.values)
        return len(self.table)

    def _append(self, joined_values: tuple[Any, ...]) -> Row:
        row = Row(self.schema, (self._next_id, *joined_values))
        self.table.insert(row)
        self._next_id += 1
        return row

    # ------------------------------------------------------------------
    # Incremental maintenance
    #
    # Each side is split into a *peek* (pure: what rows would the base
    # change add/remove, and under which keys) and the mutation proper,
    # so the central server can acquire every lock the maintenance will
    # need before touching any table — a denied lock must leave the
    # whole multi-tree transaction untouched.
    # ------------------------------------------------------------------

    def peek_left_insert(self, row: Row) -> list[tuple[Any, ...]]:
        """Joined value tuples an insert into the left table would add
        (without ``view_id``), in materialization order."""
        ri = self.right.schema.column_index(self.right_column)
        li = self.left.schema.column_index(self.left_column)
        return [
            row.values + rrow.values
            for rrow in self.right.scan()
            if rrow.values[ri] == row.values[li]
        ]

    def peek_right_insert(self, row: Row) -> list[tuple[Any, ...]]:
        """Joined value tuples an insert into the right table would add."""
        ri = self.right.schema.column_index(self.right_column)
        li = self.left.schema.column_index(self.left_column)
        return [
            lrow.values + row.values
            for lrow in self.left.scan()
            if lrow.values[li] == row.values[ri]
        ]

    def next_keys(self, count: int) -> list[int]:
        """The ``view_id`` keys the next ``count`` materialized rows
        will receive (ids are assigned sequentially)."""
        return list(range(self._next_id, self._next_id + count))

    def materialize(self, joined_values: tuple[Any, ...]) -> Row:
        """Append one peeked join row to the view table.

        Returns:
            The stored view row (with its assigned ``view_id``).
        """
        return self._append(joined_values)

    def peek_left_delete(self, row: Row) -> list[Row]:
        """View rows a delete from the left table would remove."""
        key_idx = self.left.schema.key_index
        # The left row's key appears at offset 1 + key_idx (after view_id).
        return [
            vrow
            for vrow in list(self.table.scan())
            if vrow.values[1 + key_idx] == row.values[key_idx]
        ]

    def peek_right_delete(self, row: Row) -> list[Row]:
        """View rows a delete from the right table would remove."""
        offset = 1 + len(self.left.schema.columns)
        key_idx = self.right.schema.key_index
        return [
            vrow
            for vrow in list(self.table.scan())
            if vrow.values[offset + key_idx] == row.values[key_idx]
        ]

    def drop_rows(self, rows: list[Row]) -> None:
        """Remove peeked view rows from the view table."""
        for vrow in rows:
            self.table.delete(vrow.key)

    def on_left_insert(self, row: Row) -> list[Row]:
        """Propagate an insert into the left base table.

        Returns:
            The view rows added.
        """
        return [self._append(v) for v in self.peek_left_insert(row)]

    def on_right_insert(self, row: Row) -> list[Row]:
        """Propagate an insert into the right base table."""
        return [self._append(v) for v in self.peek_right_insert(row)]

    def on_left_delete(self, row: Row) -> list[Row]:
        """Propagate a delete from the left base table.

        Returns:
            The view rows removed.
        """
        removed = self.peek_left_delete(row)
        self.drop_rows(removed)
        return removed

    def on_right_delete(self, row: Row) -> list[Row]:
        """Propagate a delete from the right base table."""
        removed = self.peek_right_delete(row)
        self.drop_rows(removed)
        return removed

    def __len__(self) -> int:
        return len(self.table)
