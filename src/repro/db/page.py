"""Page geometry: how block, key, pointer and digest widths determine
index fan-out (formulas 6-7 of the paper; Figures 8-9).

A B+-tree internal node with fan-out ``f`` stores ``f`` child pointers
and ``f - 1`` separator keys.  Packing that into a block of ``|B|``
bytes gives::

    (f - 1)·|K| + f·|P| <= |B|        =>   f_B  = ⌊(|B| + |K|) / (|K| + |P|)⌋

The VB-tree additionally stores one signed digest per child::

    (f - 1)·|K| + f·(|P| + |D|) <= |B| =>  f_VB = ⌊(|B| + |K|) / (|K| + |P| + |D|)⌋

Leaves store one entry per tuple — key + tuple pointer (+ tuple digest
for the VB-tree).  Heights follow by repeatedly dividing the tuple count
by the leaf capacity and then the fan-out, which is the closed form the
paper writes as ``H = ⌈log_f (N_r / L)⌉ + 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import constants
from repro.exceptions import PageGeometryError

__all__ = ["PageGeometry"]


@dataclass(frozen=True)
class PageGeometry:
    """Widths (bytes) that determine node capacities.

    Attributes:
        block_size: ``|B|`` — node size.
        key_len: ``|K|`` — search-key width.
        pointer_len: ``|P|`` — child/tuple pointer width.
        digest_len: ``|D|`` — signed digest width (0 for a plain B-tree).
    """

    block_size: int = constants.BLOCK_SIZE
    key_len: int = constants.KEY_LEN
    pointer_len: int = constants.POINTER_LEN
    digest_len: int = constants.DIGEST_LEN

    def __post_init__(self) -> None:
        if min(self.block_size, self.key_len, self.pointer_len) <= 0:
            raise PageGeometryError("block, key and pointer widths must be positive")
        if self.digest_len < 0:
            raise PageGeometryError("digest width cannot be negative")
        if self.internal_fanout() < 2:
            raise PageGeometryError(
                "geometry does not admit fan-out >= 2: "
                f"|B|={self.block_size}, |K|={self.key_len}, "
                f"|P|={self.pointer_len}, |D|={self.digest_len}"
            )

    # ------------------------------------------------------------------
    # Fan-out (formula 6 and its B-tree counterpart)
    # ------------------------------------------------------------------

    def internal_fanout(self) -> int:
        """Maximum number of children of an internal node."""
        per_child = self.key_len + self.pointer_len + self.digest_len
        return (self.block_size + self.key_len) // per_child

    def leaf_capacity(self) -> int:
        """Maximum number of tuple entries in a leaf node."""
        per_entry = self.key_len + self.pointer_len + self.digest_len
        return max(1, self.block_size // per_entry)

    def node_overhead_bytes(self) -> int:
        """Extra bytes per node relative to the digest-free geometry
        (the paper's ``f·|D|`` space overhead per node)."""
        return self.internal_fanout() * self.digest_len

    # ------------------------------------------------------------------
    # Heights (formulas 7-8)
    # ------------------------------------------------------------------

    def height_for(self, num_rows: int) -> int:
        """Height (levels, leaves included) of a fully packed tree.

        A single leaf has height 1; each internal level multiplies
        capacity by the fan-out.
        """
        if num_rows < 0:
            raise PageGeometryError("row count cannot be negative")
        if num_rows == 0:
            return 1
        leaves = math.ceil(num_rows / self.leaf_capacity())
        height = 1
        while leaves > 1:
            leaves = math.ceil(leaves / self.internal_fanout())
            height += 1
        return height

    def envelope_height_for(self, result_rows: int) -> int:
        """Height of the enveloping subtree for ``result_rows``
        contiguous tuples in a fully packed tree (formula 8)."""
        if result_rows <= 0:
            return 0
        return self.height_for(result_rows)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    def without_digests(self) -> "PageGeometry":
        """The plain-B-tree geometry with the same |B|, |K|, |P|."""
        return PageGeometry(
            block_size=self.block_size,
            key_len=self.key_len,
            pointer_len=self.pointer_len,
            digest_len=0,
        )

    @classmethod
    def btree_default(cls) -> "PageGeometry":
        """Paper-default geometry for the plain B-tree (no digests)."""
        return cls(digest_len=0)

    @classmethod
    def vbtree_default(cls) -> "PageGeometry":
        """Paper-default geometry for the VB-tree (16-byte digests)."""
        return cls()
