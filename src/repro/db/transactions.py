"""Transactions with strict two-phase locking.

The paper channels all updates through the central DBMS and relies on
"a distributed concurrency control mechanism like basic 2PL [3], with
the central server hosting the master copy".  :class:`Transaction`
enforces the 2PL discipline over a shared
:class:`~repro.db.locks.LockManager`: locks accumulate during the
growing phase and are released only at commit/abort (strict 2PL, so
there is no shrink-phase re-acquisition to police).

The VB-tree update code (:mod:`repro.core.update`) locks *digest*
resources through these transactions exactly as Section 3.4 describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Hashable

from repro.db.locks import LockManager, LockMode
from repro.exceptions import TransactionError

__all__ = ["TxnStatus", "Transaction", "TransactionManager"]


class TxnStatus(Enum):
    """Transaction lifecycle states."""

    ACTIVE = "active"
    BLOCKED = "blocked"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One transaction; create via :class:`TransactionManager.begin`."""

    txn_id: int
    manager: "TransactionManager"
    status: TxnStatus = TxnStatus.ACTIVE
    _undo_log: list[Callable[[], None]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    def lock_shared(self, resource: Hashable) -> bool:
        """S-lock ``resource``; returns False if the txn must wait."""
        return self._lock(resource, LockMode.SHARED)

    def lock_exclusive(self, resource: Hashable) -> bool:
        """X-lock ``resource``; returns False if the txn must wait."""
        return self._lock(resource, LockMode.EXCLUSIVE)

    def _lock(self, resource: Hashable, mode: LockMode) -> bool:
        if self.status is TxnStatus.COMMITTED or self.status is TxnStatus.ABORTED:
            raise TransactionError(f"txn {self.txn_id} is finished")
        granted = self.manager.locks.acquire(self.txn_id, resource, mode)
        if not granted:
            self.status = TxnStatus.BLOCKED
        return granted

    def holds(self, resource: Hashable) -> LockMode | None:
        """Mode held on ``resource`` (None if unlocked)."""
        return self.manager.locks.mode_held(self.txn_id, resource)

    # ------------------------------------------------------------------
    # Undo log (used by digest updates so aborts restore old digests)
    # ------------------------------------------------------------------

    def on_abort(self, undo: Callable[[], None]) -> None:
        """Register an undo action, run in reverse order on abort."""
        if self.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            raise TransactionError(f"txn {self.txn_id} is finished")
        self._undo_log.append(undo)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------

    def commit(self) -> list[Hashable]:
        """Commit: release all locks (strict 2PL shrink).

        Returns:
            Transactions unblocked by the released locks.
        """
        if self.status is TxnStatus.ABORTED:
            raise TransactionError(f"txn {self.txn_id} already aborted")
        if self.status is TxnStatus.COMMITTED:
            raise TransactionError(f"txn {self.txn_id} already committed")
        self.status = TxnStatus.COMMITTED
        self._undo_log.clear()
        return self.manager._finish(self)

    def abort(self) -> list[Hashable]:
        """Abort: run undo actions (newest first), release all locks."""
        if self.status is TxnStatus.COMMITTED:
            raise TransactionError(f"txn {self.txn_id} already committed")
        if self.status is TxnStatus.ABORTED:
            raise TransactionError(f"txn {self.txn_id} already aborted")
        for undo in reversed(self._undo_log):
            undo()
        self._undo_log.clear()
        self.status = TxnStatus.ABORTED
        return self.manager._finish(self)


class TransactionManager:
    """Creates transactions over a shared lock manager."""

    def __init__(self, locks: LockManager | None = None) -> None:
        self.locks = locks or LockManager()
        self._ids = itertools.count(1)
        self._active: dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        """Start a new transaction."""
        txn = Transaction(txn_id=next(self._ids), manager=self)
        self._active[txn.txn_id] = txn
        return txn

    def active_count(self) -> int:
        """Number of unfinished transactions."""
        return len(self._active)

    def get(self, txn_id: int) -> Transaction:
        """Look up an active transaction.

        Raises:
            TransactionError: If unknown or finished.
        """
        try:
            return self._active[txn_id]
        except KeyError:
            raise TransactionError(f"no active txn {txn_id}") from None

    def _finish(self, txn: Transaction) -> list[Hashable]:
        """Internal: release locks, wake waiters, unregister."""
        woken = self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)
        for txn_id in woken:
            waiting = self._active.get(txn_id)
            if waiting is not None and waiting.status is TxnStatus.BLOCKED:
                waiting.status = TxnStatus.ACTIVE
        return woken
