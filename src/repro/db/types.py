"""Column type system for the mini-DBMS substrate.

Each :class:`ColumnType` knows how to validate Python values, how wide
the value is on disk (for the page-geometry model that drives B-tree
fan-out, Section 4.1 of the paper), and how to order keys.

Supported types mirror what the paper's cost model needs: fixed-width
integers/floats, fixed-cap strings (``VARCHAR(n)``), and BLOBs (the
paper calls out BLOB projection as a motivating case for edge-side
projection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import SchemaError, TypeMismatchError

__all__ = [
    "ColumnType",
    "IntType",
    "FloatType",
    "VarcharType",
    "BlobType",
    "BoolType",
    "type_from_name",
]


@dataclass(frozen=True)
class ColumnType:
    """Base class for column types.

    Attributes:
        name: SQL-ish type name used by the catalog and the SQL parser.
    """

    name: str = "ANY"

    def validate(self, value: Any) -> Any:
        """Check (and normalize) ``value``; raise on type mismatch.

        Returns:
            The normalized value to store.

        Raises:
            TypeMismatchError: If the value does not conform.
        """
        return value

    def byte_width(self, value: Any = None) -> int:
        """On-disk width in bytes.

        For fixed-width types the argument is ignored; variable types
        report their declared capacity when ``value is None`` and the
        actual encoded length otherwise.
        """
        raise NotImplementedError

    @property
    def fixed_width(self) -> bool:
        """True if every value of this type occupies the same space."""
        return True

    @property
    def orderable(self) -> bool:
        """True if the type supports range predicates / B-tree keys."""
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntType(ColumnType):
    """64-bit signed integer."""

    name: str = "INT"
    width: int = 8

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"expected int, got {value!r}")
        if not -(2**63) <= value < 2**63:
            raise TypeMismatchError(f"int out of 64-bit range: {value}")
        return value

    def byte_width(self, value: Any = None) -> int:
        return self.width


@dataclass(frozen=True)
class FloatType(ColumnType):
    """IEEE-754 double."""

    name: str = "FLOAT"

    def validate(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"expected float, got {value!r}")
        return float(value)

    def byte_width(self, value: Any = None) -> int:
        return 8


@dataclass(frozen=True)
class BoolType(ColumnType):
    """Single-byte boolean."""

    name: str = "BOOL"

    def validate(self, value: Any) -> bool:
        if not isinstance(value, bool):
            raise TypeMismatchError(f"expected bool, got {value!r}")
        return value

    def byte_width(self, value: Any = None) -> int:
        return 1


@dataclass(frozen=True)
class VarcharType(ColumnType):
    """UTF-8 string with a declared capacity, stored fixed-width.

    Storing at capacity keeps the page-geometry model simple (the paper
    assumes fixed tuple sizes throughout Section 4).
    """

    name: str = "VARCHAR"
    capacity: int = 255

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SchemaError(f"VARCHAR capacity must be positive: {self.capacity}")

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise TypeMismatchError(f"expected str, got {value!r}")
        if len(value.encode("utf-8")) > self.capacity:
            raise TypeMismatchError(
                f"string longer than VARCHAR({self.capacity}): {len(value)} chars"
            )
        return value

    def byte_width(self, value: Any = None) -> int:
        return self.capacity

    def __str__(self) -> str:
        return f"VARCHAR({self.capacity})"


@dataclass(frozen=True)
class BlobType(ColumnType):
    """Binary large object with a declared capacity.

    Not orderable — BLOB columns cannot be B-tree keys, matching the
    paper's treatment of BLOBs as payload to be projected away.
    """

    name: str = "BLOB"
    capacity: int = 4096

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SchemaError(f"BLOB capacity must be positive: {self.capacity}")

    def validate(self, value: Any) -> bytes:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeMismatchError(f"expected bytes, got {value!r}")
        data = bytes(value)
        if len(data) > self.capacity:
            raise TypeMismatchError(
                f"blob longer than BLOB({self.capacity}): {len(data)} bytes"
            )
        return data

    def byte_width(self, value: Any = None) -> int:
        return self.capacity

    @property
    def orderable(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"BLOB({self.capacity})"


def type_from_name(name: str, capacity: int | None = None) -> ColumnType:
    """Instantiate a column type by SQL name.

    Args:
        name: ``INT``, ``FLOAT``, ``BOOL``, ``VARCHAR`` or ``BLOB``
            (case-insensitive).
        capacity: Capacity for VARCHAR/BLOB (defaults apply otherwise).

    Raises:
        SchemaError: For unknown type names.
    """
    upper = name.upper()
    if upper in ("INT", "INTEGER", "BIGINT"):
        return IntType()
    if upper in ("FLOAT", "DOUBLE", "REAL"):
        return FloatType()
    if upper in ("BOOL", "BOOLEAN"):
        return BoolType()
    if upper == "VARCHAR":
        return VarcharType(capacity=capacity or 255)
    if upper == "BLOB":
        return BlobType(capacity=capacity or 4096)
    raise SchemaError(f"unknown column type {name!r}")
