"""Lock manager: shared/exclusive locks, upgrades, deadlock detection.

Section 3.4 of the paper prescribes a locking protocol over VB-tree
*digests*: inserts X-lock each digest on the root-to-leaf path "in turn
only as it is being modified"; deletes X-lock the whole path; queries
S-lock the digests of their enveloping subtree.  Concurrency control
across servers is "basic 2PL [3], with the central server hosting the
master copy".

This lock manager supports that protocol for a *simulated* set of
transactions (the simulation interleaves operations deterministically
rather than using OS threads):

* lock modes S and X with the standard compatibility matrix;
* S→X upgrades;
* FIFO wait queues;
* waits-for graph with cycle detection — a request that would close a
  cycle raises :class:`~repro.exceptions.DeadlockError` so the caller
  can abort the victim.

Resources are arbitrary hashable names; the VB-tree layer uses
``("digest", tree_name, node_id)`` tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Hashable, Iterable

from repro.exceptions import DeadlockError, LockError

__all__ = ["LockMode", "LockManager", "LockRequest"]


class LockMode(Enum):
    """Lock modes with the usual S/X compatibility."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        """S is compatible with S; everything else conflicts."""
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class LockRequest:
    """A queued lock request."""

    txn: Hashable
    mode: LockMode


@dataclass
class _ResourceState:
    """Grant table entry for one resource."""

    granted: dict[Hashable, LockMode] = field(default_factory=dict)
    queue: list[LockRequest] = field(default_factory=list)


class LockManager:
    """Deterministic lock manager for the simulation.

    ``acquire`` either grants immediately (returns True), queues the
    request (returns False — the transaction must wait until a later
    ``release`` grants it), or raises :class:`DeadlockError` when
    waiting would create a cycle in the waits-for graph.
    """

    def __init__(self) -> None:
        self._resources: dict[Hashable, _ResourceState] = {}
        self._held: dict[Hashable, set[Hashable]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def holders(self, resource: Hashable) -> dict[Hashable, LockMode]:
        """Current granted locks on ``resource``."""
        state = self._resources.get(resource)
        return dict(state.granted) if state else {}

    def held_by(self, txn: Hashable) -> set[Hashable]:
        """Resources on which ``txn`` currently holds locks."""
        return set(self._held.get(txn, ()))

    def mode_held(self, txn: Hashable, resource: Hashable) -> LockMode | None:
        """Lock mode ``txn`` holds on ``resource``, if any."""
        state = self._resources.get(resource)
        if state is None:
            return None
        return state.granted.get(txn)

    def is_waiting(self, txn: Hashable) -> bool:
        """True if ``txn`` has a queued (ungranted) request."""
        return any(
            any(req.txn == txn for req in state.queue)
            for state in self._resources.values()
        )

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------

    def acquire(
        self, txn: Hashable, resource: Hashable, mode: LockMode
    ) -> bool:
        """Request ``mode`` on ``resource`` for ``txn``.

        Returns:
            True if granted immediately; False if queued.

        Raises:
            DeadlockError: If queueing the request would deadlock.
            LockError: On a nonsensical request (e.g. downgrade attempt
                while others wait is fine; re-request of held mode is a
                no-op returning True).
        """
        state = self._resources.setdefault(resource, _ResourceState())
        current = state.granted.get(txn)

        if current is not None:
            if current is mode or current is LockMode.EXCLUSIVE:
                return True  # already strong enough
            # S -> X upgrade: needs every *other* holder gone.
            others = [t for t in state.granted if t != txn]
            if not others:
                state.granted[txn] = LockMode.EXCLUSIVE
                return True
            self._check_deadlock(txn, others)
            state.queue.insert(0, LockRequest(txn, LockMode.EXCLUSIVE))
            return False

        blockers = [
            t
            for t, m in state.granted.items()
            if not mode.compatible_with(m)
        ]
        # FIFO fairness: an incompatible queue head also blocks new grants.
        if not blockers and state.queue:
            head = state.queue[0]
            if not mode.compatible_with(head.mode) or not state.granted:
                blockers = [head.txn]
        if not blockers:
            state.granted[txn] = mode
            self._held.setdefault(txn, set()).add(resource)
            return True
        self._check_deadlock(txn, blockers)
        state.queue.append(LockRequest(txn, mode))
        return False

    def release(self, txn: Hashable, resource: Hashable) -> list[Hashable]:
        """Release ``txn``'s lock on ``resource``.

        Returns:
            Transactions whose queued requests became granted.

        Raises:
            LockError: If ``txn`` holds no lock on ``resource``.
        """
        state = self._resources.get(resource)
        if state is None or txn not in state.granted:
            raise LockError(f"{txn!r} holds no lock on {resource!r}")
        del state.granted[txn]
        held = self._held.get(txn)
        if held:
            held.discard(resource)
        granted = self._drain_queue(resource, state)
        if not state.granted and not state.queue:
            del self._resources[resource]
        return granted

    def release_all(self, txn: Hashable) -> list[Hashable]:
        """Release every lock ``txn`` holds (2PL shrink phase) and drop
        any queued requests it still has pending.

        Returns:
            Transactions granted as a result.
        """
        woken: list[Hashable] = []
        for resource in list(self._held.get(txn, ())):
            woken.extend(self.release(txn, resource))
        self._held.pop(txn, None)
        for resource, state in list(self._resources.items()):
            state.queue = [r for r in state.queue if r.txn != txn]
            woken.extend(self._drain_queue(resource, state))
            if not state.granted and not state.queue:
                del self._resources[resource]
        return woken

    def _drain_queue(
        self, resource: Hashable, state: _ResourceState
    ) -> list[Hashable]:
        """Grant as many queued requests as compatibility allows (FIFO)."""
        granted: list[Hashable] = []
        while state.queue:
            head = state.queue[0]
            current = state.granted.get(head.txn)
            if current is not None and head.mode is LockMode.EXCLUSIVE:
                # Pending upgrade: grantable only when alone.
                others = [t for t in state.granted if t != head.txn]
                if others:
                    break
                state.granted[head.txn] = LockMode.EXCLUSIVE
                state.queue.pop(0)
                granted.append(head.txn)
                continue
            conflict = any(
                not head.mode.compatible_with(m)
                for t, m in state.granted.items()
                if t != head.txn
            )
            if conflict:
                break
            state.granted[head.txn] = head.mode
            self._held.setdefault(head.txn, set()).add(resource)
            state.queue.pop(0)
            granted.append(head.txn)
        return granted

    # ------------------------------------------------------------------
    # Deadlock detection
    # ------------------------------------------------------------------

    def _waits_for_edges(self) -> dict[Hashable, set[Hashable]]:
        """Current waits-for graph: waiter -> set of holders."""
        edges: dict[Hashable, set[Hashable]] = {}
        for state in self._resources.values():
            for req in state.queue:
                blockers = {
                    t
                    for t, m in state.granted.items()
                    if t != req.txn and not req.mode.compatible_with(m)
                }
                if blockers:
                    edges.setdefault(req.txn, set()).update(blockers)
        return edges

    def _check_deadlock(
        self, txn: Hashable, new_blockers: Iterable[Hashable]
    ) -> None:
        """Raise if adding ``txn -> new_blockers`` closes a cycle."""
        edges = self._waits_for_edges()
        edges.setdefault(txn, set()).update(new_blockers)
        # DFS from txn looking for a path back to txn.
        stack = list(edges.get(txn, ()))
        seen: set[Hashable] = set()
        while stack:
            node = stack.pop()
            if node == txn:
                raise DeadlockError(
                    f"granting this lock to {txn!r} would deadlock"
                )
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
