"""A B+-tree with page-geometry-derived capacities.

This is the index substrate under both the plain tables and the
VB-tree.  Design points that matter for the reproduction:

* **Capacities come from page geometry** — fan-out and leaf capacity are
  computed from ``|B|, |K|, |P|, |D|`` exactly as in Section 4.1, so a
  tree built with digests (``|D| > 0``) really is shorter/fatter or
  taller/thinner in the way Figures 8-9 analyse.
* **Lazy deletes** — following the paper's citation of Johnson & Shasha
  [9], nodes are only removed when they become completely empty; there
  is no half-full merging.  This matches "real database systems usually
  do not require their B-tree nodes to actually contain at least half
  the entries".
* **Parent pointers + node ids** — the VB-tree layer needs root-to-leaf
  paths (to maintain digests) and stable node identities (to address
  digests in verification objects), so nodes carry both.
* **Mutation traces** — every ``insert``/``delete`` records which nodes
  were modified, created or freed.  The VB-tree uses the trace to decide
  between the paper's cheap *fold* update (no structural change) and a
  digest *recompute* (splits/merges).
* **Logical I/O accounting** — every node touched during descent or leaf
  traversal bumps a counter, backing the "I/O savings at the edge
  servers" discussion.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.db.page import PageGeometry
from repro.exceptions import DatabaseError, DuplicateKeyError, KeyNotFoundError

__all__ = ["BPlusTree", "LeafNode", "InternalNode", "MutationTrace"]


class _Node:
    """Common node state: identity, parent link, sorted keys."""

    __slots__ = ("node_id", "parent", "keys")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.parent: Optional[InternalNode] = None
        self.keys: list[Any] = []

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError


class LeafNode(_Node):
    """Leaf: ``keys[i]`` maps to ``values[i]``; leaves form a doubly
    linked list for range scans."""

    __slots__ = ("values", "next_leaf", "prev_leaf")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.values: list[Any] = []
        self.next_leaf: Optional[LeafNode] = None
        self.prev_leaf: Optional[LeafNode] = None

    @property
    def is_leaf(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Leaf#{self.node_id}({self.keys})"


class InternalNode(_Node):
    """Internal node: ``len(children) == len(keys) + 1``; ``keys[i]`` is
    the smallest key reachable under ``children[i + 1]``."""

    __slots__ = ("children",)

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def child_index(self, child: _Node) -> int:
        """Position of ``child`` among this node's children.

        Raises:
            DatabaseError: If ``child`` is not actually a child.
        """
        for i, c in enumerate(self.children):
            if c is child:
                return i
        raise DatabaseError("node is not a child of its recorded parent")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Internal#{self.node_id}({self.keys})"


@dataclass
class MutationTrace:
    """What one insert/delete touched — consumed by the VB-tree layer.

    Attributes:
        path: Root-to-leaf list of nodes visited by the operation.
        modified: Nodes whose entry lists changed.
        created: Nodes created by splits.
        freed: Nodes removed (empty after a lazy delete).
        split: True if any split occurred (digest fold is insufficient).
    """

    path: list[_Node] = field(default_factory=list)
    modified: list[_Node] = field(default_factory=list)
    created: list[_Node] = field(default_factory=list)
    freed: list[_Node] = field(default_factory=list)
    split: bool = False


class BPlusTree:
    """B+-tree keyed by any totally ordered type.

    Args:
        geometry: Page geometry that fixes node capacities.  ``digest_len``
            participates so VB-tree instances get the reduced fan-out of
            formula (6).
        min_fanout_override: For tests — force a small fan-out regardless
            of geometry (kept >= 3) so split/merge paths are exercised
            without megabyte datasets.
    """

    def __init__(
        self,
        geometry: PageGeometry | None = None,
        min_fanout_override: int | None = None,
    ) -> None:
        self.geometry = geometry or PageGeometry.btree_default()
        if min_fanout_override is not None:
            if min_fanout_override < 3:
                raise DatabaseError("fan-out override must be >= 3")
            self.max_children = min_fanout_override
            self.leaf_capacity = min_fanout_override
        else:
            self.max_children = self.geometry.internal_fanout()
            self.leaf_capacity = self.geometry.leaf_capacity()
        self._next_node_id = 0
        self._size = 0
        self.io_reads = 0
        self._root: _Node = self._new_leaf()

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------

    def _new_leaf(self) -> LeafNode:
        node = LeafNode(self._next_node_id)
        self._next_node_id += 1
        return node

    def _new_internal(self) -> InternalNode:
        node = InternalNode(self._next_node_id)
        self._next_node_id += 1
        return node

    def _touch(self, node: _Node) -> None:
        self.io_reads += 1

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------

    @property
    def root(self) -> _Node:
        """The current root node."""
        return self._root

    def __len__(self) -> int:
        return self._size

    def height(self) -> int:
        """Number of levels, counting the leaf level as 1."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            h += 1
        return h

    def node_count(self) -> int:
        """Total number of live nodes."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[attr-defined]
        return count

    def find_leaf(self, key: Any) -> LeafNode:
        """Descend to the leaf that would contain ``key`` (counts I/O)."""
        node = self._root
        self._touch(node)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]  # type: ignore[attr-defined]
            self._touch(node)
        return node  # type: ignore[return-value]

    def get(self, key: Any) -> Any:
        """Point lookup.

        Raises:
            KeyNotFoundError: If the key is absent.
        """
        leaf = self.find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        raise KeyNotFoundError(f"key not found: {key!r}")

    def __contains__(self, key: Any) -> bool:
        try:
            self.get(key)
        except KeyNotFoundError:
            return False
        return True

    def first_leaf(self) -> LeafNode:
        """Leftmost leaf."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        leaf: Optional[LeafNode] = self.first_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values, strict=True)
            leaf = leaf.next_leaf

    def range_items(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """(key, value) pairs with ``low <= key <= high`` (bounds optional,
        inclusivity configurable).  Counts leaf I/O."""
        if low is None:
            leaf: Optional[LeafNode] = self.first_leaf()
            idx = 0
            self._touch(leaf)
        else:
            leaf = self.find_leaf(low)
            idx = (
                bisect.bisect_left(leaf.keys, low)
                if low_inclusive
                else bisect.bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if high_inclusive and key > high:
                        return
                    if not high_inclusive and key >= high:
                        return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf)
            idx = 0

    def path_to(self, node: _Node) -> list[_Node]:
        """Root-to-``node`` path via parent pointers."""
        path = [node]
        while path[-1].parent is not None:
            path.append(path[-1].parent)
        path.reverse()
        if path[0] is not self._root:
            raise DatabaseError("node is not attached to this tree")
        return path

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any, overwrite: bool = False) -> MutationTrace:
        """Insert ``key -> value``.

        Args:
            overwrite: Replace the value if the key exists (otherwise a
                duplicate raises).

        Returns:
            A :class:`MutationTrace` describing touched nodes.

        Raises:
            DuplicateKeyError: On duplicate key with ``overwrite=False``.
        """
        trace = MutationTrace()
        leaf = self.find_leaf(key)
        trace.path = self.path_to(leaf)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if not overwrite:
                raise DuplicateKeyError(f"duplicate key: {key!r}")
            leaf.values[idx] = value
            trace.modified.append(leaf)
            return trace
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._size += 1
        trace.modified.append(leaf)
        if len(leaf.keys) > self.leaf_capacity:
            self._split_leaf(leaf, trace)
        return trace

    def _split_leaf(self, leaf: LeafNode, trace: MutationTrace) -> None:
        trace.split = True
        mid = len(leaf.keys) // 2
        right = self._new_leaf()
        trace.created.append(right)
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next_leaf = leaf.next_leaf
        if right.next_leaf is not None:
            right.next_leaf.prev_leaf = right
        leaf.next_leaf = right
        right.prev_leaf = leaf
        self._insert_into_parent(leaf, right.keys[0], right, trace)

    def _insert_into_parent(
        self, left: _Node, sep_key: Any, right: _Node, trace: MutationTrace
    ) -> None:
        parent = left.parent
        if parent is None:
            new_root = self._new_internal()
            trace.created.append(new_root)
            new_root.keys = [sep_key]
            new_root.children = [left, right]
            left.parent = new_root
            right.parent = new_root
            self._root = new_root
            return
        idx = parent.child_index(left)
        parent.keys.insert(idx, sep_key)
        parent.children.insert(idx + 1, right)
        right.parent = parent
        trace.modified.append(parent)
        if len(parent.children) > self.max_children:
            self._split_internal(parent, trace)

    def _split_internal(self, node: InternalNode, trace: MutationTrace) -> None:
        trace.split = True
        mid = len(node.keys) // 2
        promoted = node.keys[mid]
        right = self._new_internal()
        trace.created.append(right)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        for child in right.children:
            child.parent = right
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._insert_into_parent(node, promoted, right, trace)

    # ------------------------------------------------------------------
    # Delete (lazy: remove nodes only when empty)
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> MutationTrace:
        """Delete ``key``.

        Returns:
            A :class:`MutationTrace`; ``freed`` lists nodes removed
            because they became empty.

        Raises:
            KeyNotFoundError: If the key is absent.
        """
        trace = MutationTrace()
        leaf = self.find_leaf(key)
        trace.path = self.path_to(leaf)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(f"key not found: {key!r}")
        leaf.keys.pop(idx)
        leaf.values.pop(idx)
        self._size -= 1
        trace.modified.append(leaf)
        if not leaf.keys:
            self._remove_empty(leaf, trace)
            self._collapse_root(trace)
        return trace

    def _collapse_root(self, trace: MutationTrace) -> None:
        """Shrink the tree while the root is an internal node with a
        single child (can cascade after lazy deletes)."""
        while not self._root.is_leaf and len(self._root.children) == 1:  # type: ignore[attr-defined]
            old = self._root
            only = old.children[0]  # type: ignore[attr-defined]
            only.parent = None
            self._root = only
            trace.freed.append(old)

    def _remove_empty(self, node: _Node, trace: MutationTrace) -> None:
        """Unlink an empty node, cascading upward (lazy delete)."""
        parent = node.parent
        if parent is None:
            # Empty root: collapse to a single empty leaf if internal.
            if not node.is_leaf:
                raise DatabaseError("internal root cannot be empty here")
            return  # an empty leaf root is the legitimate empty tree
        if node.is_leaf:
            leaf = node  # type: ignore[assignment]
            if leaf.prev_leaf is not None:
                leaf.prev_leaf.next_leaf = leaf.next_leaf
            if leaf.next_leaf is not None:
                leaf.next_leaf.prev_leaf = leaf.prev_leaf
        trace.freed.append(node)
        trace.split = True  # structural change: digest folds insufficient
        idx = parent.child_index(node)
        parent.children.pop(idx)
        if parent.keys:
            parent.keys.pop(max(0, idx - 1))
        node.parent = None
        trace.modified.append(parent)
        if not parent.children:
            self._remove_empty(parent, trace)

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by the test-suite)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`DatabaseError`.

        Invariants: sorted keys everywhere, children/keys arity, parent
        pointers consistent, all leaves at equal depth, leaf chain
        complete and ordered, capacities respected, separator keys
        bound the subtrees they separate.
        """
        leaves: list[LeafNode] = []

        def recurse(node: _Node, depth: int, low: Any, high: Any) -> int:
            if sorted(node.keys) != node.keys:
                raise DatabaseError(f"unsorted keys in node {node.node_id}")
            for k in node.keys:
                if low is not None and k < low:
                    raise DatabaseError(f"key below separator in {node.node_id}")
                if high is not None and k >= high:
                    raise DatabaseError(f"key above separator in {node.node_id}")
            if node.is_leaf:
                if len(node.keys) > self.leaf_capacity:
                    raise DatabaseError(f"overfull leaf {node.node_id}")
                leaves.append(node)  # type: ignore[arg-type]
                return depth
            internal = node  # type: ignore[assignment]
            if len(internal.children) != len(internal.keys) + 1:
                raise DatabaseError(f"arity mismatch in node {node.node_id}")
            if len(internal.children) > self.max_children:
                raise DatabaseError(f"overfull internal {node.node_id}")
            depths = set()
            bounds = [low, *internal.keys, high]
            for i, child in enumerate(internal.children):
                if child.parent is not internal:
                    raise DatabaseError(
                        f"bad parent pointer under node {node.node_id}"
                    )
                depths.add(recurse(child, depth + 1, bounds[i], bounds[i + 1]))
            if len(depths) != 1:
                raise DatabaseError("leaves at unequal depths")
            return depths.pop()

        recurse(self._root, 1, None, None)

        # Leaf chain must visit exactly the leaves, in key order.
        chain = []
        leaf: Optional[LeafNode] = self.first_leaf()
        while leaf is not None:
            chain.append(leaf)
            leaf = leaf.next_leaf
        if {id(l) for l in chain} != {id(l) for l in leaves}:
            raise DatabaseError("leaf chain does not match tree leaves")
        all_keys = [k for l in chain for k in l.keys]
        if sorted(all_keys) != all_keys:
            raise DatabaseError("leaf chain out of order")
        if len(all_keys) != self._size:
            raise DatabaseError(
                f"size mismatch: counted {len(all_keys)}, recorded {self._size}"
            )

    # ------------------------------------------------------------------
    # Traversal helpers for the VB-tree layer
    # ------------------------------------------------------------------

    def walk_nodes(self) -> Iterator[_Node]:
        """Every node, parents before children (pre-order)."""
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(reversed(node.children))  # type: ignore[attr-defined]

    def leaves(self) -> Iterator[LeafNode]:
        """All leaves left-to-right."""
        leaf: Optional[LeafNode] = self.first_leaf()
        while leaf is not None:
            yield leaf
            leaf = leaf.next_leaf

    def reset_io(self) -> None:
        """Zero the logical I/O counter."""
        self.io_reads = 0

    # ------------------------------------------------------------------
    # Cloning (replica distribution)
    # ------------------------------------------------------------------

    def clone(self) -> "BPlusTree":
        """Structural copy preserving node ids (iterative — a deep copy
        would recurse down the leaf chain and overflow the stack on
        large trees).  Values are shared, not copied; rows are
        immutable so replicas cannot corrupt the original through them.
        """
        new = BPlusTree.__new__(BPlusTree)
        new.geometry = self.geometry
        new.max_children = self.max_children
        new.leaf_capacity = self.leaf_capacity
        new._next_node_id = self._next_node_id
        new._size = self._size
        new.io_reads = 0
        mapping: dict[int, _Node] = {}
        for node in self.walk_nodes():  # pre-order: parents first
            copy_node: _Node
            if node.is_leaf:
                leaf_copy = LeafNode(node.node_id)
                leaf_copy.keys = list(node.keys)
                leaf_copy.values = list(node.values)  # type: ignore[attr-defined]
                copy_node = leaf_copy
            else:
                internal_copy = InternalNode(node.node_id)
                internal_copy.keys = list(node.keys)
                copy_node = internal_copy
            mapping[node.node_id] = copy_node
            if node.parent is not None:
                parent_copy = mapping[node.parent.node_id]
                parent_copy.children.append(copy_node)  # type: ignore[attr-defined]
                copy_node.parent = parent_copy  # type: ignore[assignment]
        new._root = mapping[self._root.node_id]
        prev: Optional[LeafNode] = None
        leaf: Optional[LeafNode] = self.first_leaf()
        while leaf is not None:
            leaf_copy = mapping[leaf.node_id]  # type: ignore[assignment]
            leaf_copy.prev_leaf = prev  # type: ignore[attr-defined]
            if prev is not None:
                prev.next_leaf = leaf_copy  # type: ignore[assignment]
            prev = leaf_copy  # type: ignore[assignment]
            leaf = leaf.next_leaf
        return new
