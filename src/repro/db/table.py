"""Heap tables with a primary-key B+-tree.

A :class:`Table` owns its rows and a clustered B+-tree index on the
primary key.  The index is the same class the VB-tree builds on, so
ordered scans, range queries and the page-geometry model behave
identically with and without authentication.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.db.btree import BPlusTree
from repro.db.expressions import KeyRange, Predicate
from repro.db.page import PageGeometry
from repro.db.rows import Row
from repro.db.schema import TableSchema
from repro.exceptions import DuplicateKeyError, KeyNotFoundError

__all__ = ["Table"]


class Table:
    """A base table: schema + rows + clustered key index.

    Args:
        schema: The table schema (must name a key column).
        geometry: Page geometry for the clustered index; defaults to the
            plain B-tree geometry (no digests — authentication lives in
            the VB-tree, not here).
        index_fanout_override: Test hook forwarded to the B+-tree.
    """

    def __init__(
        self,
        schema: TableSchema,
        geometry: PageGeometry | None = None,
        index_fanout_override: int | None = None,
    ) -> None:
        self.schema = schema
        key_width = schema.key_type.byte_width()
        base = geometry or PageGeometry.btree_default()
        self.geometry = PageGeometry(
            block_size=base.block_size,
            key_len=key_width,
            pointer_len=base.pointer_len,
            digest_len=base.digest_len,
        )
        self.index = BPlusTree(
            geometry=self.geometry, min_fanout_override=index_fanout_override
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[Any] | Row) -> Row:
        """Insert one row (validates against the schema).

        Returns:
            The stored :class:`Row`.

        Raises:
            DuplicateKeyError: On key collision.
        """
        row = values if isinstance(values, Row) else Row(self.schema, values)
        self.index.insert(row.key, row)
        return row

    def insert_many(self, rows: Iterable[Sequence[Any] | Row]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def delete(self, key: Any) -> Row:
        """Delete the row with primary key ``key``.

        Returns:
            The removed row.

        Raises:
            KeyNotFoundError: If no such row exists.
        """
        row = self.get(key)
        self.index.delete(key)
        return row

    def update(self, key: Any, **changes: Any) -> Row:
        """Replace columns of the row at ``key``.

        Changing the primary key itself is modelled as delete + insert
        (that is also how the VB-tree treats it).
        """
        old = self.get(key)
        new = old.replace(**changes)
        if new.key != key:
            self.index.delete(key)
            try:
                self.index.insert(new.key, new)
            except DuplicateKeyError:
                self.index.insert(key, old)  # restore, then re-raise
                raise
        else:
            self.index.insert(key, new, overwrite=True)
        return new

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: Any) -> Row:
        """Point lookup by primary key.

        Raises:
            KeyNotFoundError: If no such row exists.
        """
        return self.index.get(key)

    def __contains__(self, key: Any) -> bool:
        return key in self.index

    def __len__(self) -> int:
        return len(self.index)

    def scan(self) -> Iterator[Row]:
        """All rows in key order."""
        for _key, row in self.index.items():
            yield row

    def range_scan(self, key_range: KeyRange) -> Iterator[Row]:
        """Rows whose keys fall in ``key_range``, in key order."""
        if key_range.empty:
            return
        for _key, row in self.index.range_items(
            low=key_range.low,
            high=key_range.high,
            low_inclusive=key_range.low_inclusive,
            high_inclusive=key_range.high_inclusive,
        ):
            yield row

    def select(self, predicate: Predicate) -> Iterator[Row]:
        """Filtered scan; uses the key index when the predicate implies
        a contiguous key range, otherwise falls back to a full scan."""
        key_range = predicate.key_range(self.schema.key)
        rows = self.range_scan(key_range) if key_range is not None else self.scan()
        for row in rows:
            if predicate.evaluate(row):
                yield row

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Table name from the schema."""
        return self.schema.name

    def data_bytes(self) -> int:
        """Nominal stored size of all rows (fixed-width model)."""
        return len(self.index) * self.schema.tuple_width()
