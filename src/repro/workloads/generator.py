"""Synthetic table generation for tests, examples and benchmarks.

Tables follow the paper's evaluation setup: an integer key plus
fixed-width attribute columns, with sizes chosen so the default tuple
is ~200 bytes across 10 attributes (Table 1 / Figure 10)."""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Any

from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType
from repro.exceptions import SchemaError

__all__ = [
    "TableSpec",
    "generate_table",
    "generate_rows",
    "zipf_ranks",
    "skewed_insert_keys",
]

_ALPHABET = string.ascii_lowercase + string.digits


@dataclass(frozen=True)
class TableSpec:
    """Parameters of a synthetic table.

    Attributes:
        name: Table name.
        rows: ``N_r`` — number of tuples.
        columns: ``N_c`` — number of columns including the key.
        attr_size: Width of each non-key VARCHAR attribute in bytes
            (the paper's 20-byte default).
        key_start: First key value.
        key_step: Gap between consecutive keys (a step > 1 leaves holes
            so tests can query guaranteed-empty ranges).
        seed: PRNG seed for deterministic payloads.
    """

    name: str = "synthetic"
    rows: int = 1000
    columns: int = 10
    attr_size: int = 20
    key_start: int = 0
    key_step: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 0 or self.columns < 2:
            raise SchemaError("need rows >= 0 and columns >= 2 (key + payload)")
        if self.attr_size < 1 or self.key_step < 1:
            raise SchemaError("attr_size and key_step must be positive")


def _schema_for(spec: TableSpec) -> TableSchema:
    columns = [Column("id", IntType())]
    columns.extend(
        Column(f"a{i}", VarcharType(capacity=spec.attr_size))
        for i in range(1, spec.columns)
    )
    return TableSchema(spec.name, tuple(columns), key="id")


def generate_rows(spec: TableSpec, schema: TableSchema | None = None) -> list[tuple[Any, ...]]:
    """Deterministic row tuples for ``spec`` (not yet validated Rows)."""
    schema = schema or _schema_for(spec)
    rng = random.Random(spec.seed)
    rows = []
    for i in range(spec.rows):
        key = spec.key_start + i * spec.key_step
        payload = tuple(
            "".join(rng.choices(_ALPHABET, k=spec.attr_size))
            for _ in range(spec.columns - 1)
        )
        rows.append((key, *payload))
    return rows


def generate_table(spec: TableSpec) -> tuple[TableSchema, list[tuple[Any, ...]]]:
    """Schema + rows for ``spec``.

    Returns:
        ``(schema, rows)`` ready for
        :meth:`repro.edge.central.CentralServer.create_table`.
    """
    schema = _schema_for(spec)
    return schema, generate_rows(spec, schema)


def zipf_ranks(
    n_items: int, count: int, theta: float = 0.99, seed: int = 0
) -> list[int]:
    """``count`` Zipf-distributed ranks in ``[0, n_items)``.

    Rank ``r`` is drawn with probability proportional to
    ``1 / (r + 1) ** theta`` — the standard skewed-access model (YCSB's
    default ``theta`` is 0.99, where the most popular item absorbs a
    disproportionate share and the tail thins out polynomially).
    Implemented by inverting the cumulative distribution with
    :func:`bisect.bisect_right`, so it needs no numpy and is exactly
    reproducible for a given ``seed``.

    Args:
        n_items: Number of distinct ranks.
        count: Samples to draw.
        theta: Skew exponent (0 = uniform; larger = hotter head).
        seed: PRNG seed.
    """
    from bisect import bisect_right

    if n_items < 1:
        raise SchemaError("zipf_ranks needs n_items >= 1")
    weights = [1.0 / (r + 1) ** theta for r in range(n_items)]
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc)
    rng = random.Random(seed)
    total = cdf[-1]
    return [bisect_right(cdf, rng.random() * total) for _ in range(count)]


def skewed_insert_keys(
    count: int,
    domain: int,
    theta: float = 0.99,
    seed: int = 0,
    buckets: int = 64,
    key_start: int = 0,
) -> list[int]:
    """``count`` *unique* insert keys, Zipf-skewed across the key domain.

    The domain ``[key_start, key_start + domain)`` is cut into
    ``buckets`` contiguous buckets; each sample picks a bucket by Zipf
    rank (hot buckets cluster at the low end of the domain) and takes
    that bucket's next unused key.  The result is a deterministic,
    duplicate-free insert workload whose *placement* is skewed — under
    a range-partitioned shard map, the shards owning the hot buckets
    absorb disproportionate signing load, which is exactly the
    hot-shard imbalance a sharding bench needs to show.

    Args:
        count: Keys to generate (must fit: ``count <= domain``).
        domain: Key-domain width.
        theta: Zipf skew exponent.
        seed: PRNG seed.
        buckets: Contiguous buckets the domain is cut into.
        key_start: First key of the domain.
    """
    if count > domain:
        raise SchemaError(
            f"cannot draw {count} unique keys from a domain of {domain}"
        )
    buckets = min(buckets, domain)
    width = domain // buckets
    ranks = zipf_ranks(buckets, count, theta=theta, seed=seed)
    next_offset = [0] * buckets
    keys: list[int] = []
    for rank in ranks:
        bucket = rank
        # A full bucket spills to the next with room (wrapping), so the
        # workload stays exactly `count` unique keys even when the hot
        # bucket is exhausted.
        for _ in range(buckets):
            limit = width if bucket < buckets - 1 else domain - bucket * width
            if next_offset[bucket] < limit:
                break
            bucket = (bucket + 1) % buckets
        keys.append(key_start + bucket * width + next_offset[bucket])
        next_offset[bucket] += 1
    return keys
