"""Synthetic table generation for tests, examples and benchmarks.

Tables follow the paper's evaluation setup: an integer key plus
fixed-width attribute columns, with sizes chosen so the default tuple
is ~200 bytes across 10 attributes (Table 1 / Figure 10)."""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Any

from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType
from repro.exceptions import SchemaError

__all__ = ["TableSpec", "generate_table", "generate_rows"]

_ALPHABET = string.ascii_lowercase + string.digits


@dataclass(frozen=True)
class TableSpec:
    """Parameters of a synthetic table.

    Attributes:
        name: Table name.
        rows: ``N_r`` — number of tuples.
        columns: ``N_c`` — number of columns including the key.
        attr_size: Width of each non-key VARCHAR attribute in bytes
            (the paper's 20-byte default).
        key_start: First key value.
        key_step: Gap between consecutive keys (a step > 1 leaves holes
            so tests can query guaranteed-empty ranges).
        seed: PRNG seed for deterministic payloads.
    """

    name: str = "synthetic"
    rows: int = 1000
    columns: int = 10
    attr_size: int = 20
    key_start: int = 0
    key_step: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 0 or self.columns < 2:
            raise SchemaError("need rows >= 0 and columns >= 2 (key + payload)")
        if self.attr_size < 1 or self.key_step < 1:
            raise SchemaError("attr_size and key_step must be positive")


def _schema_for(spec: TableSpec) -> TableSchema:
    columns = [Column("id", IntType())]
    columns.extend(
        Column(f"a{i}", VarcharType(capacity=spec.attr_size))
        for i in range(1, spec.columns)
    )
    return TableSchema(spec.name, tuple(columns), key="id")


def generate_rows(spec: TableSpec, schema: TableSchema | None = None) -> list[tuple[Any, ...]]:
    """Deterministic row tuples for ``spec`` (not yet validated Rows)."""
    schema = schema or _schema_for(spec)
    rng = random.Random(spec.seed)
    rows = []
    for i in range(spec.rows):
        key = spec.key_start + i * spec.key_step
        payload = tuple(
            "".join(rng.choices(_ALPHABET, k=spec.attr_size))
            for _ in range(spec.columns - 1)
        )
        rows.append((key, *payload))
    return rows


def generate_table(spec: TableSpec) -> tuple[TableSchema, list[tuple[Any, ...]]]:
    """Schema + rows for ``spec``.

    Returns:
        ``(schema, rows)`` ready for
        :meth:`repro.edge.central.CentralServer.create_table`.
    """
    schema = _schema_for(spec)
    return schema, generate_rows(spec, schema)
