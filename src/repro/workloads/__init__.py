"""Synthetic data and query workloads for tests, examples and benches."""

from repro.workloads.generator import TableSpec, generate_rows, generate_table
from repro.workloads.queries import QueryWorkload, RangeQuery, range_for_selectivity

__all__ = [
    "QueryWorkload",
    "RangeQuery",
    "TableSpec",
    "generate_rows",
    "generate_table",
    "range_for_selectivity",
]
