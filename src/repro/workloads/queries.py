"""Selectivity-targeted query workloads.

The paper's evaluation sweeps the *selectivity factor* ``Q_r / N_r``
from 0 to 100 %.  :func:`range_for_selectivity` converts a selectivity
into a concrete key range against a generated table, and
:class:`QueryWorkload` produces batches of such queries for the
benches."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.generator import TableSpec

__all__ = ["range_for_selectivity", "QueryWorkload", "RangeQuery"]


@dataclass(frozen=True)
class RangeQuery:
    """One key-range query with its expected result cardinality."""

    low: int
    high: int
    expected_rows: int


def range_for_selectivity(
    spec: TableSpec, selectivity: float, offset_rows: int = 0
) -> RangeQuery:
    """Key range selecting ``selectivity`` of the table's rows.

    Args:
        spec: The generated table's parameters.
        selectivity: Fraction of rows to select, in [0, 1].
        offset_rows: Start the range this many rows into the table
            (wrapped so the range always fits).

    Returns:
        A :class:`RangeQuery` whose bounds select exactly
        ``round(selectivity * rows)`` tuples.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity out of [0,1]: {selectivity}")
    want = round(spec.rows * selectivity)
    if want == 0:
        # A range between two keys (exploits key_step holes if any, else
        # an empty slice below the first key).
        low = spec.key_start - 2
        return RangeQuery(low=low, high=low, expected_rows=0)
    max_offset = spec.rows - want
    offset = min(offset_rows, max_offset)
    low = spec.key_start + offset * spec.key_step
    high = spec.key_start + (offset + want - 1) * spec.key_step
    return RangeQuery(low=low, high=high, expected_rows=want)


@dataclass
class QueryWorkload:
    """A reproducible stream of range queries at a fixed selectivity."""

    spec: TableSpec
    selectivity: float
    seed: int = 0

    def queries(self, count: int) -> Iterator[RangeQuery]:
        """Yield ``count`` queries at random offsets."""
        rng = random.Random(self.seed)
        want = round(self.spec.rows * self.selectivity)
        max_offset = max(0, self.spec.rows - want)
        for _ in range(count):
            yield range_for_selectivity(
                self.spec, self.selectivity, rng.randint(0, max_offset)
            )

    def request_frames(self, count: int) -> Iterator:
        """The same stream as wire-ready
        :class:`~repro.edge.transport.QueryRequestFrame`\\ s — what a
        query router (or any transport-level consumer) feeds on."""
        from repro.edge.transport import range_query_frame

        for query in self.queries(count):
            yield range_query_frame(
                self.spec.name, low=query.low, high=query.high
            )
