"""Open-loop query load with Zipf key popularity and SLO reporting.

The chaos battery's traffic source (ROADMAP "scenario diversity",
item b): a deterministic generator that decides *up front* — purely
from its seed — which range queries tick N carries, independent of how
long any previous query took.  Open-loop matters for chaos: a
closed-loop driver slows down exactly when the system degrades, which
flatters p99 precisely when the storm makes it interesting.  Here the
offered load per tick is constant; what varies is how the fleet copes.

Key popularity is Zipf-skewed (:func:`~repro.workloads.generator.zipf_ranks`,
YCSB's theta=0.99 default), so a partitioned edge holding the hot keys
hurts more than one holding the tail — the load shape is part of the
scenario, not decoration.

Latency accounting is wall-clock and therefore **reported, never
gated**: ``bench_chaos.py`` commits only deterministic counts to its
baseline and prints the latency distribution alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.generator import zipf_ranks

__all__ = ["LoadProfile", "LoadGenerator", "LoadReport", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0–100) by linear interpolation.

    Returns 0.0 for an empty sample set (a storm that blocked every
    query has no latency distribution, not an undefined one).
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class LoadProfile:
    """Shape of the offered load (pure data, all defaults overridable).

    Attributes:
        queries_per_tick: Range queries issued every orchestrator tick.
        key_start / key_step / n_keys: The queried table's primary-key
            lattice (matches :class:`~repro.workloads.generator.TableSpec`).
        span: Half-width of each range query, in key steps — queries
            cover ``[center - span*step, center + span*step]``.
        theta: Zipf skew for the range *centers* (0 = uniform).
        seed: PRNG seed; the whole query stream is a function of it.
        slo_seconds: Latency objective a query should meet; the report
            counts violations (reported, never gated — wall-clock).
    """

    queries_per_tick: int = 8
    key_start: int = 0
    key_step: int = 1
    n_keys: int = 64
    span: int = 3
    theta: float = 0.99
    seed: int = 0
    slo_seconds: float = 0.5


@dataclass
class LoadReport:
    """What the generator observed: issued/answered counts and the
    latency distribution against the SLO."""

    issued: int = 0
    answered: int = 0
    unavailable: int = 0
    latencies: list[float] = field(default_factory=list)
    slo_seconds: float = 0.5

    @property
    def p50(self) -> float:
        return percentile(self.latencies, 50.0)

    @property
    def p99(self) -> float:
        return percentile(self.latencies, 99.0)

    @property
    def over_slo(self) -> int:
        """Answered queries that missed the latency objective."""
        return sum(1 for lat in self.latencies if lat > self.slo_seconds)

    def summary(self) -> dict:
        """Flat dict for benches / logs."""
        return {
            "issued": self.issued,
            "answered": self.answered,
            "unavailable": self.unavailable,
            "p50_ms": round(self.p50 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
            "over_slo": self.over_slo,
        }


class LoadGenerator:
    """Deterministic per-tick batches of range-query bounds.

    The whole stream is precomputed from ``profile.seed`` at
    construction, so tick N's batch is identical across runs no matter
    what the fleet did during ticks 0..N-1 — the open-loop property,
    and the reason a chaos failure replays.
    """

    def __init__(self, profile: LoadProfile, ticks: int) -> None:
        self.profile = profile
        self.ticks = ticks
        total = profile.queries_per_tick * ticks
        ranks = zipf_ranks(
            profile.n_keys, total, theta=profile.theta, seed=profile.seed
        )
        self._batches: list[list[tuple[int, int]]] = []
        for tick in range(ticks):
            batch = []
            for i in range(profile.queries_per_tick):
                rank = ranks[tick * profile.queries_per_tick + i]
                center = profile.key_start + rank * profile.key_step
                half = profile.span * profile.key_step
                batch.append((center - half, center + half))
            self._batches.append(batch)
        self.report = LoadReport(slo_seconds=profile.slo_seconds)

    def batch(self, tick: int) -> list[tuple[int, int]]:
        """The ``(low, high)`` query bounds scheduled for ``tick``."""
        return list(self._batches[tick])

    # -- observation hooks (the orchestrator calls these) ---------------

    def note_issued(self) -> None:
        self.report.issued += 1

    def note_answered(self, latency: float) -> None:
        self.report.answered += 1
        self.report.latencies.append(latency)

    def note_unavailable(self) -> None:
        """The router exhausted the fleet — availability loss, counted
        separately from verification (an unanswered query is loud; an
        unverified answer would be the broken invariant)."""
        self.report.unavailable += 1
