"""Authenticated updates — Section 3.4.

All updates run at the central server (only it can sign new digests).

**Insert.**  The DBMS computes the new tuple's digests (formulas 1-2),
then updates each node digest on the root-to-leaf path.  Under the
FLATTENED policy this is the paper's cheap fold::

    D_N' = h(D_N, D_T)     (one modular multiplication per node)

X-locking "each digest in turn only as it is being modified".  Under
the NESTED policy ancestors must be recomputed from their children
(an explicit cost the update benches quantify).  Splits force digest
recomputation for the affected nodes either way.

**Delete.**  The tuple's contribution cannot be reversed out of the
exponent product (that would require taking roots), so the transaction
X-locks *all* digests on the path from the root to the affected leaves,
deletes the tuples, then recomputes digests bottom-up — exactly the
paper's description of why deletes are the expensive operation.

Concurrent queries S-lock their enveloping subtrees
(:meth:`repro.core.query_auth.QueryAuthenticator._lock_envelope`); a
query whose envelope does not overlap the delete's path proceeds
untouched, which is the concurrency win the paper claims over
root-signature schemes like [5].
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.digests import DigestPolicy
from repro.core.vbtree import VBTree
from repro.db.btree import _Node
from repro.db.rows import Row
from repro.db.transactions import Transaction
from repro.exceptions import LockError

__all__ = ["AuthenticatedUpdater", "digest_resource"]


def digest_resource(table: str, node_id: int) -> tuple[str, str, int]:
    """Lock-manager resource name for one node digest."""
    return ("digest", table, node_id)


class AuthenticatedUpdater:
    """Applies inserts/deletes to a VB-tree, maintaining digests and
    following the paper's digest-locking protocol.

    Args:
        vbtree: The central server's authoritative VB-tree.
        short_insert_locks: If True (paper behaviour), insert releases
            each digest X-lock right after updating that digest; if
            False, locks are held to commit (strict 2PL).
    """

    def __init__(self, vbtree: VBTree, short_insert_locks: bool = True) -> None:
        self.vbtree = vbtree
        self.short_insert_locks = short_insert_locks

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, row: Row, txn: Transaction | None = None) -> None:
        """Insert ``row`` and maintain digests along the path.

        Raises:
            DuplicateKeyError: On key collision (no digests are touched).
            LockError: If a digest X-lock cannot be granted immediately.
        """
        vbt = self.vbtree
        trace, auth = vbt.raw_insert(row)
        acquired: list[tuple[str, str, int]] = []
        try:
            if trace.split or trace.freed:
                # Structural change: recompute digests of all dirty nodes.
                self._lock_nodes(txn, trace.path, exclusive=True, acquired=acquired)
                vbt.recompute_dirty(trace)
            elif vbt.policy is DigestPolicy.FLATTENED:
                # The paper's incremental path: fold the tuple digest
                # into each node digest from the root down, X-locking
                # "each digest in turn only as it is being modified".
                for node in trace.path:
                    self._with_node_xlock(
                        txn,
                        node,
                        lambda n=node: self._fold(n, auth.digests.tuple_value),
                    )
            else:
                # NESTED: the leaf digest changes, so every ancestor must
                # be recomputed from its children.
                self._lock_nodes(txn, trace.path, exclusive=True, acquired=acquired)
                for node in reversed(trace.path):
                    vbt.recompute_node(node)
        finally:
            if self.short_insert_locks and txn is not None:
                for resource in acquired:
                    txn.manager.locks.release(txn.txn_id, resource)
        vbt.version += 1

    def _fold(self, node: _Node, tuple_value: int) -> None:
        vbt = self.vbtree
        current = vbt.node_auth(node)
        folded = vbt.signing.engine.fold_into_node(current.value, tuple_value)
        vbt.set_node_value(node, folded)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, key: Any, txn: Transaction | None = None) -> Row:
        """Delete the tuple at ``key``; recompute digests bottom-up.

        The root-to-leaf digest path is X-locked *before* any
        modification (the paper's delete protocol).

        Returns:
            The removed row.
        """
        vbt = self.vbtree
        leaf = vbt.tree.find_leaf(key)
        path = vbt.tree.path_to(leaf)
        self._lock_nodes(txn, path, exclusive=True)
        row = vbt.tree.get(key)
        trace, _auth = vbt.raw_delete(key)
        vbt.recompute_dirty(trace)
        vbt.version += 1
        return row

    def delete_range(
        self, low: Any, high: Any, txn: Transaction | None = None
    ) -> list[Row]:
        """Delete all tuples with ``low <= key <= high`` (the paper's
        contiguous-range delete whose cost formula (12) models).

        Returns:
            The removed rows.
        """
        keys = [k for k, _ in self.vbtree.tree.range_items(low, high)]
        return [self.delete(k, txn=txn) for k in keys]

    # ------------------------------------------------------------------
    # Locking plumbing
    # ------------------------------------------------------------------

    def _lock_nodes(
        self,
        txn: Transaction | None,
        nodes: Sequence[_Node],
        exclusive: bool,
        acquired: list | None = None,
    ) -> None:
        if txn is None:
            return
        for node in nodes:
            resource = digest_resource(self.vbtree.table_name, node.node_id)
            already_held = txn.holds(resource) is not None
            granted = (
                txn.lock_exclusive(resource)
                if exclusive
                else txn.lock_shared(resource)
            )
            if not granted:
                raise LockError(
                    f"update blocked acquiring lock on {resource!r}"
                )
            if acquired is not None and not already_held:
                acquired.append(resource)

    def _with_node_xlock(
        self, txn: Transaction | None, node: _Node, action
    ) -> None:
        """X-lock one digest, run ``action``, optionally release
        immediately (the paper's short insert locks)."""
        if txn is None:
            action()
            return
        resource = digest_resource(self.vbtree.table_name, node.node_id)
        if not txn.lock_exclusive(resource):
            raise LockError(f"insert blocked acquiring X-lock on {resource!r}")
        try:
            action()
        finally:
            if self.short_insert_locks:
                txn.manager.locks.release(txn.txn_id, resource)
