"""Authenticated updates — Section 3.4.

All updates run at the central server (only it can sign new digests).

**Insert.**  The DBMS computes the new tuple's digests (formulas 1-2),
then updates each node digest on the root-to-leaf path.  Under the
FLATTENED policy this is the paper's cheap fold::

    D_N' = h(D_N, D_T)     (one modular multiplication per node)

Path X-locks are acquired up front (a denied lock must leave the tree
untouched so the replication log stays consistent) but, following the
paper, each digest's lock is released "only as it is being modified" —
right after its fold — under short insert locks.  Under
the NESTED policy ancestors must be recomputed from their children
(an explicit cost the update benches quantify).  Splits force digest
recomputation for the affected nodes either way.

**Delete.**  The tuple's contribution cannot be reversed out of the
exponent product (that would require taking roots), so the transaction
X-locks *all* digests on the path from the root to the affected leaves,
deletes the tuples, then recomputes digests bottom-up — exactly the
paper's description of why deletes are the expensive operation.

Concurrent queries S-lock their enveloping subtrees
(:meth:`repro.core.query_auth.QueryAuthenticator._lock_envelope`); a
query whose envelope does not overlap the delete's path proceeds
untouched, which is the concurrency win the paper claims over
root-signature schemes like [5].
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.delta import NodeDigestUpdate, ReplicaDelta, TupleOp
from repro.core.digests import DigestPolicy
from repro.core.vbtree import VBTree
from repro.db.btree import MutationTrace, _Node
from repro.db.rows import Row
from repro.db.transactions import Transaction
from repro.exceptions import LockError

__all__ = ["AuthenticatedUpdater", "digest_resource"]


def digest_resource(table: str, node_id: int) -> tuple[str, str, int]:
    """Lock-manager resource name for one node digest."""
    return ("digest", table, node_id)


class AuthenticatedUpdater:
    """Applies inserts/deletes to a VB-tree, maintaining digests and
    following the paper's digest-locking protocol.

    Args:
        vbtree: The central server's authoritative VB-tree.
        short_insert_locks: If True (paper behaviour), insert releases
            each digest X-lock right after updating that digest; if
            False, locks are held to commit (strict 2PL).
    """

    def __init__(self, vbtree: VBTree, short_insert_locks: bool = True) -> None:
        self.vbtree = vbtree
        self.short_insert_locks = short_insert_locks
        #: FIFO queue of deltas emitted by mutations (unsigned; the
        #: replicator assigns LSNs and seals them).  A queue, not a
        #: slot: one logical update can mutate a tree several times —
        #: e.g. view maintenance inserting every joined row — and each
        #: mutation's delta must be recorded, in order.
        self._pending_deltas: list[ReplicaDelta] = []

    def take_delta(self) -> ReplicaDelta | None:
        """Pop the oldest pending delta (None if none)."""
        if not self._pending_deltas:
            return None
        return self._pending_deltas.pop(0)

    def take_deltas(self) -> list[ReplicaDelta]:
        """Drain all pending deltas, oldest first."""
        deltas, self._pending_deltas = self._pending_deltas, []
        return deltas

    def _emit_delta(
        self,
        op: TupleOp,
        trace: MutationTrace,
        touched: Iterable[_Node],
        base_version: int,
    ) -> ReplicaDelta:
        """Record the mutation as an (unsigned) :class:`ReplicaDelta`."""
        vbt = self.vbtree
        freed_ids = {n.node_id for n in trace.freed}
        updates: dict[int, NodeDigestUpdate] = {}
        for node in touched:
            if node.node_id in freed_ids or node.node_id in updates:
                continue
            updates[node.node_id] = NodeDigestUpdate.from_auth(
                node.node_id, vbt.node_auth(node)
            )
        delta = ReplicaDelta(
            table=vbt.table_name,
            lsn_first=0,
            lsn_last=0,
            epoch=vbt.signing.signer.epoch,
            base_version=base_version,
            new_version=vbt.version,
            structural=bool(trace.split or trace.freed),
            ops=(op,),
            node_updates=tuple(updates.values()),
            freed_nodes=tuple(sorted(freed_ids)),
        )
        self._pending_deltas.append(delta)
        return delta

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, row: Row, txn: Transaction | None = None) -> None:
        """Insert ``row`` and maintain digests along the path.

        All path X-locks are acquired *before* the tree is mutated: a
        denied lock must leave the tree untouched, or the mutation
        would be invisible to the replication log and replicas would
        silently diverge.  (The paper describes acquiring each digest
        lock as it is modified; we keep its *release* discipline — under
        short locks each digest is released right after its fold — but
        front-load acquisition for failure atomicity.)

        Raises:
            DuplicateKeyError: On key collision (nothing is touched).
            LockError: If a digest X-lock cannot be granted immediately
                (nothing is touched).
        """
        vbt = self.vbtree
        base_version = vbt.version
        key = vbt.key_of(row)
        path = vbt.tree.path_to(vbt.tree.find_leaf(key))
        acquired: list[tuple[str, str, int]] = []
        self._lock_nodes(txn, path, exclusive=True, acquired=acquired)
        try:
            trace, auth = vbt.raw_insert(row)
        except Exception:
            self._release_all(txn, acquired)
            raise
        touched: list[_Node]
        try:
            if trace.split or trace.freed:
                # Structural change: also X-lock the nodes the split
                # created (including a new root) before recomputing
                # their digests.  These are fresh node ids no other
                # transaction can hold, so the grants cannot fail.
                self._lock_nodes(
                    txn, trace.created, exclusive=True, acquired=acquired
                )
                touched = vbt.recompute_dirty(trace)
            elif vbt.policy is DigestPolicy.FLATTENED:
                # The paper's incremental path: fold the tuple digest
                # into each node digest from the root down, releasing
                # each digest's lock right after it is modified.
                for node in trace.path:
                    self._fold(node, auth.digests.tuple_value)
                    if self.short_insert_locks:
                        self._release_node(txn, node, acquired)
                touched = list(trace.path)
            else:
                # NESTED: the leaf digest changes, so every ancestor must
                # be recomputed from its children.
                for node in reversed(trace.path):
                    vbt.recompute_node(node)
                touched = list(trace.path)
        finally:
            if self.short_insert_locks:
                self._release_all(txn, acquired)
        vbt.version += 1
        self._emit_delta(TupleOp.insert(row, auth), trace, touched, base_version)

    def _fold(self, node: _Node, tuple_value: int) -> None:
        vbt = self.vbtree
        current = vbt.node_auth(node)
        folded = vbt.signing.engine.fold_into_node(current.value, tuple_value)
        vbt.set_node_value(node, folded)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, key: Any, txn: Transaction | None = None) -> Row:
        """Delete the tuple at ``key``; recompute digests bottom-up.

        The root-to-leaf digest path is X-locked *before* any
        modification (the paper's delete protocol).

        Returns:
            The removed row.
        """
        vbt = self.vbtree
        base_version = vbt.version
        leaf = vbt.tree.find_leaf(key)
        path = vbt.tree.path_to(leaf)
        self._lock_nodes(txn, path, exclusive=True)
        row = vbt.tree.get(key)
        trace, _auth = vbt.raw_delete(key)
        touched = vbt.recompute_dirty(trace)
        vbt.version += 1
        self._emit_delta(TupleOp.delete(key), trace, touched, base_version)
        return row

    def delete_range(
        self, low: Any, high: Any, txn: Transaction | None = None
    ) -> list[Row]:
        """Delete all tuples with ``low <= key <= high`` (the paper's
        contiguous-range delete whose cost formula (12) models).

        Returns:
            The removed rows.
        """
        keys = [k for k, _ in self.vbtree.tree.range_items(low, high)]
        return [self.delete(k, txn=txn) for k in keys]

    # ------------------------------------------------------------------
    # Locking plumbing
    # ------------------------------------------------------------------

    def lock_path(self, key: Any, txn: Transaction | None) -> None:
        """X-lock the root-to-leaf digest path ``key`` resolves to,
        holding the locks until ``txn`` finishes.

        Used by the central server to front-load *every* lock a
        multi-tree operation (base table + secondary indexes + join
        views) will need before mutating anything: a denied lock then
        aborts with all trees untouched, so the replication log can
        never record a partial update.  Locks acquired here are not
        released early by the short-insert-lock discipline (they were
        not acquired by :meth:`insert`), i.e. pre-locked operations run
        under strict 2PL.

        Raises:
            LockError: If any lock on the path cannot be granted.
        """
        tree = self.vbtree.tree
        path = tree.path_to(tree.find_leaf(key))
        self._lock_nodes(txn, path, exclusive=True)

    def _lock_nodes(
        self,
        txn: Transaction | None,
        nodes: Sequence[_Node],
        exclusive: bool,
        acquired: list | None = None,
    ) -> None:
        if txn is None:
            return
        for node in nodes:
            resource = digest_resource(self.vbtree.table_name, node.node_id)
            already_held = txn.holds(resource) is not None
            granted = (
                txn.lock_exclusive(resource)
                if exclusive
                else txn.lock_shared(resource)
            )
            if not granted:
                raise LockError(
                    f"update blocked acquiring lock on {resource!r}"
                )
            if acquired is not None and not already_held:
                acquired.append(resource)

    def _release_all(self, txn: Transaction | None, acquired: list) -> None:
        """Release every lock this operation acquired (and only those)."""
        if txn is None:
            return
        for resource in acquired:
            txn.manager.locks.release(txn.txn_id, resource)
        acquired.clear()

    def _release_node(
        self, txn: Transaction | None, node: _Node, acquired: list
    ) -> None:
        """Release one node's digest lock if this operation acquired it
        (the paper's short insert locks: held only while modified)."""
        if txn is None:
            return
        resource = digest_resource(self.vbtree.table_name, node.node_id)
        if resource in acquired:
            txn.manager.locks.release(txn.txn_id, resource)
            acquired.remove(resource)
