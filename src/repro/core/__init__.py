"""The paper's core: VB-tree, verification objects, verification,
authenticated updates.

Typical wiring (the :mod:`repro.edge` package does this for you):

* central server: :class:`~repro.core.digests.SigningDigestEngine` →
  :meth:`~repro.core.vbtree.VBTree.build` →
  :class:`~repro.core.update.AuthenticatedUpdater` for maintenance;
* edge server: :class:`~repro.core.query_auth.QueryAuthenticator` over
  a VB-tree replica;
* client: :class:`~repro.core.verify.ResultVerifier` with the central
  server's public key / key ring.
"""

from repro.core.digests import (
    DigestEngine,
    DigestPolicy,
    SigningDigestEngine,
    TupleDigests,
)
from repro.core.envelope import Envelope, ResultPosition, find_envelope
from repro.core.query_auth import QueryAuthenticator
from repro.core.secondary import (
    MAX_KEY,
    MIN_KEY,
    SecondaryQueryAuthenticator,
    SecondaryVBTree,
)
from repro.core.update import AuthenticatedUpdater, digest_resource
from repro.core.vbtree import NodeAuth, TupleAuth, VBTree
from repro.core.verify import ResultVerifier, Verdict
from repro.core.vo import (
    AuthenticatedResult,
    VerificationObject,
    VOEntry,
    VOEntryKind,
    VOFormat,
)
from repro.core.wire import result_from_bytes, result_to_bytes, wire_breakdown

__all__ = [
    "AuthenticatedResult",
    "AuthenticatedUpdater",
    "DigestEngine",
    "DigestPolicy",
    "Envelope",
    "NodeAuth",
    "MAX_KEY",
    "MIN_KEY",
    "QueryAuthenticator",
    "SecondaryQueryAuthenticator",
    "SecondaryVBTree",
    "ResultPosition",
    "ResultVerifier",
    "SigningDigestEngine",
    "TupleAuth",
    "TupleDigests",
    "VBTree",
    "Verdict",
    "VerificationObject",
    "VOEntry",
    "VOEntryKind",
    "VOFormat",
    "digest_resource",
    "find_envelope",
    "result_from_bytes",
    "result_to_bytes",
    "wire_breakdown",
]
