"""Client-side verification of authenticated query results (Lemmas 1-2).

The client trusts only the central server's public key(s).  Given an
:class:`~repro.core.vo.AuthenticatedResult` from an edge server, it
recomputes digests from the returned values, folds in the signed
digests from ``D_S``/``D_P`` (after decrypting them with the public
key), and compares the outcome against the signed top digest ``D_N``.

Any of the following makes verification fail:

* a tampered attribute value (the recomputed attribute digest changes);
* a spurious / duplicated / reordered-across-leaves tuple;
* a forged or corrupted signature;
* a signature from an expired key epoch (stale-data replay, Section
  3.4) — when a :class:`~repro.crypto.keyring.KeyRing` is supplied;
* a malformed VO (slot collisions, missing positions, ...).

Verification returns a :class:`Verdict` rather than raising, so callers
can treat tampering as data, not control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.digests import DigestEngine, DigestPolicy
from repro.core.vo import (
    AuthenticatedResult,
    VerificationObject,
    VOEntry,
    VOEntryKind,
    VOFormat,
)
from repro.crypto.keyring import KeyRing
from repro.crypto.meter import CostMeter, NULL_METER
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signatures import DigestVerifier, SignedDigest
from repro.exceptions import (
    SignatureError,
    StaleKeyError,
    VOFormatError,
)

__all__ = ["Verdict", "ResultVerifier"]


@dataclass
class Verdict:
    """Outcome of verifying one authenticated result.

    Attributes:
        ok: True if the result is proven consistent with the signatures.
        reason: Human-readable explanation (``"verified"`` on success).
        rows_checked: Number of result tuples covered by the check.
        digests_decrypted: Signature decryptions performed (``Cost_v``).
    """

    ok: bool
    reason: str = "verified"
    rows_checked: int = 0
    digests_decrypted: int = 0


class ResultVerifier:
    """Verifies authenticated results against the central server's key.

    Args:
        engine: Digest engine configured identically to the central
            server's (same commutative hash, policy, db name).
        public_key: The central server's public key — used when no key
            ring is supplied, or as a fallback for epoch 0.
        keyring: Optional key-epoch registry; enables stale-replay
            detection on rotated keys.
        meter: Cost meter (hashes/combines/verifies) for the benches.
    """

    def __init__(
        self,
        engine: DigestEngine,
        public_key: RSAPublicKey | None = None,
        keyring: KeyRing | None = None,
        meter: CostMeter = NULL_METER,
    ) -> None:
        if public_key is None and keyring is None:
            raise VOFormatError("verifier needs a public key or a key ring")
        self.engine = engine
        self.keyring = keyring
        self.meter = meter
        self._fixed_verifier = (
            DigestVerifier(public_key, meter=meter) if public_key else None
        )
        self._epoch_verifiers: dict[int, DigestVerifier] = {}

    # ------------------------------------------------------------------
    # Signature recovery with epoch validation
    # ------------------------------------------------------------------

    def _verifier_for(self, signed: SignedDigest) -> DigestVerifier:
        if self.keyring is not None:
            # Validity must be re-checked on EVERY recovery: an epoch that
            # was acceptable earlier may since have expired (stale replay).
            key = self.keyring.public_key_for(signed.epoch)  # may raise
            cached = self._epoch_verifiers.get(signed.epoch)
            if cached is None:
                cached = DigestVerifier(key, meter=self.meter)
                self._epoch_verifiers[signed.epoch] = cached
            return cached
        assert self._fixed_verifier is not None
        return self._fixed_verifier

    def _recover(self, signed: SignedDigest) -> int:
        """Decrypt a signed digest, enforcing epoch validity."""
        return self._verifier_for(signed).recover(signed)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def verify(self, result: AuthenticatedResult) -> Verdict:
        """Verify one authenticated result (Lemmas 1 and 2)."""
        meter_before = self.meter.verifies
        try:
            self._structural_checks(result)
            if result.vo.format is VOFormat.FLAT_SET:
                ok = self._verify_flat(result)
            else:
                ok = self._verify_structured(result)
        except StaleKeyError as exc:
            return self._verdict(result, False, f"stale key epoch: {exc}", meter_before)
        except SignatureError as exc:
            return self._verdict(result, False, f"bad signature: {exc}", meter_before)
        except VOFormatError as exc:
            return self._verdict(result, False, f"malformed VO: {exc}", meter_before)
        if not ok:
            return self._verdict(
                result, False, "digest mismatch: result tampered or VO wrong",
                meter_before,
            )
        return self._verdict(result, True, "verified", meter_before)

    def _verdict(
        self,
        result: AuthenticatedResult,
        ok: bool,
        reason: str,
        meter_before: int,
    ) -> Verdict:
        return Verdict(
            ok=ok,
            reason=reason,
            rows_checked=result.num_rows,
            digests_decrypted=self.meter.verifies - meter_before,
        )

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _structural_checks(self, result: AuthenticatedResult) -> None:
        vo = result.vo
        if len(result.rows) != len(result.keys):
            raise VOFormatError("rows/keys length mismatch")
        if vo.format is VOFormat.FLAT_SET and vo.policy is not DigestPolicy.FLATTENED:
            raise VOFormatError("FLAT_SET VO under a non-FLATTENED policy")
        if vo.format is VOFormat.STRUCTURED:
            if vo.result_positions is None or len(vo.result_positions) != len(
                result.rows
            ):
                raise VOFormatError("missing/misaligned result positions")
        for name in result.columns:
            if name not in result.all_columns:
                raise VOFormatError(f"returned column {name!r} not in schema")
        if len(set(result.columns)) != len(result.columns):
            raise VOFormatError("duplicate returned columns")

    def _attribute_values_for_row(
        self,
        result: AuthenticatedResult,
        row_index: int,
        projection_by_row: dict[int, list[int]],
    ) -> list[int]:
        """Attribute digest values of one result tuple: recomputed for
        returned columns, recovered from ``D_P`` for filtered ones."""
        key = result.keys[row_index]
        values = [
            self.engine.attribute_value(result.table, col, key, val)
            for col, val in zip(result.columns, result.rows[row_index], strict=False)
        ]
        values.extend(projection_by_row.get(row_index, ()))
        expected = len(result.all_columns)
        if len(values) != expected:
            raise VOFormatError(
                f"row {row_index}: {len(values)} attribute digests for "
                f"{expected} columns"
            )
        return values

    def _projection_by_row(
        self, result: AuthenticatedResult
    ) -> dict[int, list[int]]:
        """Group recovered D_P values by result row (STRUCTURED only)."""
        grouped: dict[int, list[int]] = {}
        filtered_count = len(result.all_columns) - len(result.columns)
        for entry in result.vo.projection_entries:
            if entry.row_index is None:
                raise VOFormatError("structured D_P entry missing row index")
            grouped.setdefault(entry.row_index, []).append(
                self._recover(entry.signed)
            )
        for row_index, values in grouped.items():
            if row_index >= len(result.rows):
                raise VOFormatError("D_P entry references missing row")
            if len(values) != filtered_count:
                raise VOFormatError(
                    f"row {row_index}: {len(values)} projection digests for "
                    f"{filtered_count} filtered columns"
                )
        if filtered_count and len(grouped) != len(result.rows):
            raise VOFormatError("projection digests missing for some rows")
        return grouped

    # ------------------------------------------------------------------
    # FLAT_SET verification (the paper's equations 4-5)
    # ------------------------------------------------------------------

    def _verify_flat(self, result: AuthenticatedResult) -> bool:
        vo = result.vo
        commutative = self.engine.commutative
        modulus = commutative.modulus
        product = 1
        # Result tuples: recomputed attribute digests of returned columns.
        for row_index, row in enumerate(result.rows):
            key = result.keys[row_index]
            for col, val in zip(result.columns, row, strict=False):
                a = self.engine.attribute_value(result.table, col, key, val)
                product = (product * (a | 1)) % modulus
                self.meter.count_combine(1)
        # D_P: filtered attribute digests (unordered — the flattening
        # makes per-row grouping unnecessary, Lemma 2).
        filtered_count = len(result.all_columns) - len(result.columns)
        if len(vo.projection_entries) != filtered_count * len(result.rows):
            raise VOFormatError(
                "D_P cardinality does not match projection width"
            )
        for entry in vo.projection_entries:
            v = self._recover(entry.signed)
            product = (product * (v | 1)) % modulus
            self.meter.count_combine(1)
        # D_S: filtered tuples and pruned branches (unordered, Lemma 1).
        for entry in vo.selection_entries:
            v = self._recover(entry.signed)
            product = (product * (v | 1)) % modulus
            self.meter.count_combine(1)
        candidate = self.engine.display_value(product)
        expected = self._recover(vo.top_signed)
        return candidate == expected

    # ------------------------------------------------------------------
    # STRUCTURED verification (node-by-node rebuild)
    # ------------------------------------------------------------------

    def _verify_structured(self, result: AuthenticatedResult) -> bool:
        vo = result.vo
        projection_by_row = self._projection_by_row(result)
        # path -> slot -> digest value
        slots: dict[tuple[int, ...], dict[int, int]] = {}

        def place(path: tuple[int, ...], slot: int, value: int) -> None:
            node = slots.setdefault(path, {})
            if slot in node:
                raise VOFormatError(
                    f"slot collision at path={path} slot={slot}"
                )
            node[slot] = value

        assert vo.result_positions is not None
        for row_index, (path, slot) in enumerate(vo.result_positions):
            attr_values = self._attribute_values_for_row(
                result, row_index, projection_by_row
            )
            place(tuple(path), slot, self.engine.tuple_value(attr_values))

        for entry in vo.selection_entries:
            if entry.path is None or entry.slot is None:
                raise VOFormatError("structured D_S entry missing position")
            place(tuple(entry.path), entry.slot, self._recover(entry.signed))

        if not slots:
            raise VOFormatError("empty VO: nothing to verify")

        # Fold nodes bottom-up, one level at a time: folding a node at
        # depth d places its value into its parent at depth d-1, which
        # the next iteration then picks up.
        max_depth = max(len(p) for p in slots)
        for depth in range(max_depth, 0, -1):
            for path in [p for p in slots if len(p) == depth]:
                node_slots = slots.pop(path)
                value = self.engine.node_value(
                    node_slots[s] for s in sorted(node_slots)
                )
                place(path[:-1], path[-1], value)

        top_slots = slots.get(())
        if not top_slots:
            raise VOFormatError("VO never reaches the envelope top")
        top_value = self.engine.node_value(
            top_slots[s] for s in sorted(top_slots)
        )
        candidate = self.engine.display_value(top_value)
        expected = self._recover(vo.top_signed)
        return candidate == expected
