"""Verification objects (VOs) and authenticated results.

A VO carries everything a client needs — beyond the result tuples
themselves — to check a query result against the central server's
signatures (Section 3.3):

* ``D_N`` — the signed *display* digest of the enveloping subtree's top
  node;
* ``D_S`` — signed digests for the envelope constituents that are not
  part of the result: filtered tuples (gaps) and pruned child subtrees;
* ``D_P`` — signed digests for attributes removed by projection.

Two formats:

* :attr:`VOFormat.FLAT_SET` — the paper's encoding: ``D_S`` and ``D_P``
  are unordered multisets of signed digests.  Sufficient under the
  FLATTENED digest policy, where every constituent multiplies into the
  top node's exponent regardless of position.
* :attr:`VOFormat.STRUCTURED` — every entry is tagged with its node
  path/slot (and projection entries with their row/column), so the
  client can rebuild intermediate node digests.  Required under the
  NESTED digest policy; also usable under FLATTENED (and is what a
  system would ship if it wanted the client to pinpoint *where*
  tampering happened).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Sequence

from repro.core.digests import DigestPolicy
from repro.crypto.signatures import SignedDigest

__all__ = [
    "VOFormat",
    "VOEntryKind",
    "VOEntry",
    "VerificationObject",
    "AuthenticatedResult",
]


class VOFormat(Enum):
    """Wire encodings of a VO (see module docstring)."""

    FLAT_SET = "flat"
    STRUCTURED = "structured"


class VOEntryKind(Enum):
    """What a ``D_S``/``D_P`` entry stands for."""

    NODE = "node"          # pruned child subtree (D_S)
    TUPLE = "tuple"        # filtered tuple in a boundary leaf (D_S)
    ATTRIBUTE = "attr"     # projected-away attribute (D_P)


@dataclass(frozen=True)
class VOEntry:
    """One signed digest in a VO.

    Structured-format tags (``None`` in FLAT_SET):

    * NODE / TUPLE entries: ``path`` (child indices from the envelope
      top) and ``slot`` (index within that node).
    * ATTRIBUTE entries: ``row_index`` (position in the result list) and
      ``attr_index`` (column position in the *full* table schema).
    """

    kind: VOEntryKind
    signed: SignedDigest
    path: Optional[tuple[int, ...]] = None
    slot: Optional[int] = None
    row_index: Optional[int] = None
    attr_index: Optional[int] = None


@dataclass
class VerificationObject:
    """The verification object for one query result."""

    format: VOFormat
    policy: DigestPolicy
    table: str
    top_signed: SignedDigest
    selection_entries: list[VOEntry] = field(default_factory=list)
    projection_entries: list[VOEntry] = field(default_factory=list)
    #: STRUCTURED only: (path, slot) per result row, aligned with the
    #: result row order.
    result_positions: Optional[list[tuple[tuple[int, ...], int]]] = None
    envelope_height: int = 0

    @property
    def num_selection_digests(self) -> int:
        """|D_S| — digests covering gaps and pruned branches."""
        return len(self.selection_entries)

    @property
    def num_projection_digests(self) -> int:
        """|D_P| — digests covering projected-away attributes."""
        return len(self.projection_entries)

    def digest_count(self) -> int:
        """Total signed digests shipped (D_N + D_S + D_P)."""
        return 1 + self.num_selection_digests + self.num_projection_digests


@dataclass
class AuthenticatedResult:
    """A query result together with its VO, as shipped by an edge server.

    Attributes:
        table: Source table (or materialized view) name.
        columns: Returned column names, in row-value order.
        all_columns: The table's full column list (the client derives
            which attributes were filtered by projection).
        key_column: Name of the primary-key column.
        rows: Result tuples (projected values only).
        keys: Primary key of each result row (always shipped — formula 1
            hashes the key, so verification needs it even when the key
            column is projected away).
        vo: The verification object.
    """

    table: str
    columns: tuple[str, ...]
    all_columns: tuple[str, ...]
    key_column: str
    rows: list[tuple[Any, ...]]
    keys: list[Any]
    vo: VerificationObject

    @property
    def num_rows(self) -> int:
        """``Q_r`` in the paper's notation."""
        return len(self.rows)

    @property
    def filtered_columns(self) -> tuple[str, ...]:
        """Columns removed by projection (``N_c - Q_c`` of them)."""
        returned = set(self.columns)
        return tuple(c for c in self.all_columns if c not in returned)
