"""Wire format for authenticated results — exact byte accounting.

The communication-cost experiments (Figures 10-11) need real byte
counts from the running system, so authenticated results serialize to a
deterministic binary format and the benches measure ``len(bytes)``.

Layout (all integers big-endian, lengths 4 bytes):

    header   : sig_len | format | policy | envelope_height
               table | key_column | columns | all_columns
    rows     : count, then each row's values (canonical encoding)
    keys     : values
    vo       : top_signed
               D_S count, entries
               D_P count, entries
               result positions (STRUCTURED only)

Entries carry positional tags only in the STRUCTURED format, which is
exactly the encoding-size difference between the two formats that the
``bench_ablation_granularity`` bench reports.
"""

from __future__ import annotations

from typing import Any

from repro.core.digests import DigestPolicy
from repro.core.vo import (
    AuthenticatedResult,
    VerificationObject,
    VOEntry,
    VOEntryKind,
    VOFormat,
)
from repro.crypto.encoding import (
    decode_uint,
    decode_value,
    decode_values,
    encode_uint,
    encode_value,
    encode_values,
)
from repro.crypto.signatures import SignedDigest
from repro.exceptions import VOFormatError

__all__ = ["result_to_bytes", "result_from_bytes", "wire_breakdown"]

_FORMAT_TAGS = {VOFormat.FLAT_SET: 0, VOFormat.STRUCTURED: 1}
_FORMAT_FROM_TAG = {v: k for k, v in _FORMAT_TAGS.items()}
_POLICY_TAGS = {DigestPolicy.FLATTENED: 0, DigestPolicy.NESTED: 1}
_POLICY_FROM_TAG = {v: k for k, v in _POLICY_TAGS.items()}
_KIND_TAGS = {VOEntryKind.NODE: 0, VOEntryKind.TUPLE: 1, VOEntryKind.ATTRIBUTE: 2}
_KIND_FROM_TAG = {v: k for k, v in _KIND_TAGS.items()}


def _encode_path(path: tuple[int, ...]) -> bytes:
    return encode_uint(len(path)) + b"".join(encode_uint(p) for p in path)


def _decode_path(data: bytes, offset: int) -> tuple[tuple[int, ...], int]:
    count, offset = decode_uint(data, offset)
    path = []
    for _ in range(count):
        p, offset = decode_uint(data, offset)
        path.append(p)
    return tuple(path), offset


def _encode_entry(entry: VOEntry, fmt: VOFormat, sig_len: int) -> bytes:
    out = bytes([_KIND_TAGS[entry.kind]]) + entry.signed.to_bytes(sig_len)
    if fmt is VOFormat.FLAT_SET:
        return out
    if entry.kind is VOEntryKind.ATTRIBUTE:
        if entry.row_index is None or entry.attr_index is None:
            raise VOFormatError("structured attribute entry missing tags")
        return out + encode_uint(entry.row_index) + encode_uint(entry.attr_index)
    if entry.path is None or entry.slot is None:
        raise VOFormatError("structured entry missing position tags")
    return out + _encode_path(entry.path) + encode_uint(entry.slot)


def _decode_entry(
    data: bytes, offset: int, fmt: VOFormat, sig_len: int
) -> tuple[VOEntry, int]:
    kind = _KIND_FROM_TAG.get(data[offset])
    if kind is None:
        raise VOFormatError(f"unknown VO entry kind tag {data[offset]}")
    offset += 1
    signed = SignedDigest.from_bytes(data[offset : offset + sig_len + 2], sig_len)
    offset += sig_len + 2
    if fmt is VOFormat.FLAT_SET:
        return VOEntry(kind=kind, signed=signed), offset
    if kind is VOEntryKind.ATTRIBUTE:
        row_index, offset = decode_uint(data, offset)
        attr_index, offset = decode_uint(data, offset)
        return (
            VOEntry(
                kind=kind, signed=signed, row_index=row_index, attr_index=attr_index
            ),
            offset,
        )
    path, offset = _decode_path(data, offset)
    slot, offset = decode_uint(data, offset)
    return VOEntry(kind=kind, signed=signed, path=path, slot=slot), offset


def result_to_bytes(result: AuthenticatedResult, sig_len: int) -> bytes:
    """Serialize an authenticated result.

    Args:
        result: The result + VO to encode.
        sig_len: Raw signature width in bytes (modulus size).
    """
    vo = result.vo
    parts = [
        encode_uint(sig_len),
        bytes([_FORMAT_TAGS[vo.format]]),
        bytes([_POLICY_TAGS[vo.policy]]),
        encode_uint(vo.envelope_height),
        encode_value(result.table),
        encode_value(result.key_column),
        encode_values(result.columns),
        encode_values(result.all_columns),
        encode_uint(len(result.rows)),
    ]
    for row in result.rows:
        parts.append(encode_values(row))
    parts.append(encode_values(result.keys))
    parts.append(vo.top_signed.to_bytes(sig_len))
    parts.append(encode_uint(len(vo.selection_entries)))
    for entry in vo.selection_entries:
        parts.append(_encode_entry(entry, vo.format, sig_len))
    parts.append(encode_uint(len(vo.projection_entries)))
    for entry in vo.projection_entries:
        parts.append(_encode_entry(entry, vo.format, sig_len))
    if vo.format is VOFormat.STRUCTURED:
        positions = vo.result_positions or []
        parts.append(encode_uint(len(positions)))
        for path, slot in positions:
            parts.append(_encode_path(tuple(path)) + encode_uint(slot))
    return b"".join(parts)


def result_from_bytes(data: bytes) -> AuthenticatedResult:
    """Parse the serialization produced by :func:`result_to_bytes`."""
    sig_len, offset = decode_uint(data, 0)
    fmt = _FORMAT_FROM_TAG.get(data[offset])
    policy = _POLICY_FROM_TAG.get(data[offset + 1])
    if fmt is None or policy is None:
        raise VOFormatError("unknown format/policy tags")
    offset += 2
    envelope_height, offset = decode_uint(data, offset)
    table, offset = decode_value(data, offset)
    key_column, offset = decode_value(data, offset)
    columns, offset = decode_values(data, offset)
    all_columns, offset = decode_values(data, offset)
    row_count, offset = decode_uint(data, offset)
    rows = []
    for _ in range(row_count):
        values, offset = decode_values(data, offset)
        rows.append(tuple(values))
    keys, offset = decode_values(data, offset)
    top_signed = SignedDigest.from_bytes(
        data[offset : offset + sig_len + 2], sig_len
    )
    offset += sig_len + 2
    ds_count, offset = decode_uint(data, offset)
    selection = []
    for _ in range(ds_count):
        entry, offset = _decode_entry(data, offset, fmt, sig_len)
        selection.append(entry)
    dp_count, offset = decode_uint(data, offset)
    projection = []
    for _ in range(dp_count):
        entry, offset = _decode_entry(data, offset, fmt, sig_len)
        projection.append(entry)
    positions = None
    if fmt is VOFormat.STRUCTURED:
        pos_count, offset = decode_uint(data, offset)
        positions = []
        for _ in range(pos_count):
            path, offset = _decode_path(data, offset)
            slot, offset = decode_uint(data, offset)
            positions.append((path, slot))
    if offset != len(data):
        raise VOFormatError(f"{len(data) - offset} trailing bytes")
    vo = VerificationObject(
        format=fmt,
        policy=policy,
        table=table,
        top_signed=top_signed,
        selection_entries=selection,
        projection_entries=projection,
        result_positions=positions,
        envelope_height=envelope_height,
    )
    return AuthenticatedResult(
        table=table,
        columns=tuple(columns),
        all_columns=tuple(all_columns),
        key_column=key_column,
        rows=rows,
        keys=keys,
        vo=vo,
    )


def wire_breakdown(result: AuthenticatedResult, sig_len: int) -> dict[str, int]:
    """Byte counts per component — the measured analogue of formula (9).

    Keys: ``data`` (result tuple values), ``keys``, ``dn``, ``ds``,
    ``dp``, ``structure`` (positions and tags), ``header``, ``total``.
    """
    vo = result.vo
    data_bytes = sum(len(encode_values(row)) for row in result.rows)
    key_bytes = len(encode_values(result.keys))
    dn_bytes = sig_len + 2
    ds_sig = vo.num_selection_digests * (sig_len + 2 + 1)
    dp_sig = vo.num_projection_digests * (sig_len + 2 + 1)
    total = len(result_to_bytes(result, sig_len))
    header = (
        4 + 2 + 4
        + len(encode_value(result.table))
        + len(encode_value(result.key_column))
        + len(encode_values(result.columns))
        + len(encode_values(result.all_columns))
        + 4  # row count
        + 4 + 4  # D_S / D_P counts
    )
    structure = total - data_bytes - key_bytes - dn_bytes - ds_sig - dp_sig - header
    return {
        "data": data_bytes,
        "keys": key_bytes,
        "dn": dn_bytes,
        "ds": ds_sig,
        "dp": dp_sig,
        "structure": structure,
        "header": header,
        "total": total,
    }
