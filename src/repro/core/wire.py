"""Wire format for authenticated results — exact byte accounting.

The communication-cost experiments (Figures 10-11) need real byte
counts from the running system, so authenticated results serialize to a
deterministic binary format and the benches measure ``len(bytes)``.

Layout (all integers big-endian, lengths 4 bytes):

    header   : sig_len | format | policy | envelope_height
               table | key_column | columns | all_columns
    rows     : count, then each row's values (canonical encoding)
    keys     : values
    vo       : top_signed
               D_S count, entries
               D_P count, entries
               result positions (STRUCTURED only)

Entries carry positional tags only in the STRUCTURED format, which is
exactly the encoding-size difference between the two formats that the
``bench_ablation_granularity`` bench reports.
"""

from __future__ import annotations

from typing import Any

from repro.core.delta import (
    DeltaOpKind,
    NodeDigestUpdate,
    ReplicaDelta,
    TupleOp,
)
from repro.core.digests import DigestPolicy
from repro.core.vo import (
    AuthenticatedResult,
    VerificationObject,
    VOEntry,
    VOEntryKind,
    VOFormat,
)
from repro.crypto.encoding import (
    decode_uint,
    decode_value,
    decode_values,
    encode_uint,
    encode_value,
    encode_values,
)
from repro.crypto.signatures import SignedDigest
from repro.exceptions import EncodingError, ReplicaDeltaError, VOFormatError

__all__ = [
    "result_to_bytes",
    "result_from_bytes",
    "wire_breakdown",
    "delta_body_bytes",
    "delta_to_bytes",
    "delta_from_bytes",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "predicate_to_bytes",
    "predicate_from_bytes",
]

_FORMAT_TAGS = {VOFormat.FLAT_SET: 0, VOFormat.STRUCTURED: 1}
_FORMAT_FROM_TAG = {v: k for k, v in _FORMAT_TAGS.items()}
_POLICY_TAGS = {DigestPolicy.FLATTENED: 0, DigestPolicy.NESTED: 1}
_POLICY_FROM_TAG = {v: k for k, v in _POLICY_TAGS.items()}
_KIND_TAGS = {VOEntryKind.NODE: 0, VOEntryKind.TUPLE: 1, VOEntryKind.ATTRIBUTE: 2}
_KIND_FROM_TAG = {v: k for k, v in _KIND_TAGS.items()}


def _encode_path(path: tuple[int, ...]) -> bytes:
    return encode_uint(len(path)) + b"".join(encode_uint(p) for p in path)


def _decode_path(data: bytes, offset: int) -> tuple[tuple[int, ...], int]:
    count, offset = decode_uint(data, offset)
    path = []
    for _ in range(count):
        p, offset = decode_uint(data, offset)
        path.append(p)
    return tuple(path), offset


def _encode_entry(entry: VOEntry, fmt: VOFormat, sig_len: int) -> bytes:
    out = bytes([_KIND_TAGS[entry.kind]]) + entry.signed.to_bytes(sig_len)
    if fmt is VOFormat.FLAT_SET:
        return out
    if entry.kind is VOEntryKind.ATTRIBUTE:
        if entry.row_index is None or entry.attr_index is None:
            raise VOFormatError("structured attribute entry missing tags")
        return out + encode_uint(entry.row_index) + encode_uint(entry.attr_index)
    if entry.path is None or entry.slot is None:
        raise VOFormatError("structured entry missing position tags")
    return out + _encode_path(entry.path) + encode_uint(entry.slot)


def _decode_entry(
    data: bytes, offset: int, fmt: VOFormat, sig_len: int
) -> tuple[VOEntry, int]:
    kind = _KIND_FROM_TAG.get(data[offset])
    if kind is None:
        raise VOFormatError(f"unknown VO entry kind tag {data[offset]}")
    offset += 1
    signed = SignedDigest.from_bytes(data[offset : offset + sig_len + 2], sig_len)
    offset += sig_len + 2
    if fmt is VOFormat.FLAT_SET:
        return VOEntry(kind=kind, signed=signed), offset
    if kind is VOEntryKind.ATTRIBUTE:
        row_index, offset = decode_uint(data, offset)
        attr_index, offset = decode_uint(data, offset)
        return (
            VOEntry(
                kind=kind, signed=signed, row_index=row_index, attr_index=attr_index
            ),
            offset,
        )
    path, offset = _decode_path(data, offset)
    slot, offset = decode_uint(data, offset)
    return VOEntry(kind=kind, signed=signed, path=path, slot=slot), offset


def result_to_bytes(result: AuthenticatedResult, sig_len: int) -> bytes:
    """Serialize an authenticated result.

    Args:
        result: The result + VO to encode.
        sig_len: Raw signature width in bytes (modulus size).
    """
    vo = result.vo
    parts = [
        encode_uint(sig_len),
        bytes([_FORMAT_TAGS[vo.format]]),
        bytes([_POLICY_TAGS[vo.policy]]),
        encode_uint(vo.envelope_height),
        encode_value(result.table),
        encode_value(result.key_column),
        encode_values(result.columns),
        encode_values(result.all_columns),
        encode_uint(len(result.rows)),
    ]
    for row in result.rows:
        parts.append(encode_values(row))
    parts.append(encode_values(result.keys))
    parts.append(vo.top_signed.to_bytes(sig_len))
    parts.append(encode_uint(len(vo.selection_entries)))
    for entry in vo.selection_entries:
        parts.append(_encode_entry(entry, vo.format, sig_len))
    parts.append(encode_uint(len(vo.projection_entries)))
    for entry in vo.projection_entries:
        parts.append(_encode_entry(entry, vo.format, sig_len))
    if vo.format is VOFormat.STRUCTURED:
        positions = vo.result_positions or []
        parts.append(encode_uint(len(positions)))
        for path, slot in positions:
            parts.append(_encode_path(tuple(path)) + encode_uint(slot))
    return b"".join(parts)


def result_from_bytes(data: bytes) -> AuthenticatedResult:
    """Parse the serialization produced by :func:`result_to_bytes`."""
    sig_len, offset = decode_uint(data, 0)
    fmt = _FORMAT_FROM_TAG.get(data[offset])
    policy = _POLICY_FROM_TAG.get(data[offset + 1])
    if fmt is None or policy is None:
        raise VOFormatError("unknown format/policy tags")
    offset += 2
    envelope_height, offset = decode_uint(data, offset)
    table, offset = decode_value(data, offset)
    key_column, offset = decode_value(data, offset)
    columns, offset = decode_values(data, offset)
    all_columns, offset = decode_values(data, offset)
    row_count, offset = decode_uint(data, offset)
    rows = []
    for _ in range(row_count):
        values, offset = decode_values(data, offset)
        rows.append(tuple(values))
    keys, offset = decode_values(data, offset)
    top_signed = SignedDigest.from_bytes(
        data[offset : offset + sig_len + 2], sig_len
    )
    offset += sig_len + 2
    ds_count, offset = decode_uint(data, offset)
    selection = []
    for _ in range(ds_count):
        entry, offset = _decode_entry(data, offset, fmt, sig_len)
        selection.append(entry)
    dp_count, offset = decode_uint(data, offset)
    projection = []
    for _ in range(dp_count):
        entry, offset = _decode_entry(data, offset, fmt, sig_len)
        projection.append(entry)
    positions = None
    if fmt is VOFormat.STRUCTURED:
        pos_count, offset = decode_uint(data, offset)
        positions = []
        for _ in range(pos_count):
            path, offset = _decode_path(data, offset)
            slot, offset = decode_uint(data, offset)
            positions.append((path, slot))
    if offset != len(data):
        raise VOFormatError(f"{len(data) - offset} trailing bytes")
    vo = VerificationObject(
        format=fmt,
        policy=policy,
        table=table,
        top_signed=top_signed,
        selection_entries=selection,
        projection_entries=projection,
        result_positions=positions,
        envelope_height=envelope_height,
    )
    return AuthenticatedResult(
        table=table,
        columns=tuple(columns),
        all_columns=tuple(all_columns),
        key_column=key_column,
        rows=rows,
        keys=keys,
        vo=vo,
    )


def wire_breakdown(result: AuthenticatedResult, sig_len: int) -> dict[str, int]:
    """Byte counts per component — the measured analogue of formula (9).

    Keys: ``data`` (result tuple values), ``keys``, ``dn``, ``ds``,
    ``dp``, ``structure`` (positions and tags), ``header``, ``total``.
    """
    vo = result.vo
    data_bytes = sum(len(encode_values(row)) for row in result.rows)
    key_bytes = len(encode_values(result.keys))
    dn_bytes = sig_len + 2
    ds_sig = vo.num_selection_digests * (sig_len + 2 + 1)
    dp_sig = vo.num_projection_digests * (sig_len + 2 + 1)
    total = len(result_to_bytes(result, sig_len))
    header = (
        4 + 2 + 4
        + len(encode_value(result.table))
        + len(encode_value(result.key_column))
        + len(encode_values(result.columns))
        + len(encode_values(result.all_columns))
        + 4  # row count
        + 4 + 4  # D_S / D_P counts
    )
    structure = total - data_bytes - key_bytes - dn_bytes - ds_sig - dp_sig - header
    return {
        "data": data_bytes,
        "keys": key_bytes,
        "dn": dn_bytes,
        "ds": ds_sig,
        "dp": dp_sig,
        "structure": structure,
        "header": header,
        "total": total,
    }


# ---------------------------------------------------------------------------
# Replica deltas (DESIGN.md section 6) — replication bytes are measured
# with the same encoding primitives as query VOs, so clone-vs-delta
# comparisons are apples-to-apples.
# ---------------------------------------------------------------------------

_OP_TAGS = {DeltaOpKind.INSERT: 0, DeltaOpKind.DELETE: 1}
_OP_FROM_TAG = {v: k for k, v in _OP_TAGS.items()}

# Tree search keys are scalars for primary VB-trees but composite
# ``(attribute, primary key)`` tuples for secondary VB-trees.
_KEY_SCALAR = 0
_KEY_COMPOSITE = 1


def _encode_key(key: Any) -> bytes:
    if isinstance(key, tuple):
        return bytes([_KEY_COMPOSITE]) + encode_values(key)
    return bytes([_KEY_SCALAR]) + encode_value(key)


def _decode_key(data: bytes, offset: int) -> tuple[Any, int]:
    flag = data[offset]
    offset += 1
    if flag == _KEY_COMPOSITE:
        values, offset = decode_values(data, offset)
        return tuple(values), offset
    if flag == _KEY_SCALAR:
        return decode_value(data, offset)
    raise EncodingError(f"unknown key flag {flag}")


def _encode_tuple_op(op: TupleOp, sig_len: int) -> bytes:
    out = [bytes([_OP_TAGS[op.kind]])]
    if op.kind is DeltaOpKind.INSERT:
        if (
            op.values is None
            or op.attribute_values is None
            or op.tuple_value is None
            or op.signed_tuple is None
            or op.signed_attrs is None
        ):
            raise ReplicaDeltaError("insert op missing digest material")
        out.append(encode_values(op.values))
        out.append(encode_values(op.attribute_values))
        out.append(encode_value(op.tuple_value))
        out.append(op.signed_tuple.to_bytes(sig_len))
        out.append(encode_uint(len(op.signed_attrs)))
        for signed in op.signed_attrs:
            out.append(signed.to_bytes(sig_len))
    else:
        out.append(_encode_key(op.key))
    return b"".join(out)


def _decode_tuple_op(
    data: bytes, offset: int, sig_len: int
) -> tuple[TupleOp, int]:
    kind = _OP_FROM_TAG.get(data[offset])
    if kind is None:
        raise EncodingError(f"unknown delta op tag {data[offset]}")
    offset += 1
    if kind is DeltaOpKind.DELETE:
        key, offset = _decode_key(data, offset)
        return TupleOp.delete(key), offset
    values, offset = decode_values(data, offset)
    attr_values, offset = decode_values(data, offset)
    tuple_value, offset = decode_value(data, offset)
    signed_tuple = SignedDigest.from_bytes(
        data[offset : offset + sig_len + 2], sig_len
    )
    offset += sig_len + 2
    attr_count, offset = decode_uint(data, offset)
    signed_attrs = []
    for _ in range(attr_count):
        signed_attrs.append(
            SignedDigest.from_bytes(data[offset : offset + sig_len + 2], sig_len)
        )
        offset += sig_len + 2
    op = TupleOp(
        kind=DeltaOpKind.INSERT,
        values=tuple(values),
        attribute_values=tuple(attr_values),
        tuple_value=tuple_value,
        signed_tuple=signed_tuple,
        signed_attrs=tuple(signed_attrs),
    )
    return op, offset


def _encode_node_update(update: NodeDigestUpdate, sig_len: int) -> bytes:
    return (
        encode_uint(update.node_id)
        + encode_value(update.value)
        + update.signed.to_bytes(sig_len)
        + encode_value(update.display)
        + update.signed_display.to_bytes(sig_len)
    )


def _decode_node_update(
    data: bytes, offset: int, sig_len: int
) -> tuple[NodeDigestUpdate, int]:
    node_id, offset = decode_uint(data, offset)
    value, offset = decode_value(data, offset)
    signed = SignedDigest.from_bytes(data[offset : offset + sig_len + 2], sig_len)
    offset += sig_len + 2
    display, offset = decode_value(data, offset)
    signed_display = SignedDigest.from_bytes(
        data[offset : offset + sig_len + 2], sig_len
    )
    offset += sig_len + 2
    return (
        NodeDigestUpdate(
            node_id=node_id,
            value=value,
            signed=signed,
            display=display,
            signed_display=signed_display,
        ),
        offset,
    )


def delta_body_bytes(delta: ReplicaDelta, sig_len: int) -> bytes:
    """Serialize a delta's signed portion (everything but the signature).

    The LSN range, epoch and versions are inside the body, so the
    central server's signature binds them — a replayed or renumbered
    delta cannot carry a valid signature.
    """
    parts = [
        encode_uint(sig_len),
        encode_value(delta.table),
        encode_uint(delta.lsn_first),
        encode_uint(delta.lsn_last),
        encode_uint(delta.epoch),
        encode_uint(delta.base_version),
        encode_uint(delta.new_version),
        bytes([1 if delta.structural else 0]),
        encode_uint(len(delta.ops)),
    ]
    for op in delta.ops:
        parts.append(_encode_tuple_op(op, sig_len))
    parts.append(encode_uint(len(delta.node_updates)))
    for update in delta.node_updates:
        parts.append(_encode_node_update(update, sig_len))
    parts.append(encode_uint(len(delta.freed_nodes)))
    for node_id in delta.freed_nodes:
        parts.append(encode_uint(node_id))
    return b"".join(parts)


def delta_to_bytes(delta: ReplicaDelta, sig_len: int) -> bytes:
    """Serialize a sealed delta: body followed by the body signature.

    Raises:
        ReplicaDeltaError: If the delta has not been signed.
    """
    if delta.signature is None:
        raise ReplicaDeltaError("cannot serialize an unsigned delta")
    return delta_body_bytes(delta, sig_len) + delta.signature.to_bytes(sig_len)


def delta_from_bytes(data: bytes) -> ReplicaDelta:
    """Parse the serialization produced by :func:`delta_to_bytes`.

    Parsing performs **no** authentication; callers must verify the
    signature over :func:`delta_body_bytes` of the parsed delta (the
    encoding is canonical, so re-serializing reproduces the body).
    """
    sig_len, offset = decode_uint(data, 0)
    table, offset = decode_value(data, offset)
    lsn_first, offset = decode_uint(data, offset)
    lsn_last, offset = decode_uint(data, offset)
    epoch, offset = decode_uint(data, offset)
    base_version, offset = decode_uint(data, offset)
    new_version, offset = decode_uint(data, offset)
    structural = bool(data[offset])
    offset += 1
    op_count, offset = decode_uint(data, offset)
    ops = []
    for _ in range(op_count):
        op, offset = _decode_tuple_op(data, offset, sig_len)
        ops.append(op)
    update_count, offset = decode_uint(data, offset)
    updates = []
    for _ in range(update_count):
        update, offset = _decode_node_update(data, offset, sig_len)
        updates.append(update)
    freed_count, offset = decode_uint(data, offset)
    freed = []
    for _ in range(freed_count):
        node_id, offset = decode_uint(data, offset)
        freed.append(node_id)
    signature = SignedDigest.from_bytes(
        data[offset : offset + sig_len + 2], sig_len
    )
    offset += sig_len + 2
    if offset != len(data):
        raise EncodingError(f"{len(data) - offset} trailing delta bytes")
    return ReplicaDelta(
        table=table,
        lsn_first=lsn_first,
        lsn_last=lsn_last,
        epoch=epoch,
        base_version=base_version,
        new_version=new_version,
        structural=structural,
        ops=tuple(ops),
        node_updates=tuple(updates),
        freed_nodes=tuple(freed),
        signature=signature,
    )


def _encode_schema(schema) -> bytes:
    """Serialize a table schema (name, key column, typed columns)."""
    parts = [
        encode_value(schema.name),
        encode_value(schema.key),
        encode_uint(schema.num_columns),
    ]
    for column in schema.columns:
        parts.append(encode_value(column.name))
        parts.append(encode_value(column.type.name))
        parts.append(encode_value(getattr(column.type, "capacity", None)))
    return b"".join(parts)


def _decode_schema(data: bytes, offset: int):
    from repro.db.schema import Column, TableSchema
    from repro.db.types import type_from_name

    name, offset = decode_value(data, offset)
    key, offset = decode_value(data, offset)
    count, offset = decode_uint(data, offset)
    columns = []
    for _ in range(count):
        col_name, offset = decode_value(data, offset)
        type_name, offset = decode_value(data, offset)
        capacity, offset = decode_value(data, offset)
        columns.append(Column(col_name, type_from_name(type_name, capacity)))
    return TableSchema(name, tuple(columns), key=key), offset


def snapshot_to_bytes(vbtree, sig_len: int) -> bytes:
    """Serialize a full VB-tree replica: the snapshot-transfer wire cost.

    This is what a full resync (edge bootstrap, log gap, key rotation)
    ships, and what the seed's per-update clone propagation effectively
    shipped on *every* mutation — the honest baseline for
    ``benchmarks/bench_replication.py``.  The format is self-describing
    (schema, tree geometry, node-id counter) so an edge server can
    reconstruct the replica from bytes alone — see
    :func:`snapshot_from_bytes` — without sharing any Python objects
    with the central server.  Layout: header, pre-order node structure
    (ids, keys, child ids, signed digests), per-row values + signed
    tuple digests.
    """
    from repro.core.secondary import SecondaryVBTree

    geometry = vbtree.geometry
    parts = [
        encode_uint(sig_len),
        encode_value(vbtree.table_name),
        encode_uint(vbtree.version),
        _encode_schema(vbtree.schema),
        encode_value(
            vbtree.attribute if isinstance(vbtree, SecondaryVBTree) else None
        ),
        encode_uint(geometry.block_size),
        encode_uint(geometry.key_len),
        encode_uint(geometry.pointer_len),
        encode_uint(geometry.digest_len),
        encode_uint(vbtree.tree.max_children),
        encode_uint(vbtree.tree.leaf_capacity),
        encode_uint(vbtree.tree._next_node_id),
    ]
    nodes = list(vbtree.tree.walk_nodes())
    parts.append(encode_uint(len(nodes)))
    for node in nodes:
        parts.append(encode_uint(node.node_id))
        parts.append(bytes([1 if node.is_leaf else 0]))
        parts.append(encode_uint(len(node.keys)))
        for key in node.keys:
            parts.append(_encode_key(key))
        if not node.is_leaf:
            for child in node.children:
                parts.append(encode_uint(child.node_id))
        auth = vbtree.node_auth(node)
        parts.append(encode_value(auth.value))
        parts.append(auth.signed.to_bytes(sig_len))
        parts.append(encode_value(auth.display))
        parts.append(auth.signed_display.to_bytes(sig_len))
    parts.append(encode_uint(len(vbtree.tree)))
    for key, row in vbtree.tree.items():
        parts.append(_encode_key(key))
        parts.append(encode_values(row.values))
        auth = vbtree.tuple_auth(key)
        parts.append(encode_values(auth.digests.attribute_values))
        parts.append(encode_value(auth.digests.tuple_value))
        parts.append(auth.signed_tuple.to_bytes(sig_len))
        parts.append(encode_uint(len(auth.signed_attrs)))
        for signed in auth.signed_attrs:
            parts.append(signed.to_bytes(sig_len))
    return b"".join(parts)


def snapshot_from_bytes(data: bytes, signing):
    """Reconstruct a replica VB-tree from :func:`snapshot_to_bytes`.

    Args:
        data: The serialized snapshot.
        signing: Digest context to install on the replica — on an edge
            server a
            :class:`~repro.core.digests.VerifyOnlyDigestEngine` (the
            replica must never hold a private key).

    The reconstruction is exact: node ids, the node-id counter, and the
    tree geometry are restored byte-for-byte so that replaying deltas
    against the replica reproduces the central server's structural
    changes (DESIGN.md section 6's determinism argument).

    Raises:
        EncodingError: On a malformed payload.
    """
    from repro.core.digests import TupleDigests
    from repro.core.secondary import SecondaryVBTree
    from repro.core.vbtree import NodeAuth, TupleAuth, VBTree
    from repro.db.btree import BPlusTree, InternalNode, LeafNode
    from repro.db.page import PageGeometry
    from repro.db.rows import Row

    sig_len, offset = decode_uint(data, 0)
    table_name, offset = decode_value(data, offset)
    version, offset = decode_uint(data, offset)
    schema, offset = _decode_schema(data, offset)
    attribute, offset = decode_value(data, offset)
    block_size, offset = decode_uint(data, offset)
    key_len, offset = decode_uint(data, offset)
    pointer_len, offset = decode_uint(data, offset)
    digest_len, offset = decode_uint(data, offset)
    max_children, offset = decode_uint(data, offset)
    leaf_capacity, offset = decode_uint(data, offset)
    next_node_id, offset = decode_uint(data, offset)

    tree = BPlusTree.__new__(BPlusTree)
    tree.geometry = PageGeometry(
        block_size=block_size,
        key_len=key_len,
        pointer_len=pointer_len,
        digest_len=digest_len,
    )
    tree.max_children = max_children
    tree.leaf_capacity = leaf_capacity
    tree._next_node_id = next_node_id
    tree.io_reads = 0

    node_count, offset = decode_uint(data, offset)
    nodes: dict[int, Any] = {}
    order: list[Any] = []
    child_ids: dict[int, list[int]] = {}
    node_auths: dict[int, NodeAuth] = {}
    for _ in range(node_count):
        node_id, offset = decode_uint(data, offset)
        is_leaf = bool(data[offset])
        offset += 1
        key_count, offset = decode_uint(data, offset)
        keys = []
        for _ in range(key_count):
            key, offset = _decode_key(data, offset)
            keys.append(key)
        node = LeafNode(node_id) if is_leaf else InternalNode(node_id)
        node.keys = keys
        if not is_leaf:
            ids = []
            for _ in range(key_count + 1):
                cid, offset = decode_uint(data, offset)
                ids.append(cid)
            child_ids[node_id] = ids
        value, offset = decode_value(data, offset)
        signed = SignedDigest.from_bytes(
            data[offset : offset + sig_len + 2], sig_len
        )
        offset += sig_len + 2
        display, offset = decode_value(data, offset)
        signed_display = SignedDigest.from_bytes(
            data[offset : offset + sig_len + 2], sig_len
        )
        offset += sig_len + 2
        node_auths[node_id] = NodeAuth(
            value=value,
            signed=signed,
            display=display,
            signed_display=signed_display,
        )
        nodes[node_id] = node
        order.append(node)
    if not order:
        raise EncodingError("snapshot carries no nodes")
    for node in order:
        if node.is_leaf:
            continue
        for cid in child_ids[node.node_id]:
            try:
                child = nodes[cid]
            except KeyError:
                raise EncodingError(
                    f"snapshot references unknown child node {cid}"
                ) from None
            node.children.append(child)
            child.parent = node
    # Pre-order over an ordered B+-tree visits leaves left-to-right;
    # rebuild the leaf chain from that order.
    leaves = [n for n in order if n.is_leaf]
    for prev, cur in zip(leaves, leaves[1:], strict=False):
        prev.next_leaf = cur
        cur.prev_leaf = prev
    tree._root = order[0]

    row_count, offset = decode_uint(data, offset)
    tree._size = row_count
    row_map: dict[Any, Row] = {}
    tuple_auth: dict[Any, TupleAuth] = {}
    for _ in range(row_count):
        key, offset = _decode_key(data, offset)
        values, offset = decode_values(data, offset)
        attr_values, offset = decode_values(data, offset)
        tuple_value, offset = decode_value(data, offset)
        signed_tuple = SignedDigest.from_bytes(
            data[offset : offset + sig_len + 2], sig_len
        )
        offset += sig_len + 2
        attr_count, offset = decode_uint(data, offset)
        signed_attrs = []
        for _ in range(attr_count):
            signed_attrs.append(
                SignedDigest.from_bytes(
                    data[offset : offset + sig_len + 2], sig_len
                )
            )
            offset += sig_len + 2
        row = Row(schema, tuple(values))
        row_map[key] = row
        tuple_auth[key] = TupleAuth(
            digests=TupleDigests(
                attribute_values=tuple(attr_values),
                tuple_value=tuple_value,
            ),
            signed_tuple=signed_tuple,
            signed_attrs=tuple(signed_attrs),
        )
    if offset != len(data):
        raise EncodingError(f"{len(data) - offset} trailing snapshot bytes")
    for leaf in leaves:
        try:
            leaf.values = [row_map[k] for k in leaf.keys]
        except KeyError as exc:
            raise EncodingError(
                f"snapshot leaf references unknown row key {exc}"
            ) from None

    if attribute is not None:
        vbt = SecondaryVBTree.__new__(SecondaryVBTree)
        vbt.attribute = attribute
        attr_index = schema.column_index(attribute)
        vbt.key_of = lambda row: (row.values[attr_index], row.key)
    else:
        vbt = VBTree.__new__(VBTree)
        vbt.key_of = lambda row: row.key
    vbt.schema = schema
    vbt.signing = signing
    vbt.geometry = tree.geometry
    vbt.tree = tree
    vbt._tuple_auth = tuple_auth
    vbt._node_auth = node_auths
    vbt.version = version
    if schema.name != table_name and attribute is None:
        raise EncodingError(
            f"snapshot table {table_name!r} does not match schema "
            f"{schema.name!r}"
        )
    return vbt


# ---------------------------------------------------------------------------
# Predicates — serialized inside query-request transport frames so that
# edge servers can answer general selections without sharing Python
# objects with the client.
# ---------------------------------------------------------------------------

_PRED_TRUE = 0
_PRED_COMPARISON = 1
_PRED_AND = 2
_PRED_OR = 3
_PRED_NOT = 4


def predicate_to_bytes(predicate) -> bytes:
    """Serialize a :class:`~repro.db.expressions.Predicate` tree.

    Raises:
        EncodingError: For predicate types outside the built-in algebra
            (``AlwaysTrue``/``Comparison``/``And``/``Or``/``Not``).
    """
    from repro.db.expressions import AlwaysTrue, And, Comparison, Not, Or

    if isinstance(predicate, AlwaysTrue):
        return bytes([_PRED_TRUE])
    if isinstance(predicate, Comparison):
        return (
            bytes([_PRED_COMPARISON])
            + encode_value(predicate.column)
            + encode_value(predicate.op)
            + encode_value(predicate.value)
        )
    if isinstance(predicate, And):
        return (
            bytes([_PRED_AND])
            + predicate_to_bytes(predicate.left)
            + predicate_to_bytes(predicate.right)
        )
    if isinstance(predicate, Or):
        return (
            bytes([_PRED_OR])
            + predicate_to_bytes(predicate.left)
            + predicate_to_bytes(predicate.right)
        )
    if isinstance(predicate, Not):
        return bytes([_PRED_NOT]) + predicate_to_bytes(predicate.inner)
    raise EncodingError(
        f"cannot serialize predicate of type {type(predicate).__name__}"
    )


def predicate_from_bytes(data: bytes, offset: int = 0):
    """Parse one predicate; returns ``(predicate, new_offset)``."""
    from repro.db.expressions import AlwaysTrue, And, Comparison, Not, Or

    if offset >= len(data):
        raise EncodingError("truncated predicate")
    tag = data[offset]
    offset += 1
    if tag == _PRED_TRUE:
        return AlwaysTrue(), offset
    if tag == _PRED_COMPARISON:
        column, offset = decode_value(data, offset)
        op, offset = decode_value(data, offset)
        value, offset = decode_value(data, offset)
        return Comparison(column, op, value), offset
    if tag in (_PRED_AND, _PRED_OR):
        left, offset = predicate_from_bytes(data, offset)
        right, offset = predicate_from_bytes(data, offset)
        cls = And if tag == _PRED_AND else Or
        return cls(left, right), offset
    if tag == _PRED_NOT:
        inner, offset = predicate_from_bytes(data, offset)
        return Not(inner), offset
    raise EncodingError(f"unknown predicate tag {tag}")
