"""Secondary VB-trees — "one or more verifiable B-trees (VB-tree)" per
base table (Section 1).

The paper's primary VB-tree makes *key* selections contiguous; a
selection on a non-key attribute leaves gaps, and every gap costs a
``D_S`` digest.  A **secondary VB-tree** sorts the same tuples by a
chosen attribute (with the primary key as tie-breaker), so selections
on that attribute become contiguous again and the VO shrinks back to
the boundary-only size of formula (9).

The composite search key is ``(attribute value, primary key)``:

* unique (the primary key breaks ties between equal attribute values);
* range queries on the attribute translate to composite-key ranges
  ``[(low, -inf), (high, +inf)]`` via the :data:`MIN_KEY`/:data:`MAX_KEY`
  sentinels.

The digest material is *identical* to the primary tree's (formulas 1-2
hash the primary key, not the tree position), so a client verifies
secondary-tree results with the same
:class:`~repro.core.verify.ResultVerifier` — no new client code.

This is also where the paper's storage-overhead criticism of Devanbu
et al. bites in reverse: like [5], every additional sort order costs a
full tree; unlike [5], each tree is independently signed per node, so
updates to one do not invalidate readers of another.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.query_auth import QueryAuthenticator
from repro.core.vbtree import VBTree
from repro.core.vo import AuthenticatedResult, VOFormat
from repro.core.digests import SigningDigestEngine
from repro.db.page import PageGeometry
from repro.db.rows import Row
from repro.db.schema import TableSchema
from repro.db.transactions import Transaction
from repro.exceptions import SchemaError

__all__ = [
    "MIN_KEY",
    "MAX_KEY",
    "SecondaryVBTree",
    "SecondaryQueryAuthenticator",
    "secondary_index_name",
]


def secondary_index_name(table: str, attribute: str) -> str:
    """Canonical name of the secondary VB-tree on ``table.attribute``.

    Shared by the central server (which builds and replicates the tree)
    and edge servers (which address it in query frames) so neither side
    needs the other to resolve index names.
    """
    return f"{table}__by_{attribute}"


class _Extreme:
    """A value comparing below (or above) every other value."""

    __slots__ = ("_sign",)

    def __init__(self, sign: int) -> None:
        self._sign = sign

    def __lt__(self, other: Any) -> bool:
        if isinstance(other, _Extreme):
            return self._sign < other._sign
        return self._sign < 0

    def __gt__(self, other: Any) -> bool:
        if isinstance(other, _Extreme):
            return self._sign > other._sign
        return self._sign > 0

    def __le__(self, other: Any) -> bool:
        return self == other or self < other

    def __ge__(self, other: Any) -> bool:
        return self == other or self > other

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _Extreme) and other._sign == self._sign

    def __hash__(self) -> int:
        return hash(("_Extreme", self._sign))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "MIN_KEY" if self._sign < 0 else "MAX_KEY"


#: Compares below every primary-key value (composite range low end).
MIN_KEY = _Extreme(-1)
#: Compares above every primary-key value (composite range high end).
MAX_KEY = _Extreme(+1)


class SecondaryVBTree(VBTree):
    """A VB-tree sorted by a non-key attribute.

    Args:
        schema: The base table's schema.
        attribute: The (orderable) column to sort by.
        signing: The central server's signing engine.
    """

    def __init__(
        self,
        schema: TableSchema,
        attribute: str,
        signing: SigningDigestEngine,
        geometry: PageGeometry | None = None,
        fanout_override: int | None = None,
    ) -> None:
        column = schema.column(attribute)
        if not column.type.orderable:
            raise SchemaError(
                f"cannot build a secondary VB-tree on non-orderable "
                f"column {attribute!r} ({column.type})"
            )
        if attribute == schema.key:
            raise SchemaError(
                "the primary key already has the primary VB-tree"
            )
        attr_index = schema.column_index(attribute)
        composite_len = column.type.byte_width() + schema.key_type.byte_width()
        super().__init__(
            schema,
            signing,
            geometry=geometry,
            fanout_override=fanout_override,
            key_func=lambda row: (row.values[attr_index], row.key),
            key_len=composite_len,
        )
        self.attribute = attribute

    @classmethod
    def build_on(
        cls,
        schema: TableSchema,
        attribute: str,
        rows,
        signing: SigningDigestEngine,
        geometry: PageGeometry | None = None,
        fanout_override: int | None = None,
    ) -> "SecondaryVBTree":
        """Bulk-build a secondary VB-tree over ``rows``."""
        tree = cls(
            schema,
            attribute,
            signing,
            geometry=geometry,
            fanout_override=fanout_override,
        )
        for row in rows:
            tree.tree.insert(tree.key_of(row), row)
            tree._store_tuple(row)
        tree.recompute_all_nodes()
        return tree


class SecondaryQueryAuthenticator(QueryAuthenticator):
    """Query authenticator whose range queries address the sort
    attribute instead of the primary key."""

    def __init__(
        self,
        vbtree: SecondaryVBTree,
        default_format: VOFormat | None = None,
    ) -> None:
        if not isinstance(vbtree, SecondaryVBTree):
            raise SchemaError(
                "SecondaryQueryAuthenticator requires a SecondaryVBTree"
            )
        super().__init__(vbtree, default_format=default_format)

    def range_query(
        self,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
        txn: Transaction | None = None,
    ) -> AuthenticatedResult:
        """Selection ``low <= attribute <= high`` — contiguous in this
        tree, so the envelope has no interior gaps."""
        tree_low = None if low is None else (low, MIN_KEY)
        tree_high = None if high is None else (high, MAX_KEY)
        rows = [
            row
            for _k, row in self.vbtree.tree.range_items(
                low=tree_low, high=tree_high
            )
        ]
        return self._build_result(rows, columns, vo_format, txn)
