"""Digest computation — formulas (1), (2), (3) of the paper.

Two digest *policies* are provided (see DESIGN.md, deviation D3, for the
full discussion):

* :attr:`DigestPolicy.FLATTENED` — our reading of the paper's actual
  scheme.  With the commutative hash ``h(x) = g^x mod n``, the digest
  value that propagates upward is the **exponent product**:

  - attribute value   ``a = h_base(db|table|attr|key|value)``
  - tuple exponent    ``y_T = ∏_j a_j  (mod n)``
  - node exponent     ``x_N = ∏_child (child exponent)  (mod n)``
    (a leaf's children are tuple exponents, an internal node's are the
    child nodes' exponents)
  - display digest    ``U_N = g^{x_N} mod n`` — what Lemma 1's equation
    compares against.

  Because every constituent multiplies into every ancestor's exponent,
  the verification object can be an **unordered set** of signed values
  (the paper's headline simplicity claim), and inserts fold into each
  node digest with a single multiplication (Section 3.4's cheap insert).

* :attr:`DigestPolicy.NESTED` — the conservative hash-of-hashes reading
  (à la Merkle): ``t = H(a_1,…,a_m)``, ``n = H(child digests)``.  Upward
  flattening is impossible, so verification objects must carry node
  grouping (structured VO) and ancestor digests must be recomputed on
  insert.  Included as the baseline reading and for ablations.

The :class:`DigestEngine` computes unsigned values; the central server
signs them through :class:`SigningDigestEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Sequence

from repro.crypto.commutative import CommutativeHash, ExponentialCommutativeHash
from repro.crypto.encoding import digest_input
from repro.crypto.meter import CostMeter, NULL_METER
from repro.crypto.signatures import DigestSigner, SignedDigest
from repro.db.rows import Row
from repro.exceptions import AuthenticationError

__all__ = [
    "DigestPolicy",
    "DigestEngine",
    "SigningDigestEngine",
    "VerifyOnlyDigestEngine",
    "TupleDigests",
]


class DigestPolicy(Enum):
    """How digests propagate up the VB-tree (see module docstring)."""

    FLATTENED = "flattened"
    NESTED = "nested"


@dataclass(frozen=True)
class TupleDigests:
    """All digest material for one tuple.

    Attributes:
        attribute_values: Unsigned attribute digest values, in schema
            column order (formula 1, pre-signature).
        tuple_value: Unsigned tuple digest value (formula 2,
            pre-signature) — the exponent product under FLATTENED, the
            combined hash under NESTED.
    """

    attribute_values: tuple[int, ...]
    tuple_value: int


class DigestEngine:
    """Computes unsigned digest values for attributes, tuples, nodes.

    Args:
        db_name: Database name bound into every attribute digest.
        commutative: The commutative hash (paper default
            :class:`~repro.crypto.commutative.ExponentialCommutativeHash`).
        policy: FLATTENED (paper) or NESTED (hash-of-hashes).
        meter: Cost meter for the computation-cost benches.

    Note:
        FLATTENED semantics require the exponential combinator, whose
        modulus provides the exponent ring; other combinators only admit
        NESTED.
    """

    def __init__(
        self,
        db_name: str,
        commutative: CommutativeHash | None = None,
        policy: DigestPolicy = DigestPolicy.FLATTENED,
        meter: CostMeter = NULL_METER,
    ) -> None:
        self.db_name = db_name
        self.meter = meter
        self.commutative = commutative or ExponentialCommutativeHash(meter=meter)
        if meter is not NULL_METER and self.commutative.meter is NULL_METER:
            self.commutative.meter = meter
        self.policy = policy
        if policy is DigestPolicy.FLATTENED and not isinstance(
            self.commutative, ExponentialCommutativeHash
        ):
            raise AuthenticationError(
                "FLATTENED digests require the exponential commutative hash"
            )

    # ------------------------------------------------------------------
    # Formula (1): attribute digests
    # ------------------------------------------------------------------

    def attribute_value(
        self, table: str, attr: str, key: Any, value: Any
    ) -> int:
        """Unsigned attribute digest
        ``h(db | table | attr | key | value)``."""
        data = digest_input(self.db_name, table, attr, key, value)
        return self.commutative.digest_of_bytes(data)

    # ------------------------------------------------------------------
    # Formula (2): tuple digests
    # ------------------------------------------------------------------

    def tuple_value(self, attribute_values: Sequence[int]) -> int:
        """Unsigned tuple digest from its attribute digest values."""
        if not attribute_values:
            raise AuthenticationError("a tuple needs at least one attribute")
        if self.policy is DigestPolicy.FLATTENED:
            return self._product(attribute_values)
        return self.commutative.combine(attribute_values)

    def tuple_digests(self, table: str, row: Row) -> TupleDigests:
        """Attribute + tuple digest values for ``row`` (formulas 1-2)."""
        key = row.key
        attr_values = tuple(
            self.attribute_value(table, name, key, value)
            for name, value in zip(row.schema.column_names, row.values, strict=False)
        )
        return TupleDigests(
            attribute_values=attr_values,
            tuple_value=self.tuple_value(attr_values),
        )

    # ------------------------------------------------------------------
    # Formula (3): node digests
    # ------------------------------------------------------------------

    def node_value(self, child_values: Iterable[int]) -> int:
        """Unsigned node digest from child digest values.

        Children of a leaf are tuple values; children of an internal
        node are the child nodes' values.
        """
        values = list(child_values)
        if not values:
            # Only the root of an empty tree; identity element by policy.
            return 1 if self.policy is DigestPolicy.FLATTENED else self.commutative.empty()
        if self.policy is DigestPolicy.FLATTENED:
            return self._product(values)
        return self.commutative.combine(values)

    def fold_into_node(self, node_value: int, tuple_value: int) -> int:
        """The paper's cheap insert: fold a new tuple digest into a node
        digest (Section 3.4).  Only FLATTENED supports this.

        Raises:
            AuthenticationError: Under NESTED (ancestors must recompute).
        """
        if self.policy is not DigestPolicy.FLATTENED:
            raise AuthenticationError(
                "incremental digest folding requires the FLATTENED policy"
            )
        modulus = self.commutative.modulus
        self.meter.count_combine(1)
        return (node_value * (tuple_value | 1)) % modulus

    # ------------------------------------------------------------------
    # Display digests (the `g^x` side of the FLATTENED policy)
    # ------------------------------------------------------------------

    def display_value(self, node_value: int) -> int:
        """The digest a verifier compares against.

        FLATTENED: ``g^{x} mod n`` (Lemma 1's left-hand side).
        NESTED: the node value itself.
        """
        if self.policy is DigestPolicy.FLATTENED:
            exp = self.commutative  # type: ignore[assignment]
            self.meter.count_combine(1)
            return pow(exp.generator, node_value, exp.modulus)
        return node_value

    def _product(self, values: Sequence[int]) -> int:
        """Odd-forced product modulo the hash modulus (exponent ring)."""
        modulus = self.commutative.modulus
        acc = 1
        for v in values:
            if v <= 0:
                raise AuthenticationError("digest values must be positive")
            acc = (acc * (v | 1)) % modulus
        self.meter.count_combine(len(values))
        return acc


class SigningDigestEngine:
    """A :class:`DigestEngine` plus the central server's signer.

    Only the central DBMS holds one of these; edge servers and clients
    get the plain engine plus a verifier.
    """

    def __init__(self, engine: DigestEngine, signer: DigestSigner) -> None:
        self.engine = engine
        self.signer = signer

    @property
    def policy(self) -> DigestPolicy:
        """Digest policy of the wrapped engine."""
        return self.engine.policy

    def sign_value(self, value: int) -> SignedDigest:
        """Sign any digest value (attribute / tuple / node)."""
        return self.signer.sign(value)

    def sign_tuple(self, table: str, row: Row) -> tuple[TupleDigests, SignedDigest, tuple[SignedDigest, ...]]:
        """Digest and sign one tuple.

        Returns:
            ``(digests, signed_tuple, signed_attributes)``.
        """
        digests = self.engine.tuple_digests(table, row)
        signed_attrs = tuple(
            self.signer.sign(v) for v in digests.attribute_values
        )
        signed_tuple = self.signer.sign(digests.tuple_value)
        return digests, signed_tuple, signed_attrs


class _PublicOnlySigner:
    """The shape of a :class:`~repro.crypto.signatures.DigestSigner`
    minus the ability to sign — what an edge replica is allowed to hold."""

    def __init__(self, public_key, epoch: int) -> None:
        self.public_key = public_key
        self.epoch = epoch

    def sign(self, value: int):
        from repro.exceptions import SignatureError

        raise SignatureError(
            "edge servers hold no private key and cannot sign digests"
        )


class VerifyOnlyDigestEngine:
    """Drop-in for :class:`SigningDigestEngine` on *unsecured* replicas.

    Edge-side VB-trees need the digest engine (for geometry, audits, and
    adversary modelling) and the public key of the epoch their material
    was signed under — but must never hold the private key.  Before the
    transport refactor, replica clones shared the central server's full
    :class:`SigningDigestEngine`, private key included; reconstructing
    replicas from serialized snapshots installs one of these instead.
    """

    def __init__(self, engine: DigestEngine, public_key, epoch: int) -> None:
        self.engine = engine
        self.signer = _PublicOnlySigner(public_key, epoch)

    @property
    def policy(self) -> DigestPolicy:
        """Digest policy of the wrapped engine."""
        return self.engine.policy

    def sign_value(self, value: int):
        """Unavailable on replicas.

        Raises:
            SignatureError: Always.
        """
        return self.signer.sign(value)

    def sign_tuple(self, table: str, row: Row):
        """Unavailable on replicas.

        Raises:
            SignatureError: Always.
        """
        return self.signer.sign(0)
