"""Replica deltas — log-shipping replacement for clone propagation.

The paper's Section 3.4 observes that an update touches only the
root-to-leaf digest path, yet the seed implementation shipped a full
VB-tree clone to every edge server on every mutation (O(tree × edges)
bytes per changed row).  This module defines the **ReplicaDelta**: a
structured, signed, wire-serializable record of one (or a coalesced
batch of) mutation(s) that an edge server can apply to its replica in
O(path) work — see DESIGN.md section 6 for the protocol.

A delta carries everything the edge needs and nothing it could forge:

* the tuple operations (inserted row values with their centrally-signed
  tuple/attribute digests; deleted search keys);
* the re-signed digest material of every VB-tree node the mutation
  touched (the root-to-leaf fold path, or the dirty set of a
  split/merge), addressed by stable node id;
* the ids of nodes freed by structural changes;
* a per-table, monotonically increasing **log sequence number** (LSN)
  range and the key epoch, both bound under the central server's
  signature over the serialized body.

Tree *structure* is never shipped: B+-tree mutation is deterministic
(same geometry, same node-id counter — see
:meth:`repro.db.btree.BPlusTree.clone`), so the edge replays the tuple
operations against its own tree and the resulting splits/frees match
the central server's byte-for-byte.  The signed node digests then
overwrite the edge's stale entries; the edge never computes — and could
never sign — a digest itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Any, Sequence

from repro.core.digests import TupleDigests
from repro.core.vbtree import NodeAuth, TupleAuth, VBTree
from repro.crypto.signatures import SignedDigest
from repro.db.rows import Row
from repro.exceptions import ReplicaDeltaError

__all__ = [
    "DeltaOpKind",
    "TupleOp",
    "NodeDigestUpdate",
    "ReplicaDelta",
    "delta_digest",
    "coalesce",
    "apply_delta",
]

#: Bit width of the signed delta-body digest.  240 bits keeps the
#: signing payload (digest · 2^16 + epoch) comfortably below any RSA
#: modulus of >= 264 bits, including the 512-bit simulation keys.
_DELTA_DIGEST_BITS = 240


class DeltaOpKind(Enum):
    """One tuple-level mutation inside a delta."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class TupleOp:
    """One tuple operation.

    For an INSERT the op carries the row values plus the central
    server's signed digest material (the edge cannot sign).  For a
    DELETE it carries only the tree search key — digests of removed
    tuples are dropped, not recomputed.

    Attributes:
        kind: INSERT or DELETE.
        values: Row values in schema column order (INSERT only).
        key: Tree search key (DELETE only; may be a composite tuple for
            secondary VB-trees).
        attribute_values: Unsigned attribute digest values (INSERT).
        tuple_value: Unsigned tuple digest value (INSERT).
        signed_tuple: Signature over ``tuple_value`` (INSERT).
        signed_attrs: Per-attribute signatures (INSERT).
    """

    kind: DeltaOpKind
    values: tuple[Any, ...] | None = None
    key: Any = None
    attribute_values: tuple[int, ...] | None = None
    tuple_value: int | None = None
    signed_tuple: SignedDigest | None = None
    signed_attrs: tuple[SignedDigest, ...] | None = None

    @classmethod
    def insert(cls, row: Row, auth: TupleAuth) -> "TupleOp":
        """Build an INSERT op from a row and its signed digest material."""
        return cls(
            kind=DeltaOpKind.INSERT,
            values=tuple(row.values),
            attribute_values=auth.digests.attribute_values,
            tuple_value=auth.digests.tuple_value,
            signed_tuple=auth.signed_tuple,
            signed_attrs=auth.signed_attrs,
        )

    @classmethod
    def delete(cls, key: Any) -> "TupleOp":
        """Build a DELETE op for the tuple at ``key``."""
        return cls(kind=DeltaOpKind.DELETE, key=key)


@dataclass(frozen=True)
class NodeDigestUpdate:
    """Re-signed digest material for one VB-tree node, by node id."""

    node_id: int
    value: int
    signed: SignedDigest
    display: int
    signed_display: SignedDigest

    @classmethod
    def from_auth(cls, node_id: int, auth: NodeAuth) -> "NodeDigestUpdate":
        """Snapshot a node's current :class:`NodeAuth`."""
        return cls(
            node_id=node_id,
            value=auth.value,
            signed=auth.signed,
            display=auth.display,
            signed_display=auth.signed_display,
        )

    def to_auth(self) -> NodeAuth:
        """The :class:`NodeAuth` to install on a replica."""
        return NodeAuth(
            value=self.value,
            signed=self.signed,
            display=self.display,
            signed_display=self.signed_display,
        )


@dataclass(frozen=True)
class ReplicaDelta:
    """A signed unit of replication: one mutation, or a coalesced batch.

    Attributes:
        table: VB-tree name (base table, join view, or secondary index).
        lsn_first: First log sequence number covered (== ``lsn_last``
            for a single-mutation delta).
        lsn_last: Last log sequence number covered.
        epoch: Key epoch all contained signatures were produced under.
        base_version: Replica tree version this delta applies on top of.
        new_version: Tree version after application.
        structural: True if any covered mutation split or freed nodes.
        ops: Tuple operations in application order.
        node_updates: Final signed digest state of every touched node.
        freed_nodes: Node ids removed by structural changes.
        signature: Central server's signature over the serialized body
            (``None`` until sealed by the replicator).
    """

    table: str
    lsn_first: int
    lsn_last: int
    epoch: int
    base_version: int
    new_version: int
    structural: bool
    ops: tuple[TupleOp, ...]
    node_updates: tuple[NodeDigestUpdate, ...]
    freed_nodes: tuple[int, ...]
    signature: SignedDigest | None = None


def delta_digest(body: bytes) -> int:
    """Digest of a serialized delta body, as an integer small enough to
    sign under any simulation RSA key (see ``_DELTA_DIGEST_BITS``)."""
    raw = hashlib.sha256(body).digest()
    return int.from_bytes(raw, "big") >> (256 - _DELTA_DIGEST_BITS)


def coalesce(deltas: Sequence[ReplicaDelta]) -> ReplicaDelta:
    """Merge a contiguous run of deltas into one batch delta.

    Tuple operations are concatenated in order; node digest updates are
    last-writer-wins per node id (node ids are never reused, so a freed
    node can never reappear); freed sets accumulate.  The result is
    **unsigned** — the replicator re-signs the batch as a unit.

    Raises:
        ReplicaDeltaError: If the sequence is empty, spans tables or
            epochs, or has non-contiguous LSNs/versions.
    """
    if not deltas:
        raise ReplicaDeltaError("cannot coalesce an empty delta sequence")
    first = deltas[0]
    ops: list[TupleOp] = []
    updates: dict[int, NodeDigestUpdate] = {}
    freed: set[int] = set()
    structural = False
    prev: ReplicaDelta | None = None
    for delta in deltas:
        if delta.table != first.table:
            raise ReplicaDeltaError(
                f"cannot coalesce across tables "
                f"({first.table!r} vs {delta.table!r})"
            )
        if delta.epoch != first.epoch:
            raise ReplicaDeltaError("cannot coalesce across key epochs")
        if prev is not None and (
            delta.lsn_first != prev.lsn_last + 1
            or delta.base_version != prev.new_version
        ):
            raise ReplicaDeltaError(
                f"non-contiguous deltas: {prev.lsn_last} -> {delta.lsn_first}"
            )
        ops.extend(delta.ops)
        freed.update(delta.freed_nodes)
        for update in delta.node_updates:
            updates[update.node_id] = update
        structural = structural or delta.structural
        prev = delta
    assert prev is not None
    final_updates = tuple(
        u for u in updates.values() if u.node_id not in freed
    )
    return ReplicaDelta(
        table=first.table,
        lsn_first=first.lsn_first,
        lsn_last=prev.lsn_last,
        epoch=first.epoch,
        base_version=first.base_version,
        new_version=prev.new_version,
        structural=structural,
        ops=tuple(ops),
        node_updates=final_updates,
        freed_nodes=tuple(sorted(freed)),
    )


def apply_delta(vbt: VBTree, delta: ReplicaDelta) -> None:
    """Apply a (already authenticated) delta to a replica VB-tree.

    Tuple operations replay against the replica's own B+-tree — the
    deterministic mutation reproduces the central server's structural
    changes — then the signed node digests overwrite the touched nodes'
    auth entries and freed nodes' entries are dropped.  LSN / signature
    checks live in :meth:`repro.edge.edge_server.EdgeServer.apply_delta`;
    this function only enforces version continuity so a delta can never
    be applied twice or out of order even when called directly.

    Application is **not** atomic across a multi-op batch: an op that
    fails (only possible when the replica has already diverged from the
    central tree) leaves earlier ops applied and the version not
    advanced.  That replica is unusable for further deltas by
    construction — the edge nacks, and the central server's fan-out
    engine replaces it wholesale with a snapshot
    (:class:`repro.edge.fanout.FanoutEngine`).

    Raises:
        ReplicaDeltaError: On version mismatch or a tuple op that does
            not apply cleanly (replica divergence — resync via snapshot).
    """
    if delta.base_version != vbt.version:
        raise ReplicaDeltaError(
            f"delta for {delta.table!r} expects replica version "
            f"{delta.base_version}, replica is at {vbt.version}"
        )
    for op in delta.ops:
        try:
            if op.kind is DeltaOpKind.INSERT:
                assert op.values is not None
                row = Row(vbt.schema, op.values)
                key = vbt.key_of(row)
                vbt.tree.insert(key, row)
                vbt.install_tuple_auth(
                    key,
                    TupleAuth(
                        digests=TupleDigests(
                            attribute_values=tuple(op.attribute_values or ()),
                            tuple_value=op.tuple_value or 0,
                        ),
                        signed_tuple=op.signed_tuple,  # type: ignore[arg-type]
                        signed_attrs=tuple(op.signed_attrs or ()),
                    ),
                )
            else:
                vbt.tree.delete(op.key)
                vbt.drop_tuple_auth(op.key)
        except ReplicaDeltaError:
            raise
        except Exception as exc:
            raise ReplicaDeltaError(
                f"delta op {op.kind.value} failed on replica of "
                f"{delta.table!r}: {exc}"
            ) from exc
    for node_id in delta.freed_nodes:
        vbt.drop_node_auth(node_id)
    for update in delta.node_updates:
        vbt.install_node_auth(update.node_id, update.to_auth())
    vbt.version = delta.new_version
