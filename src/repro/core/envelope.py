"""Enveloping subtrees (Section 3.2's definition, Figure 4).

The *enveloping subtree* is the smallest subtree of the VB-tree that
covers all result tuples of a query (or all tuples affected by an
update).  This module finds the envelope's top node and walks the
subtree, classifying every constituent as:

* a **result tuple** (the client recomputes its digest from values),
* a **filtered tuple** — a gap inside a boundary leaf (its signed tuple
  digest joins ``D_S``),
* a **pruned branch** — a child subtree containing no result tuple (its
  signed node digest joins ``D_S``).

Positions are tracked as child-index paths from the envelope top so the
STRUCTURED VO format can rebuild node groupings; the FLAT_SET format
discards them (sufficient under the FLATTENED digest policy).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.db.btree import BPlusTree, InternalNode, LeafNode, _Node
from repro.exceptions import IncompleteResultError

__all__ = ["Envelope", "EnvelopeWalk", "ResultPosition", "GapItem", "find_envelope"]


@dataclass(frozen=True)
class ResultPosition:
    """Where one result tuple sits inside the envelope.

    Attributes:
        path: Child indices from the envelope top down to the leaf.
        slot: Entry index within the leaf.
        key: The tuple's key (redundant but convenient).
    """

    path: tuple[int, ...]
    slot: int
    key: Any


@dataclass(frozen=True)
class GapItem:
    """A non-result constituent of the envelope.

    ``kind`` is ``"tuple"`` for a filtered tuple in a boundary leaf
    (``ref`` is its key) or ``"node"`` for a pruned child subtree
    (``ref`` is the node).
    """

    kind: str
    path: tuple[int, ...]
    slot: int
    ref: Any


@dataclass
class Envelope:
    """The enveloping subtree of a query result."""

    top: _Node
    height: int
    result_positions: list[ResultPosition]
    gaps: list[GapItem]

    @property
    def num_result(self) -> int:
        """Number of result tuples covered."""
        return len(self.result_positions)


def _lca(tree: BPlusTree, a: _Node, b: _Node) -> _Node:
    """Lowest common ancestor of two nodes (via parent pointers)."""
    ancestors = set()
    cursor: _Node | None = a
    while cursor is not None:
        ancestors.add(cursor.node_id)
        cursor = cursor.parent
    cursor = b
    while cursor is not None:
        if cursor.node_id in ancestors:
            return cursor
        cursor = cursor.parent
    raise IncompleteResultError("nodes share no ancestor (corrupt tree)")


def _subtree_height(node: _Node) -> int:
    height = 1
    cursor = node
    while not cursor.is_leaf:
        cursor = cursor.children[0]  # type: ignore[attr-defined]
        height += 1
    return height


def find_envelope(tree: BPlusTree, result_keys: Sequence[Any]) -> Envelope:
    """Compute the enveloping subtree for ``result_keys``.

    Args:
        tree: The VB-tree's underlying B+-tree.
        result_keys: Sorted, de-duplicated keys of the result tuples.
            May be empty — the envelope is then the leaf that would hold
            the query range's low end (all of whose tuples become gaps),
            which lets the client confirm the *claimed* emptiness is
            consistent with a signed node (the paper's trust model does
            not require proving completeness; see DESIGN.md).

    Returns:
        The :class:`Envelope` with result positions and gap items.

    Raises:
        IncompleteResultError: If a claimed result key is not in the
            tree (the edge server would be inventing tuples).
    """
    if not result_keys:
        top: _Node = tree.first_leaf()
        return Envelope(
            top=top,
            height=1,
            result_positions=[],
            gaps=[
                GapItem(kind="tuple", path=(), slot=i, ref=k)
                for i, k in enumerate(top.keys)
            ],
        )

    keys = list(result_keys)
    first_leaf = tree.find_leaf(keys[0])
    last_leaf = tree.find_leaf(keys[-1])
    top = first_leaf if first_leaf is last_leaf else _lca(tree, first_leaf, last_leaf)

    result_set = set(keys)
    positions: list[ResultPosition] = []
    gaps: list[GapItem] = []
    found: set[Any] = set()

    def child_may_contain(parent: InternalNode, idx: int) -> bool:
        """Does child ``idx``'s key interval intersect the result keys?

        Child ``idx`` of an internal node covers keys in
        ``[keys[idx-1], keys[idx])`` (left-open at the extremes), which
        matches the descent rule ``bisect_right``.
        """
        low = parent.keys[idx - 1] if idx > 0 else None
        high = parent.keys[idx] if idx < len(parent.keys) else None
        lo_pos = 0 if low is None else bisect.bisect_left(keys, low)
        if lo_pos >= len(keys):
            return False
        candidate = keys[lo_pos]
        return high is None or candidate < high

    def walk(node: _Node, path: tuple[int, ...]) -> None:
        if node.is_leaf:
            for slot, key in enumerate(node.keys):
                if key in result_set:
                    positions.append(ResultPosition(path=path, slot=slot, key=key))
                    found.add(key)
                else:
                    gaps.append(
                        GapItem(kind="tuple", path=path, slot=slot, ref=key)
                    )
            return
        internal: InternalNode = node  # type: ignore[assignment]
        for idx, child in enumerate(internal.children):
            if child_may_contain(internal, idx):
                walk(child, path + (idx,))
            else:
                gaps.append(
                    GapItem(kind="node", path=path, slot=idx, ref=child)
                )

    walk(top, ())

    if found != result_set:
        missing = sorted(result_set - found)[:5]
        raise IncompleteResultError(
            f"claimed result keys not present in the tree: {missing!r}"
        )

    return Envelope(
        top=top,
        height=_subtree_height(top),
        result_positions=positions,
        gaps=gaps,
    )
