"""The Verifiable B-tree (Section 3.2).

A :class:`VBTree` is a B+-tree over ``key -> Row`` whose geometry
includes the per-child signed digest (formula 6's reduced fan-out), plus
the digest material of formulas (1)-(3):

* per tuple: attribute digest values + signatures, tuple digest value +
  signature (stored with the leaf entry);
* per node: node digest value + signature (stored with the child
  pointer in the parent), and — under the FLATTENED policy — the
  *display* form ``g^x mod n`` with its own signature, which is what an
  enveloping subtree's top digest ``D_N`` ships as;
* tree metadata: the root's signed display digest and a version number.

Digest maintenance on updates lives in :mod:`repro.core.update`; this
module owns the data structure, bulk build, and digest recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.core.digests import DigestPolicy, SigningDigestEngine, TupleDigests
from repro.crypto.signatures import SignedDigest
from repro.db.btree import BPlusTree, InternalNode, LeafNode, MutationTrace, _Node
from repro.db.page import PageGeometry
from repro.db.rows import Row
from repro.db.schema import TableSchema
from repro.exceptions import AuthenticationError, KeyNotFoundError

__all__ = ["VBTree", "NodeAuth", "TupleAuth"]


@dataclass
class TupleAuth:
    """Digest material for one stored tuple."""

    digests: TupleDigests
    signed_tuple: SignedDigest
    signed_attrs: tuple[SignedDigest, ...]


@dataclass
class NodeAuth:
    """Digest material for one VB-tree node.

    Attributes:
        value: The propagating digest value (exponent product under
            FLATTENED; combined hash under NESTED).
        signed: Signature over ``value`` — what D_S ships for pruned
            branches.
        display: The comparison form (``g^value`` under FLATTENED;
            ``value`` under NESTED).
        signed_display: Signature over ``display`` — what D_N ships for
            the enveloping subtree's top node.
    """

    value: int
    signed: SignedDigest
    display: int
    signed_display: SignedDigest


class VBTree:
    """Verifiable B-tree over a table's rows.

    Args:
        schema: Table schema (fixes the key column and digest inputs).
        signing: The central server's signing digest engine.
        geometry: Page geometry; defaults to the paper's VB-tree
            geometry, with ``key_len`` taken from the schema's key type
            and ``digest_len`` from the signature width.
        fanout_override: Test hook for small fan-outs.
    """

    def __init__(
        self,
        schema: TableSchema,
        signing: SigningDigestEngine,
        geometry: PageGeometry | None = None,
        fanout_override: int | None = None,
        key_func: "Callable[[Row], Any] | None" = None,
        key_len: int | None = None,
    ) -> None:
        self.schema = schema
        self.signing = signing
        #: Maps a row to its search key in THIS tree.  The primary
        #: VB-tree uses the schema key; secondary VB-trees (the paper's
        #: "one or more VB-trees" per table) use a composite
        #: ``(attribute, primary key)`` — see :mod:`repro.core.secondary`.
        self.key_of = key_func or (lambda row: row.key)
        sig_len = signing.signer.public_key.signature_len + 2
        base = geometry or PageGeometry.vbtree_default()
        self.geometry = PageGeometry(
            block_size=base.block_size,
            key_len=key_len or schema.key_type.byte_width(),
            pointer_len=base.pointer_len,
            digest_len=sig_len,
        )
        self.tree = BPlusTree(
            geometry=self.geometry, min_fanout_override=fanout_override
        )
        self._tuple_auth: dict[Any, TupleAuth] = {}
        self._node_auth: dict[int, NodeAuth] = {}
        self.version = 0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def policy(self) -> DigestPolicy:
        """Digest policy in force."""
        return self.signing.policy

    @property
    def table_name(self) -> str:
        """Name of the table this tree authenticates."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self.tree)

    def height(self) -> int:
        """Tree height (leaf level = 1)."""
        return self.tree.height()

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        schema: TableSchema,
        rows: Iterable[Row],
        signing: SigningDigestEngine,
        geometry: PageGeometry | None = None,
        fanout_override: int | None = None,
        key_func: Callable[[Row], Any] | None = None,
        key_len: int | None = None,
    ) -> "VBTree":
        """Bulk-build a VB-tree: insert rows, then digest bottom-up."""
        vbt = cls(
            schema,
            signing,
            geometry=geometry,
            fanout_override=fanout_override,
            key_func=key_func,
            key_len=key_len,
        )
        for row in rows:
            vbt.tree.insert(vbt.key_of(row), row)
            vbt._store_tuple(row)
        vbt.recompute_all_nodes()
        return vbt

    def _store_tuple(self, row: Row) -> TupleAuth:
        digests, signed_tuple, signed_attrs = self.signing.sign_tuple(
            self.table_name, row
        )
        auth = TupleAuth(
            digests=digests,
            signed_tuple=signed_tuple,
            signed_attrs=signed_attrs,
        )
        self._tuple_auth[self.key_of(row)] = auth
        return auth

    # ------------------------------------------------------------------
    # Digest access
    # ------------------------------------------------------------------

    def tuple_auth(self, key: Any) -> TupleAuth:
        """Digest material of the tuple at ``key``.

        Raises:
            KeyNotFoundError: If no such tuple.
        """
        try:
            return self._tuple_auth[key]
        except KeyError:
            raise KeyNotFoundError(f"no tuple digest for key {key!r}") from None

    def node_auth(self, node: _Node) -> NodeAuth:
        """Digest material of a node.

        Raises:
            AuthenticationError: If the node has no digest (tree
                corrupted or digests not yet computed).
        """
        try:
            return self._node_auth[node.node_id]
        except KeyError:
            raise AuthenticationError(
                f"no digest recorded for node {node.node_id}"
            ) from None

    def root_auth(self) -> NodeAuth:
        """Digest material of the root (tree metadata's signed digest)."""
        return self.node_auth(self.tree.root)

    def get_row(self, key: Any) -> Row:
        """Row stored at ``key``.

        Raises:
            KeyNotFoundError: If absent.
        """
        return self.tree.get(key)

    def rows(self) -> Iterator[Row]:
        """All rows in key order."""
        for _k, row in self.tree.items():
            yield row

    # ------------------------------------------------------------------
    # Digest (re)computation
    # ------------------------------------------------------------------

    def compute_node_value(self, node: _Node) -> int:
        """Digest value of ``node`` from its children's current values."""
        engine = self.signing.engine
        if node.is_leaf:
            child_values = [
                self._tuple_auth[k].digests.tuple_value for k in node.keys
            ]
        else:
            child_values = [
                self._node_auth[c.node_id].value
                for c in node.children  # type: ignore[attr-defined]
            ]
        return engine.node_value(child_values)

    def set_node_value(self, node: _Node, value: int) -> NodeAuth:
        """Record (and sign) a node's digest value and display form."""
        engine = self.signing.engine
        signed = self.signing.sign_value(value)
        display = engine.display_value(value)
        if display == value:
            signed_display = signed
        else:
            signed_display = self.signing.sign_value(display)
        auth = NodeAuth(
            value=value,
            signed=signed,
            display=display,
            signed_display=signed_display,
        )
        self._node_auth[node.node_id] = auth
        return auth

    def recompute_node(self, node: _Node) -> NodeAuth:
        """Recompute one node's digest from its children."""
        return self.set_node_value(node, self.compute_node_value(node))

    def recompute_all_nodes(self) -> None:
        """Recompute every node digest bottom-up (bulk build / repair)."""
        self._node_auth.clear()
        self._recompute_subtree(self.tree.root)

    def _recompute_subtree(self, node: _Node) -> None:
        if not node.is_leaf:
            for child in node.children:  # type: ignore[attr-defined]
                self._recompute_subtree(child)
        self.recompute_node(node)

    def recompute_dirty(self, trace: MutationTrace) -> list[_Node]:
        """Recompute digests for every node a mutation touched, plus all
        their ancestors, bottom-up.

        Returns:
            The nodes recomputed, deepest first.
        """
        for node in trace.freed:
            self._node_auth.pop(node.node_id, None)
        dirty: dict[int, _Node] = {}

        def add_with_ancestors(node: _Node) -> None:
            cursor: _Node | None = node
            while cursor is not None and cursor.node_id not in dirty:
                dirty[cursor.node_id] = cursor
                cursor = cursor.parent

        for node in trace.modified:
            if node.node_id not in {f.node_id for f in trace.freed}:
                add_with_ancestors(node)
        for node in trace.created:
            add_with_ancestors(node)
        add_with_ancestors(self.tree.root)

        ordered = sorted(
            dirty.values(), key=self._depth_of, reverse=True
        )
        for node in ordered:
            self.recompute_node(node)
        return ordered

    def _depth_of(self, node: _Node) -> int:
        depth = 0
        cursor = node
        while cursor.parent is not None:
            cursor = cursor.parent
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # Integrity audit (test / ops helper)
    # ------------------------------------------------------------------

    def audit(self) -> None:
        """Recompute every digest from scratch and compare with stored
        values; raises :class:`AuthenticationError` on any mismatch.
        Also checks that tuple digest material exists for every row and
        carries valid signatures."""
        verifier_key = self.signing.signer.public_key
        from repro.crypto.signatures import DigestVerifier

        verifier = DigestVerifier(verifier_key)
        for key, row in self.tree.items():
            auth = self._tuple_auth.get(key)
            if auth is None:
                raise AuthenticationError(f"missing tuple digests for {key!r}")
            fresh = self.signing.engine.tuple_digests(self.table_name, row)
            if fresh != auth.digests:
                raise AuthenticationError(f"stale tuple digest at {key!r}")
            if not verifier.verify_value(auth.signed_tuple, auth.digests.tuple_value):
                raise AuthenticationError(f"bad tuple signature at {key!r}")

        def check(node: _Node) -> int:
            if node.is_leaf:
                child_values = [
                    self._tuple_auth[k].digests.tuple_value for k in node.keys
                ]
            else:
                child_values = [
                    check(c) for c in node.children  # type: ignore[attr-defined]
                ]
            expected = self.signing.engine.node_value(child_values)
            stored = self.node_auth(node)
            if stored.value != expected:
                raise AuthenticationError(
                    f"node {node.node_id} digest mismatch"
                )
            if not verifier.verify_value(stored.signed, stored.value):
                raise AuthenticationError(
                    f"node {node.node_id} signature invalid"
                )
            return stored.value

        check(self.tree.root)

    # ------------------------------------------------------------------
    # Raw mutation + digest bookkeeping (used by core.update)
    # ------------------------------------------------------------------

    def raw_insert(self, row: Row) -> tuple[MutationTrace, TupleAuth]:
        """Insert a row and its tuple digests; node digests are NOT
        updated here (see :mod:`repro.core.update`)."""
        trace = self.tree.insert(self.key_of(row), row)
        auth = self._store_tuple(row)
        return trace, auth

    def raw_delete(self, key: Any) -> tuple[MutationTrace, TupleAuth]:
        """Delete a row and its tuple digests; node digests are NOT
        updated here (see :mod:`repro.core.update`)."""
        trace = self.tree.delete(key)
        auth = self._tuple_auth.pop(key)
        return trace, auth

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def install_tuple_auth(self, key: Any, auth: TupleAuth) -> None:
        """Install centrally-signed tuple digest material on a replica.

        Replica-side counterpart of :meth:`_store_tuple`: edge servers
        cannot sign, so delta application ships the central server's
        :class:`TupleAuth` over the wire and installs it verbatim (see
        :func:`repro.core.delta.apply_delta`).
        """
        self._tuple_auth[key] = auth

    def drop_tuple_auth(self, key: Any) -> None:
        """Remove a deleted tuple's digest material (replica side)."""
        self._tuple_auth.pop(key, None)

    def install_node_auth(self, node_id: int, auth: NodeAuth) -> None:
        """Install centrally-signed node digest material by node id.

        Node ids are stable across replicas (see :meth:`clone` and the
        deterministic-mutation argument in DESIGN.md section 6), so a
        delta can address nodes it re-signed without shipping structure.
        """
        self._node_auth[node_id] = auth

    def drop_node_auth(self, node_id: int) -> None:
        """Forget the digest material of a freed node (replica side)."""
        self._node_auth.pop(node_id, None)

    def clone(self) -> "VBTree":
        """Replica copy for distribution to an edge server.

        The tree structure and digest maps are copied (so at-rest
        tampering on the replica cannot corrupt the master); rows and
        signed digests are immutable and shared."""
        new = self.__class__.__new__(self.__class__)
        new.__dict__.update(
            {k: v for k, v in self.__dict__.items()
             if k not in ("tree", "_tuple_auth", "_node_auth")}
        )
        new.tree = self.tree.clone()
        new._tuple_auth = dict(self._tuple_auth)
        new._node_auth = {
            node_id: NodeAuth(
                value=a.value,
                signed=a.signed,
                display=a.display,
                signed_display=a.signed_display,
            )
            for node_id, a in self._node_auth.items()
        }
        new.version = self.version
        return new
