"""Edge-server-side construction of authenticated query results.

Given a VB-tree replica, :class:`QueryAuthenticator` executes
selection-projection queries and assembles the verification object of
Section 3.3:

* selection on the key → contiguous result, envelope boundary digests;
* selection on non-key attributes → gaps become extra ``D_S`` digests;
* projection → filtered attributes' signed digests become ``D_P``;
* joins → run against the VB-tree of a materialized join view
  (Section 3.3's join strategy), which needs no extra machinery here.

The edge server holds *signed* digests only; it cannot forge new ones.
Per Section 3.4, a query may S-lock the digests of its enveloping
subtree so concurrent delete transactions cannot invalidate them
mid-read; pass a transaction to enable that protocol.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.digests import DigestPolicy
from repro.core.envelope import Envelope, find_envelope
from repro.core.vbtree import VBTree
from repro.core.vo import (
    AuthenticatedResult,
    VerificationObject,
    VOEntry,
    VOEntryKind,
    VOFormat,
)
from repro.db.expressions import Predicate
from repro.db.rows import Row
from repro.db.transactions import Transaction
from repro.exceptions import LockError, VOFormatError

__all__ = ["QueryAuthenticator"]


class QueryAuthenticator:
    """Builds :class:`AuthenticatedResult`s from a VB-tree replica.

    Args:
        vbtree: The (possibly replicated) VB-tree.
        default_format: VO format to use when the caller does not force
            one.  Defaults to the paper's FLAT_SET when the digest
            policy allows it, else STRUCTURED.
    """

    def __init__(
        self, vbtree: VBTree, default_format: VOFormat | None = None
    ) -> None:
        self.vbtree = vbtree
        if default_format is None:
            default_format = (
                VOFormat.FLAT_SET
                if vbtree.policy is DigestPolicy.FLATTENED
                else VOFormat.STRUCTURED
            )
        self.default_format = default_format

    # ------------------------------------------------------------------
    # Public query surface
    # ------------------------------------------------------------------

    def range_query(
        self,
        low: Any = None,
        high: Any = None,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
        txn: Transaction | None = None,
    ) -> AuthenticatedResult:
        """Selection on the primary key: ``low <= key <= high``."""
        rows = [
            row
            for _k, row in self.vbtree.tree.range_items(
                low=low, high=high
            )
        ]
        return self._build_result(rows, columns, vo_format, txn)

    def select(
        self,
        predicate: Predicate,
        columns: Optional[Sequence[str]] = None,
        vo_format: VOFormat | None = None,
        txn: Transaction | None = None,
    ) -> AuthenticatedResult:
        """General selection (key or non-key predicates).

        Non-key predicates produce non-contiguous results; the envelope
        then contains gaps, each covered by a ``D_S`` digest, exactly as
        Section 3.3 describes.
        """
        key_range = predicate.key_range(self.vbtree.schema.key)
        if key_range is not None and key_range.empty:
            candidates: list[Row] = []
        elif key_range is not None:
            candidates = [
                row
                for _k, row in self.vbtree.tree.range_items(
                    low=key_range.low,
                    high=key_range.high,
                    low_inclusive=key_range.low_inclusive,
                    high_inclusive=key_range.high_inclusive,
                )
            ]
        else:
            candidates = list(self.vbtree.rows())
        rows = [row for row in candidates if predicate.evaluate(row)]
        return self._build_result(rows, columns, vo_format, txn)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _build_result(
        self,
        rows: list[Row],
        columns: Optional[Sequence[str]],
        vo_format: VOFormat | None,
        txn: Transaction | None,
    ) -> AuthenticatedResult:
        fmt = vo_format or self.default_format
        schema = self.vbtree.schema
        all_columns = schema.column_names
        returned = tuple(columns) if columns is not None else all_columns
        for name in returned:
            schema.column(name)  # validates projection targets

        if fmt is VOFormat.FLAT_SET and self.vbtree.policy is not DigestPolicy.FLATTENED:
            raise VOFormatError(
                "FLAT_SET VOs are only sound under the FLATTENED digest "
                "policy; use STRUCTURED (see DESIGN.md, deviation D3)"
            )

        envelope = find_envelope(
            self.vbtree.tree, [self.vbtree.key_of(row) for row in rows]
        )
        if txn is not None:
            self._lock_envelope(envelope, txn)

        vo = self._vo_from_envelope(envelope, fmt)
        self._add_projection_entries(vo, rows, returned, all_columns, fmt)

        projected = [
            tuple(row[name] for name in returned) for row in rows
        ]
        return AuthenticatedResult(
            table=self.vbtree.table_name,
            columns=returned,
            all_columns=all_columns,
            key_column=schema.key,
            rows=projected,
            keys=[row.key for row in rows],
            vo=vo,
        )

    def _vo_from_envelope(
        self, envelope: Envelope, fmt: VOFormat
    ) -> VerificationObject:
        vbt = self.vbtree
        top_auth = vbt.node_auth(envelope.top)
        entries: list[VOEntry] = []
        for gap in envelope.gaps:
            if gap.kind == "tuple":
                signed = vbt.tuple_auth(gap.ref).signed_tuple
                kind = VOEntryKind.TUPLE
            else:
                signed = vbt.node_auth(gap.ref).signed
                kind = VOEntryKind.NODE
            if fmt is VOFormat.FLAT_SET:
                entries.append(VOEntry(kind=kind, signed=signed))
            else:
                entries.append(
                    VOEntry(
                        kind=kind, signed=signed, path=gap.path, slot=gap.slot
                    )
                )
        positions = (
            [(p.path, p.slot) for p in envelope.result_positions]
            if fmt is VOFormat.STRUCTURED
            else None
        )
        return VerificationObject(
            format=fmt,
            policy=vbt.policy,
            table=vbt.table_name,
            top_signed=top_auth.signed_display,
            selection_entries=entries,
            result_positions=positions,
            envelope_height=envelope.height,
        )

    def _add_projection_entries(
        self,
        vo: VerificationObject,
        rows: list[Row],
        returned: tuple[str, ...],
        all_columns: tuple[str, ...],
        fmt: VOFormat,
    ) -> None:
        returned_set = set(returned)
        filtered_indices = [
            i for i, name in enumerate(all_columns) if name not in returned_set
        ]
        if not filtered_indices:
            return
        for row_index, row in enumerate(rows):
            auth = self.vbtree.tuple_auth(self.vbtree.key_of(row))
            for attr_index in filtered_indices:
                signed = auth.signed_attrs[attr_index]
                if fmt is VOFormat.FLAT_SET:
                    vo.projection_entries.append(
                        VOEntry(kind=VOEntryKind.ATTRIBUTE, signed=signed)
                    )
                else:
                    vo.projection_entries.append(
                        VOEntry(
                            kind=VOEntryKind.ATTRIBUTE,
                            signed=signed,
                            row_index=row_index,
                            attr_index=attr_index,
                        )
                    )

    def _lock_envelope(self, envelope: Envelope, txn: Transaction) -> None:
        """S-lock every digest in the enveloping subtree (Section 3.4's
        reader protocol).

        Raises:
            LockError: If a lock could not be granted immediately (the
                simulation surfaces blocking to the caller).
        """
        resources = [("digest", self.vbtree.table_name, envelope.top.node_id)]
        stack = [(envelope.top, ())]
        seen = {envelope.top.node_id}
        for gap in envelope.gaps:
            if gap.kind == "node" and gap.ref.node_id not in seen:
                resources.append(
                    ("digest", self.vbtree.table_name, gap.ref.node_id)
                )
                seen.add(gap.ref.node_id)
        for pos in envelope.result_positions:
            # Lock the leaf digests along result paths.
            node = envelope.top
            for idx in pos.path:
                node = node.children[idx]  # type: ignore[attr-defined]
                if node.node_id not in seen:
                    resources.append(
                        ("digest", self.vbtree.table_name, node.node_id)
                    )
                    seen.add(node.node_id)
        for resource in resources:
            if not txn.lock_shared(resource):
                raise LockError(
                    f"query blocked acquiring S-lock on {resource!r}"
                )
