"""SQL lexer for the subset the edge simulation speaks."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import SQLSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "BETWEEN", "INSERT",
    "INTO", "VALUES", "DELETE", "CREATE", "TABLE", "MATERIALIZED", "VIEW",
    "AS", "JOIN", "ON", "PRIMARY", "KEY", "TRUE", "FALSE", "NULL", "INDEX",
}

_SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", "*", ".", ";")


class TokenType(Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """True if this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value == word.upper()

    def is_symbol(self, sym: str) -> bool:
        """True if this token is the given symbol."""
        return self.type is TokenType.SYMBOL and self.value == sym


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens (ending with one EOF token).

    Raises:
        SQLSyntaxError: On unterminated strings or illegal characters.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while True:
                if j >= n:
                    raise SQLSyntaxError("unterminated string literal", i)
                if text[j] == "'":
                    if text[j : j + 2] == "''":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and text[i + 1].isdigit() and _number_ok(tokens)
        ):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(TokenType.SYMBOL, sym, i))
                i += len(sym)
                break
        else:
            raise SQLSyntaxError(f"illegal character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _number_ok(tokens: list[Token]) -> bool:
    """A leading '-' starts a number only where a value may appear."""
    if not tokens:
        return True
    last = tokens[-1]
    return last.type is TokenType.SYMBOL and last.value in ("(", ",", "=", "<", ">", "<=", ">=", "!=", "<>") or (
        last.type is TokenType.KEYWORD and last.value in ("BETWEEN", "AND", "OR", "VALUES", "NOT", "WHERE", "ON")
    )
