"""SQL front-end: lexer, parser, planner, and the verified session."""

from repro.sql.ast_nodes import (
    ColumnDef,
    CreateTable,
    CreateView,
    DeleteStmt,
    InsertStmt,
    SelectStmt,
    WhereAnd,
    WhereComparison,
    WhereNot,
    WhereOr,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse, parse_many
from repro.sql.planner import lower_where, plan_select, validate_select
from repro.sql.session import QueryOutcome, Session

__all__ = [
    "ColumnDef",
    "CreateTable",
    "CreateView",
    "DeleteStmt",
    "InsertStmt",
    "QueryOutcome",
    "SelectStmt",
    "Session",
    "Token",
    "TokenType",
    "WhereAnd",
    "WhereComparison",
    "WhereNot",
    "WhereOr",
    "lower_where",
    "parse",
    "parse_many",
    "plan_select",
    "tokenize",
    "validate_select",
]
