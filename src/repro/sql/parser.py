"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    stmt       := create_table | create_view | select | insert | delete
    create_table := CREATE TABLE ident '(' coldef (',' coldef)*
                    ',' PRIMARY KEY '(' ident ')' ')'
    create_view  := CREATE MATERIALIZED VIEW ident AS SELECT '*' FROM
                    ident JOIN ident ON qual_col '=' qual_col
    select     := SELECT ('*' | ident (',' ident)*) FROM ident
                  [WHERE where_or]
    insert     := INSERT INTO ident VALUES tuple (',' tuple)*
    delete     := DELETE FROM ident [WHERE where_or]
    where_or   := where_and (OR where_and)*
    where_and  := where_not (AND where_not)*
    where_not  := [NOT] where_prim
    where_prim := '(' where_or ')'
                | ident BETWEEN literal AND literal
                | ident op literal
    op         := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
"""

from __future__ import annotations

from typing import Any, Optional

from repro.exceptions import SQLSyntaxError
from repro.sql.ast_nodes import (
    ColumnDef,
    CreateIndex,
    CreateTable,
    CreateView,
    DeleteStmt,
    InsertStmt,
    SelectStmt,
    Statement,
    WhereAnd,
    WhereComparison,
    WhereExpr,
    WhereNot,
    WhereOr,
)
from repro.sql.lexer import Token, TokenType, tokenize

__all__ = ["parse", "parse_many"]


def parse(sql: str) -> Statement:
    """Parse a single SQL statement.

    Raises:
        SQLSyntaxError: On any lexical or syntactic error.
    """
    parser = _Parser(tokenize(sql))
    stmt = parser.statement()
    parser.skip_symbol(";")
    parser.expect_eof()
    return stmt


def parse_many(sql: str) -> list[Statement]:
    """Parse a ``;``-separated script."""
    parser = _Parser(tokenize(sql))
    statements = []
    while not parser.at_eof():
        statements.append(parser.statement())
        if not parser.skip_symbol(";"):
            break
    parser.expect_eof()
    return statements


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().type is TokenType.EOF

    def expect_eof(self) -> None:
        if not self.at_eof():
            tok = self.peek()
            raise SQLSyntaxError(
                f"unexpected input after statement: {tok.value!r}", tok.position
            )

    def expect_keyword(self, word: str) -> Token:
        tok = self.peek()
        if not tok.is_keyword(word):
            raise SQLSyntaxError(f"expected {word}, got {tok.value!r}", tok.position)
        return self.advance()

    def expect_symbol(self, sym: str) -> Token:
        tok = self.peek()
        if not tok.is_symbol(sym):
            raise SQLSyntaxError(f"expected {sym!r}, got {tok.value!r}", tok.position)
        return self.advance()

    def skip_symbol(self, sym: str) -> bool:
        if self.peek().is_symbol(sym):
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.type is not TokenType.IDENT:
            raise SQLSyntaxError(
                f"expected identifier, got {tok.value!r}", tok.position
            )
        return self.advance().value

    # -- statements ------------------------------------------------------

    def statement(self) -> Statement:
        tok = self.peek()
        if tok.is_keyword("SELECT"):
            return self.select()
        if tok.is_keyword("INSERT"):
            return self.insert()
        if tok.is_keyword("DELETE"):
            return self.delete()
        if tok.is_keyword("CREATE"):
            return self.create()
        raise SQLSyntaxError(f"unknown statement start {tok.value!r}", tok.position)

    def create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.peek().is_keyword("TABLE"):
            return self.create_table()
        if self.peek().is_keyword("MATERIALIZED"):
            return self.create_view()
        if self.peek().is_keyword("INDEX"):
            return self.create_index()
        tok = self.peek()
        raise SQLSyntaxError(
            f"expected TABLE, INDEX or MATERIALIZED VIEW, got {tok.value!r}",
            tok.position,
        )

    def create_index(self) -> CreateIndex:
        self.expect_keyword("INDEX")
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_symbol("(")
        column = self.expect_ident()
        self.expect_symbol(")")
        return CreateIndex(table=table, column=column)

    def create_table(self) -> CreateTable:
        self.expect_keyword("TABLE")
        name = self.expect_ident()
        self.expect_symbol("(")
        columns: list[ColumnDef] = []
        primary_key: Optional[str] = None
        while True:
            if self.peek().is_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                self.expect_symbol("(")
                primary_key = self.expect_ident()
                self.expect_symbol(")")
            else:
                col_name = self.expect_ident()
                tok = self.peek()
                if tok.type is TokenType.IDENT or tok.type is TokenType.KEYWORD:
                    type_name = self.advance().value
                else:
                    raise SQLSyntaxError(
                        f"expected a type name, got {tok.value!r}", tok.position
                    )
                capacity = None
                if self.skip_symbol("("):
                    cap_tok = self.peek()
                    if cap_tok.type is not TokenType.NUMBER:
                        raise SQLSyntaxError(
                            f"expected capacity, got {cap_tok.value!r}",
                            cap_tok.position,
                        )
                    capacity = int(self.advance().value)
                    self.expect_symbol(")")
                columns.append(ColumnDef(col_name, type_name, capacity))
            if not self.skip_symbol(","):
                break
        self.expect_symbol(")")
        if primary_key is None:
            raise SQLSyntaxError("CREATE TABLE needs a PRIMARY KEY clause", 0)
        return CreateTable(name=name, columns=tuple(columns), primary_key=primary_key)

    def create_view(self) -> CreateView:
        self.expect_keyword("MATERIALIZED")
        self.expect_keyword("VIEW")
        name = self.expect_ident()
        self.expect_keyword("AS")
        self.expect_keyword("SELECT")
        self.expect_symbol("*")
        self.expect_keyword("FROM")
        left = self.expect_ident()
        self.expect_keyword("JOIN")
        right = self.expect_ident()
        self.expect_keyword("ON")
        lt, lc = self.qualified_column()
        self.expect_symbol("=")
        rt, rc = self.qualified_column()
        if lt == right and rt == left:  # written in the other order
            lt, lc, rt, rc = rt, rc, lt, lc
        if lt != left or rt != right:
            raise SQLSyntaxError(
                "ON clause must reference the two joined tables", 0
            )
        return CreateView(
            name=name,
            left_table=left,
            right_table=right,
            left_column=lc,
            right_column=rc,
        )

    def qualified_column(self) -> tuple[str, str]:
        table = self.expect_ident()
        self.expect_symbol(".")
        column = self.expect_ident()
        return table, column

    def select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        columns: Optional[tuple[str, ...]]
        if self.skip_symbol("*"):
            columns = None
        else:
            names = [self.expect_ident()]
            while self.skip_symbol(","):
                names.append(self.expect_ident())
            columns = tuple(names)
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.peek().is_keyword("WHERE"):
            self.advance()
            where = self.where_or()
        return SelectStmt(table=table, columns=columns, where=where)

    def insert(self) -> InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        self.expect_keyword("VALUES")
        rows = [self.value_tuple()]
        while self.skip_symbol(","):
            rows.append(self.value_tuple())
        return InsertStmt(table=table, rows=tuple(rows))

    def value_tuple(self) -> tuple[Any, ...]:
        self.expect_symbol("(")
        values = [self.literal()]
        while self.skip_symbol(","):
            values.append(self.literal())
        self.expect_symbol(")")
        return tuple(values)

    def delete(self) -> DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.peek().is_keyword("WHERE"):
            self.advance()
            where = self.where_or()
        return DeleteStmt(table=table, where=where)

    # -- WHERE clauses ----------------------------------------------------

    def where_or(self) -> WhereExpr:
        left = self.where_and()
        while self.peek().is_keyword("OR"):
            self.advance()
            left = WhereOr(left, self.where_and())
        return left

    def where_and(self) -> WhereExpr:
        left = self.where_not()
        while self.peek().is_keyword("AND"):
            self.advance()
            left = WhereAnd(left, self.where_not())
        return left

    def where_not(self) -> WhereExpr:
        if self.peek().is_keyword("NOT"):
            self.advance()
            return WhereNot(self.where_not())
        return self.where_primary()

    def where_primary(self) -> WhereExpr:
        if self.skip_symbol("("):
            inner = self.where_or()
            self.expect_symbol(")")
            return inner
        column = self.expect_ident()
        if self.peek().is_keyword("BETWEEN"):
            self.advance()
            low = self.literal()
            self.expect_keyword("AND")
            high = self.literal()
            return WhereAnd(
                WhereComparison(column, ">=", low),
                WhereComparison(column, "<=", high),
            )
        tok = self.peek()
        if tok.type is not TokenType.SYMBOL or tok.value not in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            raise SQLSyntaxError(
                f"expected comparison operator, got {tok.value!r}", tok.position
            )
        op = self.advance().value
        if op == "<>":
            op = "!="
        return WhereComparison(column, op, self.literal())

    def literal(self) -> Any:
        tok = self.peek()
        if tok.type is TokenType.NUMBER:
            self.advance()
            return float(tok.value) if "." in tok.value else int(tok.value)
        if tok.type is TokenType.STRING:
            self.advance()
            return tok.value
        if tok.is_keyword("TRUE"):
            self.advance()
            return True
        if tok.is_keyword("FALSE"):
            self.advance()
            return False
        if tok.is_keyword("NULL"):
            self.advance()
            return None
        raise SQLSyntaxError(f"expected a literal, got {tok.value!r}", tok.position)
