"""SQL session over the edge-computing deployment.

A :class:`Session` is the application-developer view of the system:
DDL and DML go to the trusted central server, SELECTs run at an edge
server, and every result is verified against the central server's
signatures before the application sees it.

    >>> session = Session(central, edge)
    >>> session.execute("CREATE TABLE t (id INT, v VARCHAR(10), PRIMARY KEY (id))")
    >>> session.execute("INSERT INTO t VALUES (1, 'x')")
    >>> rows = session.query("SELECT v FROM t WHERE id BETWEEN 0 AND 5")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.verify import Verdict
from repro.db.types import type_from_name
from repro.db.schema import Column, TableSchema
from repro.edge.central import CentralServer
from repro.edge.edge_server import EdgeServer
from repro.exceptions import PlanningError, VerificationFailure
from repro.sql.ast_nodes import (
    CreateIndex,
    CreateTable,
    CreateView,
    DeleteStmt,
    InsertStmt,
    SelectStmt,
)
from repro.sql.parser import parse
from repro.sql.planner import exact_range_on, lower_where, validate_select

__all__ = ["Session", "QueryOutcome"]


@dataclass
class QueryOutcome:
    """A verified SELECT result."""

    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]]
    verdict: Verdict
    wire_bytes: int

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class Session:
    """Execute SQL against the central server + one edge server.

    Args:
        central: The trusted central server (DDL/DML target).
        edge: The edge server answering SELECTs; defaults to the first
            edge spawned from ``central`` (one is created if none).
        strict: If True (default), a failed verification raises
            :class:`~repro.exceptions.VerificationFailure`; if False the
            tainted :class:`QueryOutcome` is returned with its verdict.
    """

    def __init__(
        self,
        central: CentralServer,
        edge: EdgeServer | None = None,
        strict: bool = True,
    ) -> None:
        self.central = central
        if edge is None:
            edge = central.edges[0] if central.edges else central.spawn_edge_server(
                "session-edge"
            )
        self.edge = edge
        self.client = central.make_client()
        self.strict = strict

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> int:
        """Run a DDL/DML statement at the central server.

        Returns:
            Rows affected (0 for DDL).

        Raises:
            PlanningError: If a SELECT is passed (use :meth:`query`).
        """
        stmt = parse(sql)
        if isinstance(stmt, SelectStmt):
            raise PlanningError("use Session.query() for SELECT statements")
        if isinstance(stmt, CreateTable):
            self._create_table(stmt)
            return 0
        if isinstance(stmt, CreateIndex):
            self.central.create_secondary_index(stmt.table, stmt.column)
            return 0
        if isinstance(stmt, CreateView):
            self.central.create_join_view(
                stmt.name,
                stmt.left_table,
                stmt.right_table,
                stmt.left_column,
                stmt.right_column,
            )
            self.central.propagate(stmt.name)
            return 0
        if isinstance(stmt, InsertStmt):
            for row in stmt.rows:
                self.central.insert(stmt.table, row)
            return len(stmt.rows)
        if isinstance(stmt, DeleteStmt):
            return self._delete(stmt)
        raise PlanningError(f"unsupported statement {type(stmt).__name__}")

    def query(self, sql: str) -> QueryOutcome:
        """Run a SELECT at the edge server and verify the result.

        Raises:
            VerificationFailure: In strict mode, when the edge's answer
                fails verification.
        """
        stmt = parse(sql)
        if not isinstance(stmt, SelectStmt):
            raise PlanningError("Session.query() only accepts SELECT")
        schema, columns, predicate = validate_select(stmt, self.central.catalog)
        response = None
        # Route through a secondary VB-tree when the predicate is exactly
        # a range on an indexed non-key attribute: contiguous envelope,
        # far smaller D_S than a gappy primary-tree scan.
        for index_attr in self._indexed_attributes(stmt.table):
            attr_range = exact_range_on(predicate, index_attr)
            if attr_range is not None and not attr_range.empty and (
                attr_range.low is not None or attr_range.high is not None
            ) and attr_range.low_inclusive and attr_range.high_inclusive:
                response = self.edge.secondary_range_query(
                    stmt.table,
                    index_attr,
                    low=attr_range.low,
                    high=attr_range.high,
                    columns=columns if stmt.columns is not None else None,
                )
                break
        if response is None:
            response = self.edge.select(
                stmt.table,
                predicate,
                columns=columns if stmt.columns is not None else None,
            )
        verdict = self.client.verify(response)
        if self.strict and not verdict.ok:
            raise VerificationFailure(
                f"edge {self.edge.name!r} returned an unverifiable result: "
                f"{verdict.reason}"
            )
        return QueryOutcome(
            columns=response.result.columns,
            rows=list(response.result.rows),
            verdict=verdict,
            wire_bytes=response.wire_bytes,
        )

    # ------------------------------------------------------------------
    # Statement handlers
    # ------------------------------------------------------------------

    def _indexed_attributes(self, table: str):
        """Attributes of ``table`` with a secondary VB-tree."""
        prefix = f"{table}__by_"
        return [
            name[len(prefix):]
            for name in self.central.vbtrees
            if name.startswith(prefix)
        ]

    def _create_table(self, stmt: CreateTable) -> None:
        columns = tuple(
            Column(c.name, type_from_name(c.type_name, c.capacity))
            for c in stmt.columns
        )
        schema = TableSchema(stmt.name, columns, key=stmt.primary_key)
        self.central.create_table(schema)
        self.central.propagate(stmt.name)

    def _delete(self, stmt: DeleteStmt) -> int:
        schema = self.central.catalog.get(stmt.table)
        predicate = lower_where(stmt.where, schema)
        table = self.central.tables[stmt.table]
        victims = [row.key for row in table.select(predicate)]
        for key in victims:
            self.central.delete(stmt.table, key)
        return len(victims)
