"""AST node types for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

__all__ = [
    "ColumnDef",
    "CreateIndex",
    "CreateTable",
    "CreateView",
    "SelectStmt",
    "InsertStmt",
    "DeleteStmt",
    "WhereComparison",
    "WhereAnd",
    "WhereOr",
    "WhereNot",
    "WhereExpr",
    "Statement",
]


@dataclass(frozen=True)
class ColumnDef:
    """One column in a CREATE TABLE."""

    name: str
    type_name: str
    capacity: Optional[int] = None


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name (cols..., PRIMARY KEY (col))``."""

    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: str


@dataclass(frozen=True)
class CreateIndex:
    """``CREATE INDEX ON table (column)`` — a secondary VB-tree
    (sort order) on a non-key attribute."""

    table: str
    column: str


@dataclass(frozen=True)
class CreateView:
    """``CREATE MATERIALIZED VIEW v AS SELECT * FROM a JOIN b ON a.x = b.y``."""

    name: str
    left_table: str
    right_table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class WhereComparison:
    """``column op literal``."""

    column: str
    op: str
    value: Any


@dataclass(frozen=True)
class WhereAnd:
    """Conjunction of two predicates."""

    left: "WhereExpr"
    right: "WhereExpr"


@dataclass(frozen=True)
class WhereOr:
    """Disjunction of two predicates."""

    left: "WhereExpr"
    right: "WhereExpr"


@dataclass(frozen=True)
class WhereNot:
    """Negated predicate."""

    inner: "WhereExpr"


WhereExpr = Union[WhereComparison, WhereAnd, WhereOr, WhereNot]


@dataclass(frozen=True)
class SelectStmt:
    """``SELECT cols FROM table [WHERE ...]`` (``columns=None`` = ``*``)."""

    table: str
    columns: Optional[tuple[str, ...]]
    where: Optional[WhereExpr] = None


@dataclass(frozen=True)
class InsertStmt:
    """``INSERT INTO table VALUES (...)`` (possibly several tuples)."""

    table: str
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class DeleteStmt:
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Optional[WhereExpr] = None


Statement = Union[CreateTable, CreateView, CreateIndex, SelectStmt, InsertStmt, DeleteStmt]
