"""Planner: SQL AST → predicates / relational plans.

The planner validates statements against a catalog and lowers WHERE
clauses to :mod:`repro.db.expressions` predicates — the form both the
executor and the VO construction consume.  SELECTs on base tables and
materialized views plan to an index-range scan whenever the predicate
pins the primary key to a contiguous interval."""

from __future__ import annotations

from typing import Optional

from repro.db.executor import Filter, IndexRangeScan, PlanNode, Project, SeqScan
from repro.db.expressions import (
    AlwaysTrue,
    And,
    Comparison,
    Not,
    Or,
    Predicate,
)
from repro.db.schema import Catalog, TableSchema
from repro.db.table import Table
from repro.exceptions import PlanningError
from repro.sql.ast_nodes import (
    SelectStmt,
    WhereAnd,
    WhereComparison,
    WhereExpr,
    WhereNot,
    WhereOr,
)

__all__ = ["lower_where", "plan_select", "validate_select", "exact_range_on"]


def lower_where(where: Optional[WhereExpr], schema: TableSchema) -> Predicate:
    """Lower a WHERE AST to a predicate, checking column references.

    Raises:
        PlanningError: On references to unknown columns.
    """
    if where is None:
        return AlwaysTrue()
    if isinstance(where, WhereComparison):
        if where.column not in schema.column_names:
            raise PlanningError(
                f"unknown column {where.column!r} in table {schema.name!r}"
            )
        return Comparison(where.column, where.op, where.value)
    if isinstance(where, WhereAnd):
        return And(lower_where(where.left, schema), lower_where(where.right, schema))
    if isinstance(where, WhereOr):
        return Or(lower_where(where.left, schema), lower_where(where.right, schema))
    if isinstance(where, WhereNot):
        return Not(lower_where(where.inner, schema))
    raise PlanningError(f"unsupported WHERE node {type(where).__name__}")


def exact_range_on(predicate: Predicate, column: str):
    """The contiguous interval on ``column`` when the predicate is
    *exactly* equivalent to it — i.e. a conjunction of comparisons on
    that single column.  ``None`` otherwise (OR/NOT or other columns
    make range extraction an over-approximation, which would be unsound
    to hand to a secondary index without re-filtering).

    Returns:
        A :class:`~repro.db.expressions.KeyRange` or ``None``.
    """
    from repro.db.expressions import And as _And
    from repro.db.expressions import Comparison as _Cmp

    def exact(node: Predicate) -> bool:
        if isinstance(node, _Cmp):
            return node.column == column and node.op != "!="
        if isinstance(node, _And):
            return exact(node.left) and exact(node.right)
        return False

    if not exact(predicate):
        return None
    return predicate.key_range(column)


def validate_select(
    stmt: SelectStmt, catalog: Catalog
) -> tuple[TableSchema, tuple[str, ...], Predicate]:
    """Resolve a SELECT against the catalog.

    Returns:
        ``(schema, returned_columns, predicate)``.

    Raises:
        PlanningError: On unknown tables/columns.
    """
    try:
        schema = catalog.get(stmt.table)
    except Exception as exc:
        raise PlanningError(str(exc)) from exc
    if stmt.columns is None:
        columns = schema.column_names
    else:
        for name in stmt.columns:
            if name not in schema.column_names:
                raise PlanningError(
                    f"unknown column {name!r} in table {schema.name!r}"
                )
        columns = stmt.columns
    predicate = lower_where(stmt.where, schema)
    return schema, columns, predicate


def plan_select(stmt: SelectStmt, catalog: Catalog, table: Table) -> PlanNode:
    """Build an executable plan for a SELECT on a local table."""
    schema, columns, predicate = validate_select(stmt, catalog)
    key_range = predicate.key_range(schema.key)
    scan: PlanNode
    if key_range is not None and not isinstance(predicate, AlwaysTrue):
        scan = IndexRangeScan(table, predicate)
    elif isinstance(predicate, AlwaysTrue):
        scan = SeqScan(table)
    else:
        scan = Filter(SeqScan(table), predicate)
    if columns != schema.column_names:
        return Project(scan, tuple(columns))
    return scan
