"""Formatting and persistence helpers shared by the benchmark files.

Every figure bench produces a *series* — rows of (x, value, value, …) —
prints it as an aligned table (the "same rows the paper reports"), and
writes it to ``benchmarks/results/*.csv`` so EXPERIMENTS.md can cite
stable numbers."""

from __future__ import annotations

import csv
import os
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "write_csv", "results_dir", "emit"]


def results_dir() -> str:
    """The benchmark results directory (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6:
            return f"{value / 1e6:,.2f}M"
        if abs(value) >= 1e3:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Align ``rows`` under ``headers`` for terminal output."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths, strict=True))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(list(headers)), sep, *(line(r) for r in str_rows)])


def write_csv(
    name: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Write a series to ``benchmarks/results/<name>.csv``; returns path."""
    path = os.path.join(results_dir(), f"{name}.csv")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def emit(
    title: str,
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> None:
    """Print a titled table and persist it as CSV."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))
    path = write_csv(name, headers, rows)
    print(f"[series written to {os.path.relpath(path)}]")
