"""Terminal line plots for benchmark series.

The paper's figures are simple 2-D line charts; this renders the same
series as ASCII so `examples/paper_evaluation.py --plots` (and anyone
working over ssh) can eyeball the shapes without matplotlib."""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_plot"]

_MARKS = "*o+x#@"


def ascii_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more y-series over shared x-values.

    Args:
        xs: X coordinates (need not be evenly spaced).
        series: Label → y-values (each as long as ``xs``).
        width: Plot area width in characters.
        height: Plot area height in rows.
        title: Optional caption.

    Returns:
        The rendered multi-line string.
    """
    if not xs or not series:
        return "(empty plot)"
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {label!r} length != x length")
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(xs), max(xs)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (_label, ys), mark in zip(series.items(), _MARKS, strict=False):
        for x, y in zip(xs, ys, strict=False):
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = mark

    def fmt(v: float) -> str:
        if abs(v) >= 1e6:
            return f"{v / 1e6:.1f}M"
        if abs(v) >= 1e3:
            return f"{v / 1e3:.1f}k"
        return f"{v:.3g}"

    label_w = max(len(fmt(y_max)), len(fmt(y_min)))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            prefix = fmt(y_max).rjust(label_w)
        elif i == height - 1:
            prefix = fmt(y_min).rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w + f"  {fmt(x_min)}" + " " * max(1, width - 12) + fmt(x_max)
    )
    legend = "   ".join(
        f"{mark} {label}" for (label, _ys), mark in zip(series.items(), _MARKS, strict=False)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)
