"""Benchmark plumbing shared by the files under ``benchmarks/``."""

from repro.bench.ascii_plot import ascii_plot
from repro.bench.series import emit, format_table, results_dir, write_csv

__all__ = ["ascii_plot", "emit", "format_table", "results_dir", "write_csv"]
