"""Operation accounting for the paper's computation-cost model.

Section 4.3 measures client cost in units of ``Cost_h`` (one attribute
hash), with ``Cost_c`` (one digest combine) and ``Cost_v`` (one signature
decryption) expressed as ratios.  To let the *running* system report the
same units, every crypto object accepts a :class:`CostMeter`; the edge
server and client each thread their own meter through, and benches read
the counters out afterwards.

The meter also tracks bytes hashed and bytes shipped, which backs the
measured communication-cost series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostMeter", "CostWeights", "NULL_METER"]


@dataclass(frozen=True)
class CostWeights:
    """Relative operation weights in units of ``Cost_h`` (= cost_hash).

    Defaults mirror Table 1 / Section 4.3: combining two digests is 10x
    cheaper than hashing an attribute (``ratio = 10``), verifying a
    signature is ``X`` times the hash cost (X defaults to 10), and
    *generating* a signature is ~100x a verification (the paper cites
    hash : verify : sign = 1 : 100 : 10000 from Rivest & Shamir [15] —
    our defaults keep the sweep parameter X explicit instead).
    """

    cost_hash: float = 1.0
    cost_combine: float = 0.1
    cost_verify: float = 10.0
    cost_sign: float = 1000.0

    def total(self, meter: "CostMeter") -> float:
        """Weighted total cost of the operations recorded in ``meter``."""
        return (
            meter.hashes * self.cost_hash
            + meter.combines * self.cost_combine
            + meter.verifies * self.cost_verify
            + meter.signs * self.cost_sign
        )


@dataclass
class CostMeter:
    """Mutable counters for crypto operations and byte traffic.

    Attributes:
        hashes: Number of base one-way hash invocations (``Cost_h`` ops).
        combines: Number of pairwise digest combines (``Cost_c`` ops).
        signs: Number of private-key signature operations.
        verifies: Number of public-key signature decryptions (``Cost_v``).
        bytes_hashed: Total bytes fed through base hashes.
        bytes_sent: Total bytes recorded as shipped over the network.
    """

    hashes: int = 0
    combines: int = 0
    signs: int = 0
    verifies: int = 0
    bytes_hashed: int = 0
    bytes_sent: int = 0
    _enabled: bool = field(default=True, repr=False)

    def count_hash(self, nbytes: int = 0) -> None:
        """Record one base-hash invocation over ``nbytes`` of input."""
        if self._enabled:
            self.hashes += 1
            self.bytes_hashed += nbytes

    def count_combine(self, n: int = 1) -> None:
        """Record ``n`` pairwise digest-combine operations."""
        if self._enabled:
            self.combines += n

    def count_sign(self, n: int = 1) -> None:
        """Record ``n`` private-key signing operations."""
        if self._enabled:
            self.signs += n

    def count_verify(self, n: int = 1) -> None:
        """Record ``n`` public-key verification (decryption) operations."""
        if self._enabled:
            self.verifies += n

    def count_bytes_sent(self, nbytes: int) -> None:
        """Record ``nbytes`` shipped over the simulated network."""
        if self._enabled:
            self.bytes_sent += nbytes

    def reset(self) -> None:
        """Zero every counter."""
        self.hashes = 0
        self.combines = 0
        self.signs = 0
        self.verifies = 0
        self.bytes_hashed = 0
        self.bytes_sent = 0

    def snapshot(self) -> dict[str, int]:
        """Immutable copy of the counters, for bench reporting."""
        return {
            "hashes": self.hashes,
            "combines": self.combines,
            "signs": self.signs,
            "verifies": self.verifies,
            "bytes_hashed": self.bytes_hashed,
            "bytes_sent": self.bytes_sent,
        }

    def cost(self, weights: CostWeights | None = None) -> float:
        """Weighted cost in units of ``Cost_h`` (see :class:`CostWeights`)."""
        return (weights or CostWeights()).total(self)


class _NullMeter(CostMeter):
    """A meter that ignores all updates; the default when none is supplied."""

    def __init__(self) -> None:
        super().__init__(_enabled=False)


#: Shared do-nothing meter instance.
NULL_METER = _NullMeter()
