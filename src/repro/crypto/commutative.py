"""Commutative one-way digest combinators.

Section 3.2 of the paper chooses ``h(x) = g^x mod n`` so that a set of
digests ``{x1, …, xk}`` folds to ``g^(x1·x2·…·xk) mod n``.  Because the
exponent is a *product*, the fold is order-free::

    ((g^x1)^x2)  ==  ((g^x2)^x1)  ==  g^(x1·x2)

which buys the paper its three advantages:

1. digests combine in arbitrary order (VO needs no ordering metadata);
2. projection can be done at the edge (filtered-attribute digests fold
   into the tuple digest without positional bookkeeping);
3. inserts are incremental: ``D' = D^(x_new) mod n``.

The paper optimizes by picking ``n = 2^k`` (modulo reduction becomes a
mask) and computing the exponentiation by repeated squaring.  We
implement that construction verbatim (:class:`ExponentialCommutativeHash`)
including an explicit square-and-multiply path, plus two hardened
alternatives with the same interface (see DESIGN.md, deviation D2):

* :class:`MultiplicativeSetHash` — multiset hash ``∏ H(x_i) mod p`` for a
  large safe prime ``p``;
* :class:`AdditiveSetHash` — LtHash-style lattice hash
  ``Σ H(x_i) mod 2^k``.

All combinators expose the same algebra:

* ``digest_of_bytes(data)`` — base digest of raw bytes (an ``int``);
* ``combine(values)``       — fold a set of digests into one digest;
* ``fold(acc, value)``      — incremental insert of one more digest.

with the invariant ``fold(combine(S), x) == combine(S ∪ {x})``.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.constants import (
    COMMUTATIVE_HASH_BITS,
    COMMUTATIVE_HASH_GENERATOR,
)
from repro.crypto.hashing import BaseHash, Sha256Hash
from repro.crypto.meter import CostMeter, NULL_METER
from repro.exceptions import CryptoError

__all__ = [
    "CommutativeHash",
    "ExponentialCommutativeHash",
    "MultiplicativeSetHash",
    "AdditiveSetHash",
    "get_commutative_hash",
    "pow_by_repeated_squaring",
]


def pow_by_repeated_squaring(base: int, exponent: int, modulus: int) -> int:
    """Square-and-multiply modular exponentiation, written out explicitly.

    The paper calls out this exact optimization ("instead of 15
    multiplications followed by a large modulo reduction at the end, we
    perform only 4 multiplications and 4 modulo reductions").  Python's
    built-in ``pow`` does the same thing in C; this reference version
    exists so tests can pin the algebra and benchmarks can compare.
    """
    if modulus <= 0:
        raise CryptoError("modulus must be positive")
    if exponent < 0:
        raise CryptoError("negative exponents are not part of the scheme")
    result = 1 % modulus
    base %= modulus
    while exponent:
        if exponent & 1:
            result = (result * base) % modulus
        base = (base * base) % modulus
        exponent >>= 1
    return result


class CommutativeHash(Protocol):
    """Protocol implemented by all commutative digest combinators."""

    #: Scheme name used in serialized VOs and ablation benches.
    name: str
    #: Width of a digest value in bytes.
    digest_len: int

    def digest_of_bytes(self, data: bytes) -> int:
        """Base digest of raw bytes, suitable as input to :meth:`combine`."""
        ...

    def combine(self, values: Iterable[int]) -> int:
        """Fold a collection of digest values into a single digest.

        Must be invariant under permutation of ``values``.
        """
        ...

    def fold(self, acc: int, value: int) -> int:
        """Incrementally fold one more digest ``value`` into ``acc``.

        ``fold(combine(S), x) == combine(list(S) + [x])``.
        """
        ...

    def empty(self) -> int:
        """Digest of the empty set (identity for :meth:`fold`)."""
        ...


class ExponentialCommutativeHash:
    """The paper's combinator: ``H(x1,…,xk) = g^(x1·…·xk) mod 2^bits``.

    Digest values are forced **odd** so they stay units modulo ``2^bits``
    and the product in the exponent can never collapse to a multiple of
    the group order purely through factors of two.  (The paper does not
    state this guard; without it, two even digests would frequently
    collide.  DESIGN.md documents the residual weaknesses of the scheme.)

    Args:
        bits: Modulus bit width ``k`` (``n = 2^k``); paper default is 128
            (16-byte digests).
        generator: The fixed base ``g`` (must be odd, > 1).
        base_hash: Base one-way hash used by :meth:`digest_of_bytes`.
        meter: Optional :class:`~repro.crypto.meter.CostMeter` that counts
            hash/combine operations for the computation-cost benches.
        use_builtin_pow: When True (default) use CPython's ``pow``; when
            False use the explicit repeated-squaring reference path.
    """

    def __init__(
        self,
        bits: int = COMMUTATIVE_HASH_BITS,
        generator: int = COMMUTATIVE_HASH_GENERATOR,
        base_hash: BaseHash | None = None,
        meter: CostMeter = NULL_METER,
        use_builtin_pow: bool = True,
    ) -> None:
        if bits < 8:
            raise CryptoError(f"modulus too small: 2^{bits}")
        if generator < 2 or generator % 2 == 0:
            raise CryptoError("generator must be odd and > 1")
        self.name = "exp2k"
        self.bits = bits
        self.modulus = 1 << bits
        self._mask = self.modulus - 1
        self.generator = generator
        self.digest_len = (bits + 7) // 8
        self._base_hash = base_hash or Sha256Hash()
        self.meter = meter
        self._pow = pow if use_builtin_pow else pow_by_repeated_squaring

    def digest_of_bytes(self, data: bytes) -> int:
        """Hash ``data`` into an odd integer in ``[1, 2^bits)``."""
        self.meter.count_hash(len(data))
        raw = self._base_hash.digest_int(data)
        return (raw & self._mask) | 1

    def combine(self, values: Iterable[int]) -> int:
        """``g`` raised to the product of ``values`` (odd-forced), mod 2^bits."""
        acc = self.generator % self.modulus
        count = 0
        for v in values:
            acc = self._pow(acc, self._normalize(v), self.modulus)
            count += 1
        self.meter.count_combine(count)
        return acc

    def fold(self, acc: int, value: int) -> int:
        """Incremental insert: ``acc^(value) mod 2^bits``."""
        self.meter.count_combine(1)
        return self._pow(acc % self.modulus, self._normalize(value), self.modulus)

    def empty(self) -> int:
        """Digest of the empty set: plain ``g``."""
        return self.generator % self.modulus

    def _normalize(self, value: int) -> int:
        """Clamp a digest value into the odd residues the scheme uses."""
        if value <= 0:
            raise CryptoError("digest values must be positive integers")
        return value | 1


class MultiplicativeSetHash:
    """Hardened multiset hash: ``H(S) = ∏ h(x_i) mod p`` for prime ``p``.

    Collision-resistant under the discrete-log/root assumptions in the
    subgroup, unlike the mod-``2^k`` construction.  Same commutative
    algebra; offered as a drop-in for the ablation bench.
    """

    # 1024-bit safe prime (RFC 2409 Oakley group 2 prime, widely vetted).
    _PRIME = int(
        "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
        "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
        "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
        "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
        16,
    )

    def __init__(
        self,
        base_hash: BaseHash | None = None,
        meter: CostMeter = NULL_METER,
    ) -> None:
        self.name = "mult-prime"
        self.modulus = self._PRIME
        self.digest_len = (self.modulus.bit_length() + 7) // 8
        self._base_hash = base_hash or Sha256Hash()
        self.meter = meter

    def digest_of_bytes(self, data: bytes) -> int:
        """Hash ``data`` into ``[1, p)`` (never 0 mod p)."""
        self.meter.count_hash(len(data))
        raw = self._base_hash.digest_int(data)
        return raw % (self.modulus - 1) + 1

    def combine(self, values: Iterable[int]) -> int:
        """Product of re-randomized digests mod ``p``."""
        acc = 1
        count = 0
        for v in values:
            acc = (acc * self._element(v)) % self.modulus
            count += 1
        self.meter.count_combine(count)
        return acc

    def fold(self, acc: int, value: int) -> int:
        """Incremental insert by modular multiplication."""
        self.meter.count_combine(1)
        return (acc * self._element(value)) % self.modulus

    def empty(self) -> int:
        """Multiplicative identity."""
        return 1

    def _element(self, value: int) -> int:
        """Map an arbitrary digest value into a group element.

        Values are re-hashed so that algebraic relations between raw
        digest values cannot be exploited (standard multiset-hash trick).
        """
        if value <= 0:
            raise CryptoError("digest values must be positive integers")
        data = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        return self._base_hash.digest_int(b"elem:" + data) % (self.modulus - 1) + 1


class AdditiveSetHash:
    """LtHash-style additive multiset hash: ``H(S) = Σ h(x_i) mod 2^bits``.

    The cheapest combinator (one addition per element).  Used in the
    hash-choice ablation to quantify what the paper's exponentiation
    scheme costs relative to simple alternatives.
    """

    def __init__(
        self,
        bits: int = 256,
        base_hash: BaseHash | None = None,
        meter: CostMeter = NULL_METER,
    ) -> None:
        if bits < 8:
            raise CryptoError(f"modulus too small: 2^{bits}")
        self.name = "add2k"
        self.bits = bits
        self.modulus = 1 << bits
        self._mask = self.modulus - 1
        self.digest_len = (bits + 7) // 8
        self._base_hash = base_hash or Sha256Hash()
        self.meter = meter

    def digest_of_bytes(self, data: bytes) -> int:
        """Hash ``data`` into ``[1, 2^bits)``."""
        self.meter.count_hash(len(data))
        return (self._base_hash.digest_int(data) & self._mask) | 1

    def combine(self, values: Iterable[int]) -> int:
        """Sum of re-randomized digests mod ``2^bits``."""
        acc = 0
        count = 0
        for v in values:
            acc = (acc + self._element(v)) & self._mask
            count += 1
        self.meter.count_combine(count)
        return acc

    def fold(self, acc: int, value: int) -> int:
        """Incremental insert by modular addition."""
        self.meter.count_combine(1)
        return (acc + self._element(value)) & self._mask

    def empty(self) -> int:
        """Additive identity."""
        return 0

    def _element(self, value: int) -> int:
        """Re-hash a digest value into the additive group."""
        if value <= 0:
            raise CryptoError("digest values must be positive integers")
        data = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        return self._base_hash.digest_int(b"elem:" + data) & self._mask


def get_commutative_hash(name: str, meter: CostMeter = NULL_METER) -> CommutativeHash:
    """Instantiate a commutative combinator by scheme name.

    Args:
        name: One of ``"exp2k"`` (paper), ``"mult-prime"``, ``"add2k"``.
        meter: Cost meter threaded into the instance.

    Raises:
        CryptoError: For unknown scheme names.
    """
    lowered = name.lower()
    if lowered == "exp2k":
        return ExponentialCommutativeHash(meter=meter)
    if lowered == "mult-prime":
        return MultiplicativeSetHash(meter=meter)
    if lowered == "add2k":
        return AdditiveSetHash(meter=meter)
    raise CryptoError(
        f"unknown commutative hash {name!r}; "
        "available: ['exp2k', 'mult-prime', 'add2k']"
    )
