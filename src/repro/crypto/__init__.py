"""Cryptographic substrate: hashes, commutative combinators, RSA, signing.

Public surface re-exported here; see the individual modules for detail:

* :mod:`repro.crypto.primes` — Miller-Rabin and prime generation.
* :mod:`repro.crypto.rsa` — textbook RSA (the paper's ``s``/``s^{-1}``).
* :mod:`repro.crypto.hashing` — base one-way hashes (SHA/MD5 family).
* :mod:`repro.crypto.commutative` — the paper's ``g^x mod 2^k``
  combinator plus hardened alternatives.
* :mod:`repro.crypto.signatures` — digest signing with key epochs.
* :mod:`repro.crypto.keyring` — epoch validity windows (stale replay).
* :mod:`repro.crypto.encoding` — canonical injective byte encodings.
* :mod:`repro.crypto.meter` — Cost_h/Cost_c/Cost_v operation accounting.
"""

from repro.crypto.commutative import (
    AdditiveSetHash,
    CommutativeHash,
    ExponentialCommutativeHash,
    MultiplicativeSetHash,
    get_commutative_hash,
    pow_by_repeated_squaring,
)
from repro.crypto.encoding import (
    decode_value,
    decode_values,
    digest_input,
    encode_value,
    encode_values,
)
from repro.crypto.hashing import BaseHash, Md5Hash, Sha1Hash, Sha256Hash, get_base_hash
from repro.crypto.keyring import EpochRecord, KeyRing
from repro.crypto.meter import NULL_METER, CostMeter, CostWeights
from repro.crypto.primes import generate_prime, is_probable_prime, miller_rabin
from repro.crypto.rsa import (
    RSAKeyPair,
    RSAPrivateKey,
    RSAPublicKey,
    generate_keypair,
)
from repro.crypto.signatures import DigestSigner, DigestVerifier, SignedDigest

__all__ = [
    "AdditiveSetHash",
    "BaseHash",
    "CommutativeHash",
    "CostMeter",
    "CostWeights",
    "DigestSigner",
    "DigestVerifier",
    "EpochRecord",
    "ExponentialCommutativeHash",
    "KeyRing",
    "Md5Hash",
    "MultiplicativeSetHash",
    "NULL_METER",
    "RSAKeyPair",
    "RSAPrivateKey",
    "RSAPublicKey",
    "Sha1Hash",
    "Sha256Hash",
    "SignedDigest",
    "decode_value",
    "decode_values",
    "digest_input",
    "encode_value",
    "encode_values",
    "generate_keypair",
    "generate_prime",
    "get_base_hash",
    "get_commutative_hash",
    "is_probable_prime",
    "miller_rabin",
    "pow_by_repeated_squaring",
]
