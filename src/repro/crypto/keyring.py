"""Key-epoch management for stale-data detection (Section 3.4).

When updates are propagated to edge servers lazily, a compromised edge
server could keep serving old data *with old, still-valid signatures*.
The paper's defence: "the central server can include the timestamp or
version number in its public key, and make available to users the
validity period of each public key at a well-known location".

:class:`KeyRing` is that well-known location.  The central server
registers a new epoch on every key rotation; clients ask the ring which
epochs are currently acceptable and reject signatures outside the
window with :class:`~repro.exceptions.StaleKeyError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rsa import RSAPublicKey
from repro.exceptions import StaleKeyError

__all__ = ["EpochRecord", "KeyRing"]


@dataclass(frozen=True)
class EpochRecord:
    """One registered key epoch.

    Attributes:
        epoch: Monotonically increasing epoch number.
        public_key: Public key valid during this epoch.
        issued_at: Logical timestamp when the epoch began.
        expires_at: Logical timestamp after which signatures under this
            epoch must be rejected (``None`` = still current).
    """

    epoch: int
    public_key: RSAPublicKey
    issued_at: int
    expires_at: int | None = None


@dataclass
class KeyRing:
    """Registry of key epochs with validity windows.

    The ring uses *logical time* (an integer the caller advances), which
    keeps the simulation deterministic; wall-clock integration is a
    one-line adapter.

    Attributes:
        grace: How many logical ticks an expired epoch remains
            acceptable, modelling clients that tolerate propagation lag.
    """

    grace: int = 0
    _records: dict[int, EpochRecord] = field(default_factory=dict)
    _clock: int = 0
    _current_epoch: int = -1

    @property
    def now(self) -> int:
        """Current logical time."""
        return self._clock

    @property
    def current_epoch(self) -> int:
        """Most recently registered epoch number."""
        if self._current_epoch < 0:
            raise StaleKeyError("no key epoch registered yet")
        return self._current_epoch

    def tick(self, steps: int = 1) -> int:
        """Advance logical time; returns the new time."""
        if steps < 0:
            raise ValueError("time cannot move backwards")
        self._clock += steps
        return self._clock

    def register(self, public_key: RSAPublicKey) -> EpochRecord:
        """Register a new epoch for ``public_key``, expiring the old one.

        Returns:
            The new :class:`EpochRecord`.
        """
        new_epoch = self._current_epoch + 1
        if self._current_epoch >= 0:
            old = self._records[self._current_epoch]
            self._records[self._current_epoch] = EpochRecord(
                epoch=old.epoch,
                public_key=old.public_key,
                issued_at=old.issued_at,
                expires_at=self._clock,
            )
        record = EpochRecord(
            epoch=new_epoch, public_key=public_key, issued_at=self._clock
        )
        self._records[new_epoch] = record
        self._current_epoch = new_epoch
        return record

    def public_key_for(self, epoch: int) -> RSAPublicKey:
        """Return the public key for ``epoch`` **if it is still valid**.

        Raises:
            StaleKeyError: If the epoch is unknown, or expired beyond the
                grace window — the stale-replay detection path.
        """
        record = self._records.get(epoch)
        if record is None:
            raise StaleKeyError(f"unknown key epoch {epoch}")
        if record.expires_at is not None and self._clock > record.expires_at + self.grace:
            raise StaleKeyError(
                f"key epoch {epoch} expired at t={record.expires_at} "
                f"(now t={self._clock}, grace={self.grace})"
            )
        return record.public_key

    def is_valid(self, epoch: int) -> bool:
        """True if signatures under ``epoch`` are currently acceptable."""
        try:
            self.public_key_for(epoch)
        except StaleKeyError:
            return False
        return True

    # ------------------------------------------------------------------
    # Wire export / restore (PKI distribution to edge processes)
    # ------------------------------------------------------------------

    def export_records(self) -> list[tuple[int, int, int, int, int | None]]:
        """All epoch records as plain tuples
        ``(epoch, n, e, issued_at, expires_at)`` — everything a remote
        edge or client process needs to rebuild this ring (public
        material only; there is nothing secret in a key ring)."""
        return [
            (r.epoch, r.public_key.n, r.public_key.e, r.issued_at, r.expires_at)
            for r in sorted(self._records.values(), key=lambda r: r.epoch)
        ]

    @classmethod
    def restore(
        cls,
        records: list[tuple[int, int, int, int, int | None]],
        grace: int = 0,
        clock: int = 0,
    ) -> "KeyRing":
        """Rebuild a ring from :meth:`export_records` output."""
        ring = cls(grace=grace)
        for epoch, n, e, issued_at, expires_at in records:
            ring._records[epoch] = EpochRecord(
                epoch=epoch,
                public_key=RSAPublicKey(n=n, e=e),
                issued_at=issued_at,
                expires_at=expires_at,
            )
            ring._current_epoch = max(ring._current_epoch, epoch)
        ring._clock = clock
        return ring
