"""Pure-Python textbook RSA, as used by the paper's signature scheme.

The paper models signing as *encryption with the private key* —
``s(x) = x^d mod N`` — and verification as *decryption with the public
key* — ``s^{-1}(y) = y^e mod N`` (Section 3.2).  This module implements
exactly that primitive plus key generation, with two deliberate
properties:

* **Determinism** — signing is deterministic (textbook RSA has no
  padding randomness), so digests can be compared byte-for-byte, which
  the VB-tree relies on when it stores signed digests inside nodes.
* **Reproducibility** — key generation accepts a seed so tests and
  benchmarks can regenerate identical keys.

Textbook RSA without padding is malleable in general; here it only ever
signs fixed-width one-way digests (never attacker-chosen messages), which
is the same setting the paper assumes.  DESIGN.md documents this.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.constants import RSA_BITS
from repro.crypto.primes import generate_prime
from repro.exceptions import KeyGenerationError, SignatureError

__all__ = ["RSAPublicKey", "RSAPrivateKey", "RSAKeyPair", "generate_keypair"]

#: Conventional public exponent.
PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``.

    ``apply`` is the raw public-key operation — the paper's ``s^{-1}``
    ("decrypt with the public key").
    """

    n: int
    e: int = PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @property
    def signature_len(self) -> int:
        """Length in bytes of signatures under this key."""
        return (self.bits + 7) // 8

    def apply(self, value: int) -> int:
        """Raw public-key operation ``value^e mod n``."""
        if not 0 <= value < self.n:
            raise SignatureError("value outside modulus range")
        return pow(value, self.e, self.n)

    def fingerprint(self) -> int:
        """Short stable identifier for key-equality checks in messages."""
        return hash((self.n, self.e)) & 0xFFFFFFFF


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key with CRT parameters for ~4x faster signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    def public_key(self) -> RSAPublicKey:
        """Derive the matching public key."""
        return RSAPublicKey(n=self.n, e=self.e)

    def apply(self, value: int) -> int:
        """Raw private-key operation ``value^d mod n`` via CRT."""
        if not 0 <= value < self.n:
            raise SignatureError("value outside modulus range")
        # Chinese Remainder Theorem: exponentiate in the two prime fields.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        m1 = pow(value % self.p, dp, self.p)
        m2 = pow(value % self.q, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q


@dataclass(frozen=True)
class RSAKeyPair:
    """A matched private/public key pair."""

    private: RSAPrivateKey
    public: RSAPublicKey

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.public.bits


def generate_keypair(
    bits: int = RSA_BITS,
    seed: int | None = None,
    e: int = PUBLIC_EXPONENT,
) -> RSAKeyPair:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus.

    Args:
        bits: Modulus size in bits (must be even and >= 128; tests use
            512 for speed, production-ish runs 1024/2048).
        seed: Optional seed for reproducible key generation.  When given,
            a ``random.Random(seed)`` PRNG drives prime search; when
            omitted, system entropy is used.
        e: Public exponent (default 65537).

    Raises:
        KeyGenerationError: On invalid sizing or pathological prime draws.
    """
    if bits < 128 or bits % 2:
        raise KeyGenerationError(
            f"modulus size must be an even number of bits >= 128, got {bits}"
        )
    rng = random.Random(seed) if seed is not None else None
    half = bits // 2
    for _ in range(64):
        p = generate_prime(half, rng=rng)
        q = generate_prime(half, rng=rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(e, phi) != 1:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = pow(e, -1, phi)
        private = RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)
        return RSAKeyPair(private=private, public=private.public_key())
    raise KeyGenerationError(
        f"could not generate a {bits}-bit key pair (gcd/size retries exhausted)"
    )
