"""Primality testing and prime generation for the RSA substrate.

Implements deterministic trial division for small candidates and the
Miller-Rabin probabilistic primality test for large ones, plus a prime
generator used by :mod:`repro.crypto.rsa` key generation.

Everything here is pure Python on ``int``; no external dependencies.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.exceptions import KeyGenerationError

__all__ = [
    "SMALL_PRIMES",
    "is_probable_prime",
    "miller_rabin",
    "next_probable_prime",
    "generate_prime",
]

#: Primes below 1000, used for fast trial-division screening.
SMALL_PRIMES: tuple[int, ...] = tuple(
    p
    for p in range(2, 1000)
    if all(p % q for q in range(2, int(p**0.5) + 1))
)

#: Number of Miller-Rabin rounds.  40 rounds gives a false-positive
#: probability below 4^-40 (~1e-24) per composite, far below any practical
#: concern for this library.
DEFAULT_ROUNDS = 40

# Witnesses that make Miller-Rabin *deterministic* for n < 3.3e24
# (Sorenson & Webster).  Used before falling back to random witnesses.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _decompose(n: int) -> tuple[int, int]:
    """Write ``n - 1 = d * 2**r`` with ``d`` odd; return ``(r, d)``."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    return r, d


def _witness_says_composite(a: int, n: int, r: int, d: int) -> bool:
    """Return True if witness ``a`` proves ``n`` composite."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def miller_rabin(
    n: int,
    rounds: int = DEFAULT_ROUNDS,
    rng: Optional[random.Random] = None,
) -> bool:
    """Miller-Rabin probabilistic primality test.

    For ``n`` below the Sorenson-Webster bound the fixed witness set makes
    the answer deterministic; above it, ``rounds`` random witnesses are
    drawn from ``rng`` (or the module-level PRNG).

    Args:
        n: Candidate integer (``n >= 2``).
        rounds: Number of random witnesses for large ``n``.
        rng: Optional PRNG for reproducible witness selection.

    Returns:
        ``True`` if ``n`` is (probably) prime.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    r, d = _decompose(n)
    if n < _DETERMINISTIC_BOUND:
        witnesses: Iterable[int] = (
            a for a in _DETERMINISTIC_WITNESSES if a < n - 1
        )
        return not any(_witness_says_composite(a, n, r, d) for a in witnesses)
    rng = rng or random
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _witness_says_composite(a, n, r, d):
            return False
    return True


def is_probable_prime(n: int, rounds: int = DEFAULT_ROUNDS) -> bool:
    """Convenience alias for :func:`miller_rabin` with default rounds."""
    return miller_rabin(n, rounds=rounds)


def next_probable_prime(n: int) -> int:
    """Return the smallest probable prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not miller_rabin(candidate):
        candidate += 2
    return candidate


def generate_prime(
    bits: int,
    rng: Optional[random.Random] = None,
    max_attempts: int = 100_000,
) -> int:
    """Generate a probable prime of exactly ``bits`` bits.

    The top two bits are forced to 1 (so that the product of two such
    primes has exactly ``2 * bits`` bits — required by RSA key sizing),
    and the bottom bit is forced to 1 (odd).

    Args:
        bits: Bit-length of the prime (``bits >= 8``).
        rng: Optional PRNG for reproducible generation.  When omitted, a
            fresh ``random.SystemRandom`` is used (cryptographic entropy).
        max_attempts: Bail-out bound; prime density makes hitting it
            essentially impossible for sane ``bits``.

    Raises:
        KeyGenerationError: If ``bits < 8`` or no prime was found within
            ``max_attempts`` candidates.
    """
    if bits < 8:
        raise KeyGenerationError(f"prime size too small: {bits} bits")
    rng = rng or random.SystemRandom()
    top = (1 << (bits - 1)) | (1 << (bits - 2))
    for _ in range(max_attempts):
        candidate = rng.getrandbits(bits) | top | 1
        if miller_rabin(candidate, rng=rng if isinstance(rng, random.Random) else None):
            return candidate
    raise KeyGenerationError(
        f"no {bits}-bit prime found in {max_attempts} attempts"
    )
