"""Digest signing — the paper's ``s`` / ``s^{-1}`` operations.

The VB-tree signs *digest values* (integers below the commutative-hash
modulus), not arbitrary messages.  The paper's model is raw RSA:
``s(x) = x^d mod N`` and ``s^{-1}(y) = y^e mod N``; a recipient checks a
digest by decrypting the signed form and comparing with a recomputed
value.

Two concerns are layered on top of the raw primitive:

* **Domain separation / key epochs** — every signature binds a small
  header (scheme tag + key epoch) into the signed integer, implementing
  Section 3.4's "include the timestamp or version number in its public
  key" defence against stale-data replay.  See
  :mod:`repro.crypto.keyring` for epoch validity windows.
* **Cost metering** — sign/verify counts flow into a
  :class:`~repro.crypto.meter.CostMeter` so benches can report the
  paper's ``Cost_v`` terms from the running system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.meter import CostMeter, NULL_METER
from repro.crypto.rsa import RSAKeyPair, RSAPrivateKey, RSAPublicKey
from repro.exceptions import SignatureError

__all__ = ["SignedDigest", "DigestSigner", "DigestVerifier"]

# Multiplier folding the epoch into the signed integer.  The signed
# payload is  value * _EPOCH_SPACE + epoch , which is injective as long
# as epoch < _EPOCH_SPACE.
_EPOCH_SPACE = 1 << 16


@dataclass(frozen=True)
class SignedDigest:
    """An integer digest signed by the central server.

    Attributes:
        signature: The raw RSA signature integer (``payload^d mod N``).
        epoch: Key epoch the signature was produced under.
    """

    signature: int
    epoch: int

    def to_bytes(self, signature_len: int) -> bytes:
        """Serialize as fixed-width signature plus 2-byte epoch."""
        return self.signature.to_bytes(signature_len, "big") + self.epoch.to_bytes(
            2, "big"
        )

    @classmethod
    def from_bytes(cls, data: bytes, signature_len: int) -> "SignedDigest":
        """Parse the serialization produced by :meth:`to_bytes`."""
        if len(data) != signature_len + 2:
            raise SignatureError(
                f"signed digest must be {signature_len + 2} bytes, got {len(data)}"
            )
        return cls(
            signature=int.from_bytes(data[:signature_len], "big"),
            epoch=int.from_bytes(data[signature_len:], "big"),
        )

    def wire_size(self, signature_len: int) -> int:
        """Bytes this signed digest occupies on the wire."""
        return signature_len + 2


class DigestSigner:
    """Signs digest values with the central server's private key.

    Args:
        private_key: RSA private key (only the central DBMS holds one).
        epoch: Current key epoch (bumped on key rotation).
        meter: Cost meter receiving ``count_sign`` events.
    """

    def __init__(
        self,
        private_key: RSAPrivateKey,
        epoch: int = 0,
        meter: CostMeter = NULL_METER,
    ) -> None:
        if not 0 <= epoch < _EPOCH_SPACE:
            raise SignatureError(f"epoch out of range: {epoch}")
        self._key = private_key
        self.epoch = epoch
        self.meter = meter

    @property
    def public_key(self) -> RSAPublicKey:
        """The matching public key (what gets distributed to clients)."""
        return self._key.public_key()

    @property
    def max_value(self) -> int:
        """Largest digest value signable under this key/epoch encoding."""
        return (self._key.n - 1 - self.epoch) // _EPOCH_SPACE

    def sign(self, value: int) -> SignedDigest:
        """Sign a digest value: ``s(value)`` in the paper's notation.

        Raises:
            SignatureError: If ``value`` is negative or too large for the
                modulus after the epoch header is folded in.
        """
        if value < 0:
            raise SignatureError("cannot sign negative digest values")
        payload = value * _EPOCH_SPACE + self.epoch
        if payload >= self._key.n:
            raise SignatureError(
                "digest value too large for signing modulus; "
                "use a larger RSA key or smaller commutative-hash modulus"
            )
        self.meter.count_sign()
        return SignedDigest(signature=self._key.apply(payload), epoch=self.epoch)

    @classmethod
    def from_keypair(
        cls, keypair: RSAKeyPair, epoch: int = 0, meter: CostMeter = NULL_METER
    ) -> "DigestSigner":
        """Convenience constructor from a generated key pair."""
        return cls(keypair.private, epoch=epoch, meter=meter)


class DigestVerifier:
    """Recovers digest values from signatures using the public key.

    This is the paper's ``s^{-1}`` — "decrypt with the public key".
    Clients and edge servers hold one of these; neither can produce new
    signatures with it.

    Args:
        public_key: The central server's public key.
        meter: Cost meter receiving ``count_verify`` events.
    """

    def __init__(
        self, public_key: RSAPublicKey, meter: CostMeter = NULL_METER
    ) -> None:
        self._key = public_key
        self.meter = meter

    @property
    def public_key(self) -> RSAPublicKey:
        """The public key in use."""
        return self._key

    @property
    def signature_len(self) -> int:
        """Byte width of raw signatures under this key."""
        return self._key.signature_len

    def recover(self, signed: SignedDigest) -> int:
        """Decrypt a signed digest and return the embedded digest value.

        Raises:
            SignatureError: If the embedded epoch does not match the
                epoch claimed alongside the signature (forgery/corruption
                indicator).
        """
        self.meter.count_verify()
        payload = self._key.apply(signed.signature)
        value, epoch = divmod(payload, _EPOCH_SPACE)
        if epoch != signed.epoch:
            raise SignatureError(
                f"epoch mismatch: signature embeds {epoch}, claim is {signed.epoch}"
            )
        return value

    def verify_value(self, signed: SignedDigest, expected: int) -> bool:
        """Check that ``signed`` is a valid signature over ``expected``."""
        try:
            return self.recover(signed) == expected
        except SignatureError:
            return False
