"""One-way hash primitives.

The paper needs two distinct hash roles:

* a *base* one-way hash ``h`` that maps a byte string (the canonical
  encoding of ``db | table | attr | key | value``) to a fixed-width
  digest — the paper cites MD5 and SHA as candidates;
* a *combining* one-way hash ``H`` over sets of digests, which must be
  **commutative** — that one lives in :mod:`repro.crypto.commutative`.

This module provides the base hashes as integer-valued functions so the
commutative combinators can use the outputs directly as exponents.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol

from repro.exceptions import CryptoError

__all__ = [
    "BaseHash",
    "Sha256Hash",
    "Sha1Hash",
    "Md5Hash",
    "get_base_hash",
]


class BaseHash(Protocol):
    """Protocol for base one-way hashes used to digest attribute bytes."""

    #: Human-readable algorithm name ("sha256", ...).
    name: str
    #: Digest width in bytes.
    digest_len: int

    def digest_bytes(self, data: bytes) -> bytes:
        """Hash ``data`` to :attr:`digest_len` bytes."""
        ...

    def digest_int(self, data: bytes) -> int:
        """Hash ``data`` to an integer in ``[0, 256**digest_len)``."""
        ...


class _HashlibHash:
    """Base hash backed by a :mod:`hashlib` construction."""

    def __init__(self, name: str, factory: Callable[[], "hashlib._Hash"]) -> None:
        self.name = name
        self._factory = factory
        self.digest_len = factory().digest_size

    def digest_bytes(self, data: bytes) -> bytes:
        h = self._factory()
        h.update(data)
        return h.digest()

    def digest_int(self, data: bytes) -> int:
        return int.from_bytes(self.digest_bytes(data), "big")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class Sha256Hash(_HashlibHash):
    """SHA-256 — the default base hash (FIPS 180)."""

    def __init__(self) -> None:
        super().__init__("sha256", hashlib.sha256)


class Sha1Hash(_HashlibHash):
    """SHA-1 — cited by the paper ([1], FIPS 180-1).  Kept for fidelity
    experiments only; do not use for new deployments."""

    def __init__(self) -> None:
        super().__init__("sha1", hashlib.sha1)


class Md5Hash(_HashlibHash):
    """MD5 — cited by the paper ([14], RFC 1321).  Fidelity only."""

    def __init__(self) -> None:
        super().__init__("md5", hashlib.md5)


_REGISTRY: dict[str, Callable[[], BaseHash]] = {
    "sha256": Sha256Hash,
    "sha1": Sha1Hash,
    "md5": Md5Hash,
}


def get_base_hash(name: str) -> BaseHash:
    """Look up a base hash by name.

    Raises:
        CryptoError: For unknown algorithm names.
    """
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise CryptoError(
            f"unknown base hash {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
