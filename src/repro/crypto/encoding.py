"""Canonical byte encoding for digest inputs and wire formats.

Formula (1) of the paper hashes the concatenation
``db | table | attr | key | value``.  A naive concatenation is ambiguous
(``"ab"+"c" == "a"+"bc"``), so every component here is length-prefixed
and type-tagged, giving an **injective** encoding: distinct value tuples
never encode to the same byte string.  The same primitives back the VO
wire format in :mod:`repro.core.wire`.

Supported scalar types: ``None``, ``bool``, ``int`` (arbitrary
precision), ``float``, ``str``, ``bytes``.
"""

from __future__ import annotations

import struct
from typing import Any, Iterable

from repro.exceptions import EncodingError

__all__ = [
    "encode_value",
    "decode_value",
    "encode_values",
    "decode_values",
    "encode_uint",
    "decode_uint",
    "digest_input",
]

# One-byte type tags.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"


def encode_uint(value: int) -> bytes:
    """Encode a non-negative int as a 4-byte big-endian length/count field."""
    if value < 0 or value > 0xFFFFFFFF:
        raise EncodingError(f"uint out of range: {value}")
    return struct.pack(">I", value)


def decode_uint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a 4-byte big-endian uint; return ``(value, new_offset)``."""
    if offset + 4 > len(data):
        raise EncodingError("truncated uint field")
    return struct.unpack_from(">I", data, offset)[0], offset + 4


def encode_value(value: Any) -> bytes:
    """Canonically encode one scalar as ``tag | length | payload``.

    The encoding is injective across all supported types: the type tag
    separates namespaces and the length prefix removes concatenation
    ambiguity.

    Raises:
        EncodingError: For unsupported types (including ``int``-like
            ``bool`` confusion — ``bool`` is tagged separately).
    """
    if value is None:
        return _TAG_NONE + encode_uint(0)
    if value is True:
        return _TAG_TRUE + encode_uint(0)
    if value is False:
        return _TAG_FALSE + encode_uint(0)
    if isinstance(value, int):
        payload = value.to_bytes(
            (value.bit_length() + 8) // 8 or 1, "big", signed=True
        )
        return _TAG_INT + encode_uint(len(payload)) + payload
    if isinstance(value, float):
        payload = struct.pack(">d", value)
        return _TAG_FLOAT + encode_uint(len(payload)) + payload
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return _TAG_STR + encode_uint(len(payload)) + payload
    if isinstance(value, (bytes, bytearray, memoryview)):
        payload = bytes(value)
        return _TAG_BYTES + encode_uint(len(payload)) + payload
    raise EncodingError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: bytes, offset: int = 0) -> tuple[Any, int]:
    """Decode one scalar encoded by :func:`encode_value`.

    Returns:
        ``(value, new_offset)``.

    Raises:
        EncodingError: On truncation or unknown tags.
    """
    if offset >= len(data):
        raise EncodingError("truncated value: missing tag")
    tag = data[offset : offset + 1]
    length, cursor = decode_uint(data, offset + 1)
    payload = data[cursor : cursor + length]
    if len(payload) != length:
        raise EncodingError("truncated value payload")
    cursor += length
    if tag == _TAG_NONE:
        return None, cursor
    if tag == _TAG_TRUE:
        return True, cursor
    if tag == _TAG_FALSE:
        return False, cursor
    if tag == _TAG_INT:
        return int.from_bytes(payload, "big", signed=True), cursor
    if tag == _TAG_FLOAT:
        try:
            return struct.unpack(">d", payload)[0], cursor
        except struct.error as exc:
            raise EncodingError(f"bad float payload: {exc}") from exc
    if tag == _TAG_STR:
        try:
            return payload.decode("utf-8"), cursor
        except UnicodeDecodeError as exc:
            raise EncodingError(f"bad utf-8 payload: {exc}") from exc
    if tag == _TAG_BYTES:
        return payload, cursor
    raise EncodingError(f"unknown type tag {tag!r}")


def encode_values(values: Iterable[Any]) -> bytes:
    """Encode a sequence of scalars with a leading count."""
    items = [encode_value(v) for v in values]
    return encode_uint(len(items)) + b"".join(items)


def decode_values(data: bytes, offset: int = 0) -> tuple[list[Any], int]:
    """Decode a sequence written by :func:`encode_values`."""
    count, cursor = decode_uint(data, offset)
    out: list[Any] = []
    for _ in range(count):
        value, cursor = decode_value(data, cursor)
        out.append(value)
    return out, cursor


def digest_input(
    db_name: str,
    table_name: str,
    attr_name: str,
    key: Any,
    value: Any,
) -> bytes:
    """Build the canonical byte string hashed by formula (1).

    ``h( db | table | attr | key | value )`` with every component
    length-prefixed so the mapping from the 5-tuple to bytes is
    injective.
    """
    return (
        encode_value(db_name)
        + encode_value(table_name)
        + encode_value(attr_name)
        + encode_value(key)
        + encode_value(value)
    )
