"""The Naive baseline — the paper's appendix strategy.

"The naive strategy maintains for each attribute a signed digest, and
for each tuple a signed digest obtained from the attribute digests.  It
transmits the result tuples together with their attribute and tuple
digests for the client to verify the correctness of the result tuples."
(Appendix; Figure 14.)

Per result tuple the edge ships:

* the tuple's signed digest ``D_T``;
* the value of every *returned* attribute;
* the signed digest of every *filtered* attribute (projection support).

The client recomputes each returned attribute's digest, decrypts each
filtered attribute's digest, combines them into the tuple digest and
compares with the decrypted ``D_T`` — one signature decryption **per
tuple**, which is exactly the linear-in-``Q_r`` decryption cost that
Figures 10 and 12 show the VB-tree beating.

There is no node-level structure, hence no protection against an edge
server *omitting* tuples (same trust model as the paper) and no
envelope — the scheme's communication cost has no ``D_S``/``D_N``
component but pays one signature per tuple instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.core.digests import DigestEngine, SigningDigestEngine
from repro.crypto.encoding import encode_uint, encode_value, encode_values
from repro.crypto.keyring import KeyRing
from repro.crypto.meter import CostMeter, NULL_METER
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signatures import DigestSigner, DigestVerifier, SignedDigest
from repro.db.expressions import Predicate
from repro.db.rows import Row
from repro.db.schema import TableSchema
from repro.exceptions import SignatureError, StaleKeyError, VOFormatError

__all__ = ["NaiveTupleAuth", "NaiveResult", "NaiveStore", "NaiveVerifier"]


@dataclass
class NaiveTupleAuth:
    """Signed digests for one stored tuple under the naive scheme."""

    signed_tuple: SignedDigest
    signed_attrs: tuple[SignedDigest, ...]


@dataclass
class NaiveResult:
    """A query result under the naive strategy (Figure 14's wire shape).

    Attributes:
        tuple_digests: one signed tuple digest per result row.
        filtered_attr_digests: per row, the signed digests of the
            attributes removed by projection (order follows the filtered
            column order).
    """

    table: str
    columns: tuple[str, ...]
    all_columns: tuple[str, ...]
    key_column: str
    rows: list[tuple[Any, ...]]
    keys: list[Any]
    tuple_digests: list[SignedDigest] = field(default_factory=list)
    filtered_attr_digests: list[tuple[SignedDigest, ...]] = field(
        default_factory=list
    )

    @property
    def num_rows(self) -> int:
        """``Q_r``."""
        return len(self.rows)

    @property
    def filtered_columns(self) -> tuple[str, ...]:
        """Columns removed by projection."""
        returned = set(self.columns)
        return tuple(c for c in self.all_columns if c not in returned)

    def wire_size(self, sig_len: int) -> int:
        """Serialized size in bytes (same encoding family as the VB-tree
        wire format, so byte comparisons are apples-to-apples)."""
        total = (
            4
            + len(encode_value(self.table))
            + len(encode_value(self.key_column))
            + len(encode_values(self.columns))
            + len(encode_values(self.all_columns))
            + 4
        )
        for row in self.rows:
            total += len(encode_values(row))
        total += len(encode_values(self.keys))
        total += len(self.tuple_digests) * (sig_len + 2)
        for digests in self.filtered_attr_digests:
            total += 4 + len(digests) * (sig_len + 2)
        return total


class NaiveStore:
    """Central-server side: per-tuple signed digests for a table.

    Args:
        schema: The table's schema.
        signing: The central server's signing engine (the same digest
            formulas (1)-(2) as the VB-tree, so the two schemes differ
            only in what they *ship*, exactly like the paper's
            comparison).
    """

    def __init__(self, schema: TableSchema, signing: SigningDigestEngine) -> None:
        self.schema = schema
        self.signing = signing
        self._auth: dict[Any, NaiveTupleAuth] = {}

    @classmethod
    def build(
        cls,
        schema: TableSchema,
        rows: Iterable[Row],
        signing: SigningDigestEngine,
    ) -> "NaiveStore":
        """Digest and sign every row."""
        store = cls(schema, signing)
        for row in rows:
            store.add(row)
        return store

    def add(self, row: Row) -> None:
        """Sign a newly inserted row's digests."""
        _digests, signed_tuple, signed_attrs = self.signing.sign_tuple(
            self.schema.name, row
        )
        self._auth[row.key] = NaiveTupleAuth(
            signed_tuple=signed_tuple, signed_attrs=signed_attrs
        )

    def install_signed(
        self,
        key: Any,
        signed_tuple: SignedDigest,
        signed_attrs: tuple[SignedDigest, ...],
    ) -> None:
        """Install centrally-signed digests for ``key`` without signing.

        Replica-side counterpart of :meth:`add`: edge servers cannot
        sign, so delta replication ships the central server's signatures
        (identical to what :meth:`add` would produce — raw RSA signing
        is deterministic) and installs them here.
        """
        self._auth[key] = NaiveTupleAuth(
            signed_tuple=signed_tuple, signed_attrs=signed_attrs
        )

    def remove(self, key: Any) -> None:
        """Drop a deleted row's digests."""
        self._auth.pop(key, None)

    def auth_for(self, key: Any) -> NaiveTupleAuth:
        """Signed digests of the tuple at ``key``."""
        try:
            return self._auth[key]
        except KeyError:
            raise VOFormatError(f"no naive digests for key {key!r}") from None

    def clone(self) -> "NaiveStore":
        """Replica copy (signed digests are immutable and shared)."""
        new = NaiveStore(self.schema, self.signing)
        new._auth = dict(self._auth)
        return new

    # ------------------------------------------------------------------
    # Edge-side result construction
    # ------------------------------------------------------------------

    def build_result(
        self,
        rows: Sequence[Row],
        columns: Optional[Sequence[str]] = None,
    ) -> NaiveResult:
        """Assemble the naive wire object for ``rows``."""
        all_columns = self.schema.column_names
        returned = tuple(columns) if columns is not None else all_columns
        returned_set = set(returned)
        filtered_idx = [
            i for i, c in enumerate(all_columns) if c not in returned_set
        ]
        result = NaiveResult(
            table=self.schema.name,
            columns=returned,
            all_columns=all_columns,
            key_column=self.schema.key,
            rows=[tuple(r[c] for c in returned) for r in rows],
            keys=[r.key for r in rows],
        )
        for row in rows:
            auth = self.auth_for(row.key)
            result.tuple_digests.append(auth.signed_tuple)
            result.filtered_attr_digests.append(
                tuple(auth.signed_attrs[i] for i in filtered_idx)
            )
        return result


class NaiveVerifier:
    """Client-side verification for the naive strategy.

    One signature decryption per tuple plus one per filtered attribute —
    the appendix's computation-cost formula made executable.
    """

    def __init__(
        self,
        engine: DigestEngine,
        public_key: RSAPublicKey | None = None,
        keyring: KeyRing | None = None,
        meter: CostMeter = NULL_METER,
    ) -> None:
        if public_key is None and keyring is None:
            raise VOFormatError("verifier needs a public key or a key ring")
        self.engine = engine
        self.keyring = keyring
        self.meter = meter
        self._fixed = DigestVerifier(public_key, meter=meter) if public_key else None
        self._by_epoch: dict[int, DigestVerifier] = {}

    def _recover(self, signed: SignedDigest) -> int:
        if self.keyring is not None:
            # Validity re-checked on every recovery (stale-replay defence).
            key = self.keyring.public_key_for(signed.epoch)
            verifier = self._by_epoch.get(signed.epoch)
            if verifier is None:
                verifier = DigestVerifier(key, meter=self.meter)
                self._by_epoch[signed.epoch] = verifier
            return verifier.recover(signed)
        assert self._fixed is not None
        return self._fixed.recover(signed)

    def verify(self, result: NaiveResult) -> bool:
        """Check every tuple's digest; False on any mismatch."""
        try:
            return self._verify(result)
        except (SignatureError, StaleKeyError, VOFormatError):
            return False

    def _verify(self, result: NaiveResult) -> bool:
        if not (
            len(result.rows)
            == len(result.keys)
            == len(result.tuple_digests)
            == len(result.filtered_attr_digests)
        ):
            raise VOFormatError("naive result arrays misaligned")
        filtered = result.filtered_columns
        for row, key, signed_tuple, filtered_sigs in zip(
            result.rows,
            result.keys,
            result.tuple_digests,
            result.filtered_attr_digests,
            strict=True,
        ):
            if len(filtered_sigs) != len(filtered):
                raise VOFormatError("filtered digest arity mismatch")
            attr_values = [
                self.engine.attribute_value(result.table, col, key, value)
                for col, value in zip(result.columns, row, strict=False)
            ]
            attr_values.extend(self._recover(s) for s in filtered_sigs)
            expected = self._recover(signed_tuple)
            if self.engine.tuple_value(attr_values) != expected:
                return False
        return True
