"""Devanbu-style Merkle-hash-tree baseline ([5] in the paper).

The scheme the paper positions itself against: a binary Merkle hash
tree over the tuples of one sort order, with **only the root signed**.
A range query's VO contains the sibling hashes on the paths from the
result's boundaries up to the root, so:

* the VO grows with ``log N_r`` — *dependent on the database size*
  (the limitation the VB-tree removes by signing every node);
* projection cannot be done at the edge — whole tuples must be shipped,
  because leaf hashes commit to the full tuple encoding;
* any update invalidates the single root signature, so readers of
  unrelated ranges are affected (no per-subtree locking).

Implemented faithfully enough to quantify those trade-offs in
``bench_ablation_granularity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.crypto.encoding import encode_value, encode_values
from repro.crypto.hashing import BaseHash, Sha256Hash
from repro.crypto.meter import CostMeter, NULL_METER
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signatures import DigestSigner, DigestVerifier, SignedDigest
from repro.db.rows import Row
from repro.db.schema import TableSchema
from repro.exceptions import SignatureError, VOFormatError

__all__ = ["MerkleTree", "MerkleRangeProof", "MerkleVerifier", "ROOT_SPACE"]

#: Public constant: the root hash is reduced into this space before
#: signing so it fits any RSA modulus >= 256 bits.  Both signer and
#: verifier use it, so no key-size knowledge leaks into verification.
ROOT_SPACE = 1 << 224


def _leaf_bytes(table: str, row_values: Sequence[Any]) -> bytes:
    return b"leaf:" + encode_value(table) + encode_values(row_values)


@dataclass(frozen=True)
class MerkleRangeProof:
    """VO for a contiguous range ``[first_index, first_index + len(rows))``.

    ``siblings`` lists ``(level, index, hash)`` for every node hash the
    client cannot recompute from the result tuples; level 0 is the leaf
    level.  ``total_leaves`` is needed to rebuild the tree shape — an
    explicit reminder that this baseline's proofs depend on the table
    size.
    """

    table: str
    first_index: int
    total_leaves: int
    rows: tuple[tuple[Any, ...], ...]
    siblings: tuple[tuple[int, int, bytes], ...]
    signed_root: SignedDigest

    def wire_size(self, sig_len: int, hash_len: int = 32) -> int:
        """Serialized size in bytes: tuples + sibling hashes + root sig."""
        total = 4 + 4 + len(encode_value(self.table))
        for row in self.rows:
            total += len(encode_values(row))
        total += len(self.siblings) * (1 + 4 + hash_len)
        total += sig_len + 2
        return total


class MerkleTree:
    """Binary Merkle hash tree over a table's rows in key order.

    Args:
        schema: Table schema.
        rows: Rows in key order (the "sort order" of [5]; one tree is
            needed per sort order, which is the storage-overhead
            criticism in Section 2).
        signer: The owner's signer (signs the root hash only).
        base_hash: Leaf/internal hash (default SHA-256).
    """

    def __init__(
        self,
        schema: TableSchema,
        rows: Iterable[Row],
        signer: DigestSigner,
        base_hash: BaseHash | None = None,
        meter: CostMeter = NULL_METER,
    ) -> None:
        self.schema = schema
        self.hash = base_hash or Sha256Hash()
        self.meter = meter
        self._rows = list(rows)
        self._levels: list[list[bytes]] = []
        self._build()
        root_int = int.from_bytes(self.root_hash(), "big") % ROOT_SPACE
        self._root_int = root_int
        self.signed_root = signer.sign(root_int)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _hash_bytes(self, data: bytes) -> bytes:
        self.meter.count_hash(len(data))
        return self.hash.digest_bytes(data)

    def _build(self) -> None:
        if not self._rows:
            self._levels = [[self._hash_bytes(b"empty:" + self.schema.name.encode())]]
            return
        leaves = [
            self._hash_bytes(_leaf_bytes(self.schema.name, row.values))
            for row in self._rows
        ]
        self._levels = [leaves]
        while len(self._levels[-1]) > 1:
            prev = self._levels[-1]
            nxt = []
            for i in range(0, len(prev), 2):
                if i + 1 < len(prev):
                    nxt.append(self._hash_bytes(b"node:" + prev[i] + prev[i + 1]))
                    self.meter.count_combine(1)
                else:
                    nxt.append(prev[i])  # odd node promoted unchanged
            self._levels.append(nxt)

    @property
    def num_rows(self) -> int:
        """Number of leaves (tuples)."""
        return len(self._rows)

    def height(self) -> int:
        """Number of levels including the leaf level."""
        return len(self._levels)

    def root_hash(self) -> bytes:
        """The root hash (the only signed value in this scheme)."""
        return self._levels[-1][0]

    def root_int(self) -> int:
        """Root hash as the signed integer."""
        return self._root_int

    # ------------------------------------------------------------------
    # Range proofs
    # ------------------------------------------------------------------

    def prove_range(self, first_index: int, count: int) -> MerkleRangeProof:
        """Build the VO for ``count`` consecutive tuples starting at
        ``first_index``.

        Raises:
            VOFormatError: On an out-of-bounds range.
        """
        if count <= 0:
            raise VOFormatError(
                "Merkle range proofs need at least one tuple; this "
                "baseline has no way to prove emptiness"
            )
        if first_index < 0 or first_index + count > self.num_rows:
            raise VOFormatError(
                f"range [{first_index}, {first_index + count}) out of bounds"
            )
        known = set(range(first_index, first_index + count))
        siblings: list[tuple[int, int, bytes]] = []
        for level in range(len(self._levels) - 1):
            next_known = set()
            nodes = self._levels[level]
            for i in sorted(known):
                buddy = i ^ 1
                if buddy < len(nodes) and buddy not in known:
                    siblings.append((level, buddy, nodes[buddy]))
                next_known.add(i // 2)
            known = next_known
        return MerkleRangeProof(
            table=self.schema.name,
            first_index=first_index,
            total_leaves=self.num_rows,
            rows=tuple(tuple(r.values) for r in self._rows[first_index : first_index + count]),
            siblings=tuple(siblings),
            signed_root=self.signed_root,
        )

    def prove_key_range(self, low: Any, high: Any) -> MerkleRangeProof:
        """Proof for all rows with ``low <= key <= high``."""
        keys = [r.key for r in self._rows]
        import bisect

        first = bisect.bisect_left(keys, low)
        last = bisect.bisect_right(keys, high)
        return self.prove_range(first, last - first)


class MerkleVerifier:
    """Client-side verification of Merkle range proofs."""

    def __init__(
        self,
        public_key: RSAPublicKey,
        base_hash: BaseHash | None = None,
        meter: CostMeter = NULL_METER,
    ) -> None:
        self.hash = base_hash or Sha256Hash()
        self.meter = meter
        self._verifier = DigestVerifier(public_key, meter=meter)

    def _hash_bytes(self, data: bytes) -> bytes:
        self.meter.count_hash(len(data))
        return self.hash.digest_bytes(data)

    def verify(self, proof: MerkleRangeProof) -> bool:
        """Recompute the root from result tuples + siblings and compare
        against the signed root."""
        try:
            return self._verify(proof)
        except (SignatureError, VOFormatError, IndexError):
            return False

    def _verify(self, proof: MerkleRangeProof) -> bool:
        known: dict[int, bytes] = {
            proof.first_index
            + i: self._hash_bytes(_leaf_bytes(proof.table, row))
            for i, row in enumerate(proof.rows)
        }
        sibs: dict[tuple[int, int], bytes] = {
            (level, idx): h for level, idx, h in proof.siblings
        }
        width = proof.total_leaves
        level = 0
        while width > 1:
            nxt: dict[int, bytes] = {}
            for i, h in known.items():
                buddy = i ^ 1
                if buddy >= width:
                    nxt[i // 2] = h  # odd node promoted
                    continue
                other = known.get(buddy) or sibs.get((level, buddy))
                if other is None:
                    raise VOFormatError(
                        f"missing sibling at level {level}, index {buddy}"
                    )
                left, right = (h, other) if i % 2 == 0 else (other, h)
                if buddy in known and buddy < i:
                    continue  # pair handled when visiting the left node
                nxt[i // 2] = self._hash_bytes(b"node:" + left + right)
                self.meter.count_combine(1)
            known = nxt
            width = (width + 1) // 2
            level += 1
        if 0 not in known:
            raise VOFormatError("proof never reaches the root")
        root_int = int.from_bytes(known[0], "big") % ROOT_SPACE
        recovered = self._verifier.recover(proof.signed_root)
        return root_int == recovered
