"""Baselines the paper compares against (or criticizes).

* :mod:`repro.baselines.naive` — the appendix's per-tuple-signature
  strategy; the comparison partner in Figures 10-13.
* :mod:`repro.baselines.merkle` — a Devanbu-et-al-style Merkle hash
  tree with a single signed root; the related work whose limitations
  (Section 2) motivate the VB-tree.
"""

from repro.baselines.merkle import (
    MerkleRangeProof,
    MerkleTree,
    MerkleVerifier,
    ROOT_SPACE,
)
from repro.baselines.naive import (
    NaiveResult,
    NaiveStore,
    NaiveTupleAuth,
    NaiveVerifier,
)

__all__ = [
    "MerkleRangeProof",
    "MerkleTree",
    "MerkleVerifier",
    "NaiveResult",
    "NaiveStore",
    "NaiveTupleAuth",
    "NaiveVerifier",
    "ROOT_SPACE",
]
