#!/usr/bin/env python3
"""Adversary gallery: every attack the VB-tree detects — and the one
trust-model boundary it does not.

Walks through Section 3.1's threat model against a compromised edge
server: at-rest value tampering, forged tuples, in-flight rewrites,
dropped results, and stale-data replay after a key rotation.

Run:  python examples/tamper_detection.py
"""

from repro.edge.adversary import (
    DropTuple,
    ResponseTamper,
    SpuriousTuple,
    StaleReplay,
    ValueTamper,
)
from repro.edge.central import CentralServer, ReplicationMode
from repro.workloads.generator import TableSpec, generate_table


def banner(title: str) -> None:
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))


def main() -> None:
    central = CentralServer(
        db_name="ledger",
        rsa_bits=512,
        seed=99,
        replication=ReplicationMode.LAZY,
        )
    schema, rows = generate_table(
        TableSpec(name="accounts", rows=300, columns=6, seed=5)
    )
    central.create_table(schema, rows)
    client = central.make_client()

    # ---------------------------------------------------------------
    banner("1. at-rest tampering (hacked replica)")
    edge = central.spawn_edge_server("edge-a")
    ValueTamper(table="accounts", key=42, column="a1",
                new_value="1000000").apply(edge)
    verdict = client.verify(edge.range_query("accounts", 30, 60))
    print(f"tampered balance served -> verified={verdict.ok}  "
          f"[{verdict.reason}]")
    assert not verdict.ok

    # ---------------------------------------------------------------
    banner("2. forged tuple (attacker cannot sign)")
    edge = central.spawn_edge_server("edge-b")
    SpuriousTuple(
        table="accounts",
        row_values=(9999, "ghost", "x", "x", "x", "x"),
    ).apply(edge)
    verdict = client.verify(edge.range_query("accounts", 9990, 10010))
    print(f"forged tuple returned -> verified={verdict.ok}  "
          f"[{verdict.reason}]")
    assert not verdict.ok

    # ---------------------------------------------------------------
    banner("3. man-in-the-middle rewrite of the response")
    edge = central.spawn_edge_server("edge-c")
    ResponseTamper(row_index=0, column_index=1, new_value="evil").install(edge)
    verdict = client.verify(edge.range_query("accounts", 0, 30))
    print(f"in-flight rewrite -> verified={verdict.ok}")
    assert not verdict.ok

    # ---------------------------------------------------------------
    banner("4. dropped result tuple (no cover)")
    edge = central.spawn_edge_server("edge-d")
    DropTuple(table="accounts", index=3, cover=False).install(edge)
    verdict = client.verify(edge.range_query("accounts", 0, 30))
    print(f"silently dropped tuple -> verified={verdict.ok}")
    assert not verdict.ok

    # ---------------------------------------------------------------
    banner("5. THE TRUST-MODEL BOUNDARY: drop + cover")
    edge = central.spawn_edge_server("edge-e")
    DropTuple(table="accounts", index=3, cover=True).install(edge)
    resp = edge.range_query("accounts", 0, 30)
    verdict = client.verify(resp)
    print(f"malicious drop covered by the tuple's own signed digest -> "
          f"verified={verdict.ok}   <-- passes!")
    print("   (Section 3.1: edge servers are assumed not to act "
          "maliciously; completeness relies on that assumption)")
    assert verdict.ok

    # ---------------------------------------------------------------
    banner("6. stale replay, defeated by key rotation")
    stale_edge = central.spawn_edge_server("edge-stale")
    print(f"before rotation: verified="
          f"{client.verify(stale_edge.range_query('accounts', 0, 10)).ok}")
    central.rotate_key(seed=100)   # new epoch; replicas NOT propagated (lazy)
    central.keyring.tick()         # validity window of the old key lapses
    print(f"edge staleness: {StaleReplay(table='accounts').is_stale(central, stale_edge)}")
    verdict = client.verify(stale_edge.range_query("accounts", 0, 10))
    print(f"after rotation: verified={verdict.ok}  [{verdict.reason}]")
    assert not verdict.ok
    central.propagate()
    verdict = client.verify(stale_edge.range_query("accounts", 0, 10))
    print(f"after propagation: verified={verdict.ok}")
    assert verdict.ok


if __name__ == "__main__":
    main()
