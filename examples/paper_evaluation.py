#!/usr/bin/env python3
"""Regenerate the paper's entire analytical evaluation in one command.

Prints the series behind Figures 8-13 and the Section 4.1/4.4 tables at
the paper's default parameters (Table 1).  The same series are produced
(with timings and measured counterparts) by ``pytest benchmarks/
--benchmark-only``; this script is the quick, dependency-free view.

Run:  python examples/paper_evaluation.py
"""

from repro.analysis import (
    Parameters,
    delete_series,
    fig10_series,
    fig11_series,
    fig12_series,
    fig13a_series,
    fig13b_series,
    fig8_series,
    fig9_series,
    storage_costs,
)
from repro.bench.series import format_table


def show(title: str, headers, rows) -> None:
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))


def main() -> None:
    p = Parameters()
    print("Pang & Tan, ICDE 2004 — analytical evaluation at Table 1 defaults")
    print(f"|D|={p.digest_len}B |K|={p.key_len}B |B|={p.block_size}B "
          f"N_r={p.num_rows:,} N_c={p.num_cols}")

    show("Figure 8: fan-out vs key length",
         ["log2|K|", "B-tree", "VB-tree"], fig8_series())
    show("Figure 9: height vs key length",
         ["log2|K|", "B-tree", "VB-tree"], fig9_series())

    sel = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    for qc, label in ((2, "a"), (5, "b"), (8, "c")):
        show(f"Figure 10({label}): communication cost, Q_c={qc} (bytes)",
             ["sel %", "Naive", "VB-tree"], fig10_series(qc, selectivities=sel))

    show("Figure 11: communication vs attrFactor (|A| = f x |D|)",
         ["factor", "Naive(20%)", "VB(20%)", "Naive(80%)", "VB(80%)"],
         [(f, e["naive(20%)"], e["vbtree(20%)"], e["naive(80%)"],
           e["vbtree(80%)"]) for f, e in fig11_series()])

    for x, label in ((5, "a"), (10, "b"), (100, "c")):
        show(f"Figure 12({label}): computation cost, X={x} (Cost_h units)",
             ["sel %", "Naive", "VB-tree"], fig12_series(x, selectivities=sel))

    show("Figure 13(a): computation vs Cost_c/Cost_a (X=10)",
         ["ratio", "Naive(20%)", "VB(20%)", "Naive(80%)", "VB(80%)"],
         [(r, e["naive(20%)"], e["vbtree(20%)"], e["naive(80%)"],
           e["vbtree(80%)"]) for r, e in fig13a_series()])

    show("Figure 13(b): computation vs Q_c (X=10)",
         ["Q_c", "Naive(20%)", "VB(20%)", "Naive(80%)", "VB(80%)"],
         [(q, e["naive(20%)"], e["vbtree(20%)"], e["naive(80%)"],
           e["vbtree(80%)"]) for q, e in fig13b_series()])

    s = storage_costs(p)
    show("Section 4.1: storage",
         ["quantity", "B-tree", "VB-tree"],
         [("fan-out", s.btree_fanout, s.vbtree_fanout),
          ("height", s.btree_height, s.vbtree_height),
          ("index bytes", s.btree_index_bytes, s.vbtree_index_bytes),
          ("table digest overhead", 0, s.table_digest_overhead)])

    show("Section 4.4: update costs (formulas 11-12)",
         ["deleted Q_r", "delete cost", "insert cost"], delete_series(p))


if __name__ == "__main__":
    main()
