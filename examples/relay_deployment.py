#!/usr/bin/env python3
"""Relay tier: central → relays → edges, over real processes and TCP.

Launches the trusted central server in this process, two *unkeyed
relay processes* (``python -m repro.edge.serve --relay``) dialing it,
and two edge processes dialing each relay, then walks the relay
story (DESIGN.md §13):

* fan-out economics — the central ships each signed frame once per
  *relay*; the relays re-fan-out the byte-identical bytes, so central
  egress scales with the relay count, not the edge count;
* trust — the relays hold no private key; queries forwarded through
  them verify end-to-end against the central public key;
* aggregation — each relay folds its edges' cursor acks into one
  cumulative min-cursor ack upstream;
* failure — one relay is SIGKILLed mid-stream; writes keep
  committing, the sibling relay's subtree keeps serving verified
  answers, and the restarted relay (empty store, same listen port)
  heals its whole subtree via snapshot back to cursor parity.

Run:  python examples/relay_deployment.py
"""

from repro.edge.central import CentralServer
from repro.edge.deploy import RelayDeployment
from repro.workloads.generator import TableSpec, generate_table


def main() -> None:
    central = CentralServer("edgenet", rsa_bits=512, seed=2026)
    schema, rows = generate_table(
        TableSpec(name="items", rows=200, columns=4, seed=13)
    )
    central.create_table(schema, rows, fanout_override=8)
    client = central.make_client()

    with RelayDeployment(central) as rd:
        host, port = rd.address
        print(f"--- central listening on {host}:{port} ---")
        for relay in ("relay-0", "relay-1"):
            rd.launch_relay(relay)
        for relay in ("relay-0", "relay-1"):
            rd.wait_for_relay(relay)
            lhost, lport = rd.relay_address(relay)
            print(f"  {relay}: pid {rd.relays[relay].process.pid}, "
                  f"listening for edges on {lhost}:{lport}")
        rd.launch_edge("edge-0", "relay-0")
        rd.launch_edge("edge-1", "relay-0")
        rd.launch_edge("edge-2", "relay-1")
        rd.launch_edge("edge-3", "relay-1")
        rd.wait_for_edges("relay-0", ["edge-0", "edge-1"], "items")
        rd.wait_for_edges("relay-1", ["edge-2", "edge-3"], "items")
        print("  4 edge processes registered, 2 per relay")

        print("\n--- updates fan out through the relay tier ---")
        for key in range(9001, 9006):
            central.insert("items", (key, "fresh", "row", "data"))
        rd.sync()
        for relay in ("relay-0", "relay-1"):
            print(f"  {relay} subtree: staleness "
                  f"{central.staleness(relay, 'items')} LSNs "
                  "(min-cursor aggregate over its edges)")

        print("\n--- verified queries through an unkeyed relay ---")
        for relay in ("relay-0", "relay-1"):
            resp = rd.range_query(relay, "items", low=9001, high=9005)
            verdict = client.verify(resp)
            print(f"  via {relay}: {resp.edge_name} answered "
                  f"{len(resp.result.rows)} rows, verified: {verdict.ok}")
            assert verdict.ok

        print("\n--- SIGKILL relay-0: the sibling subtree carries on ---")
        rd.kill_relay("relay-0")
        for key in range(9006, 9011):
            central.insert("items", (key, "more", "row", "data"))
        rd.sync()
        resp = rd.range_query("relay-1", "items", low=9001, high=9010)
        print(f"  writes committed; relay-1 subtree serves "
              f"{len(resp.result.rows)} rows, verified: "
              f"{client.verify(resp).ok}")

        print("\n--- restart relay-0: empty store, snapshot subtree heal ---")
        rd.restart_relay("relay-0")
        rd.wait_for_relay("relay-0")
        rd.wait_for_edges("relay-0", ["edge-0", "edge-1"], "items",
                          timeout=60.0)
        rd.sync()
        resp = rd.range_query("relay-0", "items", low=9001, high=9010)
        print(f"  relay-0 healed; staleness "
              f"{central.staleness('relay-0', 'items')}; its subtree "
              f"serves {len(resp.result.rows)} rows, verified: "
              f"{client.verify(resp).ok}")
        assert client.verify(resp).ok
        assert central.staleness("relay-0", "items") == 0


if __name__ == "__main__":
    main()
