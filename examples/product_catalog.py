#!/usr/bin/env python3
"""Product catalog at the edge — the paper's motivating workload.

An e-commerce catalog is replicated to edge servers near users.
Applications speak SQL through a :class:`repro.sql.Session`: DDL/DML
run at the trusted central server; SELECTs run at the edge and every
result is verified before the application sees it.  Joins are served
from a materialized view with its own VB-tree (Section 3.3).

Run:  python examples/product_catalog.py
"""

from repro.edge.central import CentralServer
from repro.sql.session import Session


def main() -> None:
    central = CentralServer(db_name="shop", rsa_bits=512, seed=2024)
    session = Session(central)

    # --- schema + data (runs at the central server) -------------------
    session.execute(
        "CREATE TABLE products (sku INT, name VARCHAR(40), price INT, "
        "category VARCHAR(20), stock INT, PRIMARY KEY (sku))"
    )
    session.execute(
        "CREATE TABLE suppliers (supplier_id INT, sku INT, "
        "lead_days INT, PRIMARY KEY (supplier_id))"
    )
    categories = ["audio", "video", "compute", "storage"]
    for sku in range(200):
        session.execute(
            f"INSERT INTO products VALUES ({sku}, 'product-{sku:03d}', "
            f"{(sku * 13) % 500 + 10}, '{categories[sku % 4]}', {sku % 23})"
        )
    for sid in range(60):
        session.execute(
            f"INSERT INTO suppliers VALUES ({sid}, {(sid * 3) % 200}, "
            f"{sid % 14 + 1})"
        )

    # --- verified reads at the edge ------------------------------------
    out = session.query("SELECT * FROM products WHERE sku BETWEEN 10 AND 25")
    print(f"range scan: {len(out)} products, verified={out.verdict.ok}, "
          f"{out.wire_bytes:,} bytes")

    out = session.query(
        "SELECT name, price FROM products WHERE price < 100 AND stock > 0"
    )
    print(f"in-stock under $100: {len(out)} rows, verified={out.verdict.ok} "
          "(projection done at the edge; price/stock digests in the VO)")
    for name, price in out.rows[:3]:
        print(f"   {name}  ${price}")

    out = session.query("SELECT sku FROM products WHERE category = 'audio'")
    print(f"category filter (non-key, gappy result): {len(out)} rows, "
          f"verified={out.verdict.ok}")

    # --- a secondary VB-tree turns price ranges contiguous --------------
    gappy = session.query("SELECT sku, price FROM products "
                          "WHERE price BETWEEN 100 AND 200")
    session.execute("CREATE INDEX ON products (price)")
    routed = session.query("SELECT sku, price FROM products "
                           "WHERE price BETWEEN 100 AND 200")
    assert sorted(routed.rows) == sorted(gappy.rows)
    print(f"price range pre-index: {gappy.wire_bytes:,} B; "
          f"post-index (secondary VB-tree): {routed.wire_bytes:,} B "
          f"({gappy.wire_bytes / max(1, routed.wire_bytes):.1f}x smaller VO)")

    # --- a join, pre-materialized with its own VB-tree -----------------
    session.execute(
        "CREATE MATERIALIZED VIEW product_suppliers AS SELECT * FROM "
        "suppliers JOIN products ON suppliers.sku = products.sku"
    )
    out = session.query(
        "SELECT name, lead_days FROM product_suppliers WHERE view_id < 10"
    )
    print(f"join view: {len(out)} rows, verified={out.verdict.ok}")

    # --- updates flow through the central server ------------------------
    session.execute("INSERT INTO products VALUES (9000, 'new-release', "
                    "499, 'video', 5)")
    session.execute("DELETE FROM products WHERE stock = 0")
    out = session.query("SELECT * FROM products WHERE sku = 9000")
    print(f"after insert+delete: new product visible={len(out) == 1}, "
          f"verified={out.verdict.ok}")

    out = session.query("SELECT * FROM products")
    assert all(row[4] > 0 for row in out.rows)  # stock > 0 everywhere
    print(f"catalog now {len(out)} products, all in stock, "
          f"verified={out.verdict.ok}")


if __name__ == "__main__":
    main()
