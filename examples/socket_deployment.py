#!/usr/bin/env python3
"""Multi-process deployment over real TCP sockets (Section 3.1's
actual topology).

Launches the trusted central server in this process, two *edge server
OS processes* (``python -m repro.edge.serve``) over loopback TCP, and
walks the full story:

* bootstrap — snapshots stream to both edge processes over the wire;
* updates — signed deltas fan out eagerly, acks feed the cursors;
* authenticated queries — a range query travels to an edge process as
  a frame, the result+VO comes back as bytes, and the client verifies
  it against the central public key;
* failure — one edge is SIGKILLed mid-stream; writes keep committing,
  the survivor keeps serving, and the restarted process heals via
  snapshot back to cursor parity.

Run:  python examples/socket_deployment.py
"""

from repro.edge.central import CentralServer
from repro.edge.deploy import Deployment
from repro.workloads.generator import TableSpec, generate_table


def main() -> None:
    central = CentralServer("edgenet", rsa_bits=512, seed=2024)
    schema, rows = generate_table(
        TableSpec(name="items", rows=200, columns=4, seed=11)
    )
    central.create_table(schema, rows, fanout_override=8)
    client = central.make_client()

    with Deployment(central) as deploy:
        host, port = deploy.address
        print(f"--- central listening on {host}:{port} ---")
        for name in ("edge-0", "edge-1"):
            deploy.launch_edge(name)
            deploy.wait_for_edge(name)
            link = deploy.edges[name].transport
            snap = link.down_channel.bytes_by_kind().get("snapshot", 0)
            print(f"  {name}: pid {deploy.edges[name].process.pid}, "
                  f"bootstrapped with {snap:,} snapshot bytes")

        print("\n--- eager updates over the wire ---")
        for key in range(9001, 9006):
            central.insert("items", (key, "fresh", "row", "data"))
        deploy.sync()
        for name in ("edge-0", "edge-1"):
            print(f"  {name}: staleness {central.staleness(name, 'items')} LSNs")

        print("\n--- authenticated query through a real socket ---")
        resp = deploy.range_query("edge-0", "items", low=9001, high=9005)
        verdict = client.verify(resp)
        print(f"  edge-0 returned {len(resp.result.rows)} rows, "
              f"{resp.wire_bytes:,} wire bytes; verified: {verdict.ok}")
        assert verdict.ok

        print("\n--- kill edge-1 mid-stream ---")
        deploy.kill_edge("edge-1")
        for key in range(9006, 9011):
            central.insert("items", (key, "while", "one", "down"))
        deploy.sync()
        resp = deploy.range_query("edge-0", "items", low=9001, high=9010)
        print(f"  writes committed; edge-0 serves {len(resp.result.rows)} "
              f"rows, verified: {client.verify(resp).ok}")

        print("\n--- restart: snapshot heal to cursor parity ---")
        deploy.restart_edge("edge-1")
        deploy.wait_for_edge("edge-1")
        link = deploy.edges["edge-1"].transport
        snap = link.down_channel.bytes_by_kind().get("snapshot", 0)
        resp = deploy.range_query("edge-1", "items", low=9001, high=9010)
        print(f"  edge-1 healed with {snap:,} snapshot bytes; staleness "
              f"{central.staleness('edge-1', 'items')}; serves "
              f"{len(resp.result.rows)} rows, verified: "
              f"{client.verify(resp).ok}")
        assert client.verify(resp).ok
        assert central.staleness("edge-1", "items") == 0


if __name__ == "__main__":
    main()
