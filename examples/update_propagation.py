#!/usr/bin/env python3
"""Dynamic updates + multi-edge replication (Section 3.4).

Shows the two halves of the paper's update story:

* the *cheap insert* — the new tuple's digest folds into each node
  digest on the root-to-leaf path with one modular multiplication
  (compare the operation counters under FLATTENED vs the hash-of-hashes
  NESTED policy);
* the *expensive delete* — X-lock the path, recompute digests
  bottom-up; concurrent readers on disjoint subtrees proceed, readers
  on overlapping subtrees wait.

Run:  python examples/update_propagation.py
"""

from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.query_auth import QueryAuthenticator
from repro.core.update import AuthenticatedUpdater
from repro.core.vbtree import VBTree
from repro.crypto.meter import CostMeter
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.transactions import TransactionManager
from repro.db.types import IntType, VarcharType
from repro.edge.central import CentralServer, ReplicationMode
from repro.exceptions import LockError
from repro.workloads.generator import TableSpec, generate_table


def fold_vs_recompute() -> None:
    print("--- insert maintenance: commutative fold vs recompute ---")
    schema = TableSchema(
        "t",
        (Column("id", IntType()), Column("v", VarcharType(capacity=12))),
        key="id",
    )
    keypair = generate_keypair(bits=512, seed=5)
    for policy in (DigestPolicy.FLATTENED, DigestPolicy.NESTED):
        meter = CostMeter()
        engine = DigestEngine("demo", policy=policy, meter=meter)
        signing = SigningDigestEngine(engine, DigestSigner.from_keypair(keypair))
        rows = [Row(schema, (i * 2, f"v{i}")) for i in range(2000)]
        tree = VBTree.build(schema, rows, signing, fanout_override=16)
        meter.reset()
        AuthenticatedUpdater(tree).insert(Row(schema, (1001, "new")))
        print(f"  {policy.value:9s}: {meter.combines:3d} combines to "
              f"maintain a {tree.height()}-level tree")
        tree.audit()
    print("  (the paper's scheme is the FLATTENED one — 'minimal effect "
        "on other digests')")


def locking_protocol() -> None:
    print("\n--- delete locking: overlapping readers wait, disjoint "
          "readers proceed ---")
    schema = TableSchema(
        "t",
        (Column("id", IntType()), Column("v", VarcharType(capacity=12))),
        key="id",
    )
    keypair = generate_keypair(bits=512, seed=6)
    engine = DigestEngine("demo", policy=DigestPolicy.FLATTENED)
    signing = SigningDigestEngine(engine, DigestSigner.from_keypair(keypair))
    rows = [Row(schema, (i, f"v{i}")) for i in range(200)]
    tree = VBTree.build(schema, rows, signing, fanout_override=4)
    updater = AuthenticatedUpdater(tree)
    tm = TransactionManager()
    auth = QueryAuthenticator(tree)

    writer = tm.begin()
    updater.delete(10, txn=writer)  # X-locks the leftmost path
    print("  delete txn holds X-locks on the path to key 10")

    reader = tm.begin()
    try:
        auth.range_query(low=0, high=20, txn=reader)
        print("  overlapping reader: PROCEEDED (unexpected!)")
    except LockError:
        print("  overlapping reader on [0, 20]: blocked (correct)")
    reader.abort()

    reader2 = tm.begin()
    result = auth.range_query(low=180, high=199, txn=reader2)
    print(f"  disjoint reader on [180, 199]: got {len(result.rows)} rows "
          "while the delete is still in flight (correct)")
    reader2.commit()
    writer.commit()


def replication() -> None:
    print("\n--- lazy replication across three edges ---")
    central = CentralServer(
        db_name="fleet", rsa_bits=512, seed=17,
        replication=ReplicationMode.LAZY,
    )
    schema, rows = generate_table(TableSpec(name="t", rows=100, columns=4))
    central.create_table(schema, rows)
    edges = [central.spawn_edge_server(f"edge-{i}") for i in range(3)]
    client = central.make_client()

    central.insert("t", (5000, "xx", "yy", "zz"))
    central.insert("t", (5001, "aa", "bb", "cc"))
    for edge in edges:
        print(f"  {edge.name}: staleness={central.staleness(edge, 't')} LSNs behind")

    shipped = central.propagate()
    print(f"  propagate(): {shipped} transfers shipped (coalesced delta "
          "batches; snapshots only on bootstrap/gap/rotation)")
    for edge in edges:
        resp = edge.range_query("t", 5000, 5001)
        verdict = client.verify(resp)
        print(f"  {edge.name}: sees {len(resp.result.rows)} new rows, "
              f"verified={verdict.ok}")


def main() -> None:
    fold_vs_recompute()
    locking_protocol()
    replication()


if __name__ == "__main__":
    main()
