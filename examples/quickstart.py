#!/usr/bin/env python3
"""Quickstart: the paper's Figure-2 deployment in ~40 lines.

A trusted central DBMS builds a VB-tree over a table, distributes it to
an (unsecured) edge server, a client queries the edge and verifies the
result against the central server's signature — then we tamper with the
edge and watch verification fail.

Run:  python examples/quickstart.py
"""

from repro import quick_setup
from repro.edge.adversary import ValueTamper


def main() -> None:
    # 1. Central server with a 1000-row demo table, one edge, one client.
    central, edge, client = quick_setup(rows=1000, rsa_bits=512, seed=7)
    print(f"central db: {central.db_name!r}, table 'items' with "
          f"{len(central.tables['items'])} rows")
    print(f"VB-tree height {central.vbtrees['items'].height()}, "
          f"digest policy {central.policy.value!r}")

    # 2. A range query answered by the edge server, with its VO.
    response = edge.range_query("items", low=100, high=160)
    print(f"\nquery id in [100, 160]: {len(response.result.rows)} rows, "
          f"{response.wire_bytes:,} bytes on the wire "
          f"(VO: {response.result.vo.digest_count()} signed digests)")

    # 3. The client verifies: values untampered, no spurious tuples.
    verdict = client.verify(response)
    print(f"verification: ok={verdict.ok} "
          f"({verdict.digests_decrypted} signature decryptions)")
    assert verdict.ok

    # 4. Projection is done AT THE EDGE (the paper's headline feature):
    #    filtered attributes are replaced by their signed digests.
    response = edge.range_query("items", low=100, high=160,
                                columns=("id", "a1"))
    verdict = client.verify(response)
    print(f"\nprojected query (2 of 10 columns): ok={verdict.ok}, "
          f"D_P carries {response.result.vo.num_projection_digests} "
          f"attribute digests")
    assert verdict.ok

    # 5. A hacker corrupts one value in the edge server's replica...
    ValueTamper(table="items", key=120, column="a1",
                new_value="hacked!").apply(edge)
    response = edge.range_query("items", low=100, high=160)
    verdict = client.verify(response)
    print(f"\nafter tampering with the replica: ok={verdict.ok} "
          f"({verdict.reason})")
    assert not verdict.ok

    # ...but queries that don't touch the corrupted tuple still verify.
    response = edge.range_query("items", low=500, high=560)
    assert client.verify(response).ok
    print("queries not covering the tampered tuple still verify: ok=True")


if __name__ == "__main__":
    main()
