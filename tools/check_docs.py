"""Docs-consistency gate: the wire protocol reference must be complete.

``docs/ARCHITECTURE.md`` claims to be the authoritative reference for
every frame that crosses the trust boundary.  This check makes the
claim enforceable: every ``*Frame`` class defined in
``src/repro/edge/transport.py`` must be mentioned (by exact class
name) in the document, and every frame *tag* assigned there
(``_FRAME_* = n``) must appear as a catalog row ``| n |``.  The same
holds for the fault-hook table: every :class:`FaultInjector` field
must have a row ``| `field` | ...`` so the documented chaos surface
(DESIGN.md section 14) cannot drift from the injectable faults the
battery actually composes.  Likewise the fabriclint rule table
(ARCHITECTURE.md section 7): every ``rule_id`` registered in
``tools/fabriclint/rules.py`` must have a row ``| `FLnnn` | ...``,
and every row must name a registered rule — the documented invariant
catalog and the enforced one stay the same catalog.  Adding a frame
type, a fault hook, or a lint rule without documenting it fails CI's
lint job — and the tier-1 suite
(``tests/test_docs_consistency.py``), so the gap is caught before the
push.

Usage::

    python tools/check_docs.py            # exit 0 = consistent
"""

from __future__ import annotations

import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
TRANSPORT = os.path.join(ROOT, "src", "repro", "edge", "transport.py")
ARCHITECTURE = os.path.join(ROOT, "docs", "ARCHITECTURE.md")
FABRICLINT_RULES = os.path.join(HERE, "fabriclint", "rules.py")


def frame_classes(source: str) -> list[str]:
    """Every frame dataclass defined in the transport module."""
    return re.findall(r"^class (\w+Frame)\b", source, flags=re.MULTILINE)


def frame_tags(source: str) -> dict[str, int]:
    """Every wire tag assignment (``_FRAME_NAME = n``)."""
    return {
        name: int(value)
        for name, value in re.findall(
            r"^(_FRAME_\w+) = (\d+)$", source, flags=re.MULTILINE
        )
    }


def fault_fields(source: str) -> list[str]:
    """The :class:`FaultInjector` dataclass field names, in order.

    Empty list when the class is absent (nothing to check — the frame
    checks above already catch gross transport-layout changes).
    """
    match = re.search(
        r"^class FaultInjector\b.*?(?=^\S|\Z)", source,
        flags=re.MULTILINE | re.DOTALL,
    )
    if match is None:
        return []
    body = match.group(0)
    # Fields end where methods/properties begin.
    cut = re.search(r"^    (?:@|def )", body, flags=re.MULTILINE)
    if cut is not None:
        body = body[: cut.start()]
    return re.findall(
        r"^    (\w+): [\w\[\]\. |]+ = ", body, flags=re.MULTILINE
    )


def fabriclint_rule_ids(source: str) -> list[str]:
    """Every ``rule_id = "FLnnn"`` registered in fabriclint's catalog
    (class-body assignments in ``tools/fabriclint/rules.py``)."""
    return re.findall(
        r'^    rule_id = "(FL\d+)"', source, flags=re.MULTILINE
    )


def fabriclint_table_rows(doc: str) -> list[str]:
    """Rule ids carrying a table row ``| `FLnnn` | ...`` in the doc."""
    return re.findall(r"^\| `(FL\d+)` \|", doc, flags=re.MULTILINE)


def check(transport_path: str = TRANSPORT,
          architecture_path: str = ARCHITECTURE,
          rules_path: str = FABRICLINT_RULES) -> list[str]:
    """Return a list of human-readable problems (empty = consistent)."""
    problems: list[str] = []
    try:
        with open(transport_path) as fh:
            source = fh.read()
    except OSError as exc:
        return [f"cannot read transport module: {exc}"]
    try:
        with open(architecture_path) as fh:
            doc = fh.read()
    except OSError as exc:
        return [f"cannot read docs/ARCHITECTURE.md: {exc}"]

    classes = frame_classes(source)
    if not classes:
        problems.append(f"no frame classes found in {transport_path} "
                        "(did the layout change?)")
    for name in classes:
        if name not in doc:
            problems.append(
                f"frame class {name} (transport.py) is not documented in "
                "docs/ARCHITECTURE.md"
            )

    tags = frame_tags(source)
    if not tags:
        problems.append("no _FRAME_* tag assignments found in transport.py")
    for tag_name, tag in tags.items():
        if not re.search(rf"^\| {tag} \|", doc, flags=re.MULTILINE):
            problems.append(
                f"wire tag {tag} ({tag_name}) has no catalog row "
                f"'| {tag} | ...' in docs/ARCHITECTURE.md"
            )

    # The fault-hook table (chaos battery, DESIGN.md section 14): every
    # FaultInjector field must have a row '| `field` | ...' so the doc
    # cannot drift from the injectable faults the battery composes.
    for field in fault_fields(source):
        if not re.search(rf"^\| `{field}` \|", doc, flags=re.MULTILINE):
            problems.append(
                f"FaultInjector field {field!r} (transport.py) has no "
                "fault-hook table row '| `" + field + "` | ...' in "
                "docs/ARCHITECTURE.md"
            )

    # The fabriclint rule table (ARCHITECTURE.md section 7) must match
    # the registered rules in both directions: an enforced-but-
    # undocumented rule and a documented-but-dead rule are both drift.
    try:
        with open(rules_path) as fh:
            rules_source = fh.read()
    except OSError as exc:
        problems.append(f"cannot read fabriclint rules: {exc}")
        return problems
    rule_ids = fabriclint_rule_ids(rules_source)
    rows = fabriclint_table_rows(doc)
    for rule_id in rule_ids:
        if rule_id not in rows:
            problems.append(
                f"fabriclint rule {rule_id} (fabriclint/rules.py) has no "
                "table row '| `" + rule_id + "` | ...' in "
                "docs/ARCHITECTURE.md"
            )
    for rule_id in rows:
        if rule_id not in rule_ids:
            problems.append(
                f"docs/ARCHITECTURE.md documents fabriclint rule {rule_id} "
                "but no such rule_id is registered in fabriclint/rules.py"
            )
    return problems


def main() -> int:
    problems = check()
    for problem in problems:
        print(f"ERROR: {problem}", file=sys.stderr)
    if problems:
        print(
            f"\ndocs-consistency check FAILED ({len(problems)} problem(s)). "
            "Document the frame's wire layout in docs/ARCHITECTURE.md.",
            file=sys.stderr,
        )
        return 1
    print("docs-consistency check passed: every transport frame and "
          "fabriclint rule is documented in docs/ARCHITECTURE.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
