"""fabriclint engine: findings, suppressions, baseline, runner.

The engine is rule-agnostic.  It walks ``*.py`` files under the given
paths, parses each once, hands every applicable rule a
:class:`FileContext`, and post-filters the findings through two
escape hatches:

- **Suppressions** — a ``# fabriclint: disable=FL001`` comment on the
  flagged line (or alone on the line directly above it) silences that
  rule there.  ``disable=all`` silences every rule.  Suppressions are
  for the rare spot where the discipline is deliberately bent and the
  bend is worth a comment; they show up in ``--stats`` so they cannot
  accumulate silently.
- **Baseline** — a committed file of grandfathered finding keys
  (``RULE:path:line``).  A baselined finding is reported but does not
  fail the run; a *stale* baseline entry (no longer found) is printed
  so the file shrinks as debt is paid.  The shipped baseline is empty:
  ISSUE 10 fixed the violations instead of grandfathering them.

Finding keys are stable across machines (paths are root-relative,
POSIX separators), so the baseline and CI output diff cleanly.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "Suppressions",
    "collect_files",
    "load_baseline",
    "run_paths",
    "run_source",
    "RunResult",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # root-relative, POSIX separators
    line: int
    message: str

    @property
    def key(self) -> str:
        """Stable identity used by the baseline and CI output."""
        return f"{self.rule}:{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.key}: {self.message}"


_DIRECTIVE = re.compile(r"#\s*fabriclint:\s*disable=([A-Za-z0-9_,\s]+)")


class Suppressions:
    """Per-file ``# fabriclint: disable=...`` directives.

    A directive that shares its line with code applies to that line; a
    directive on a comment-only line applies to the next line (the
    statement it annotates).  Rule lists are comma-separated;
    ``all`` matches every rule.
    """

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            rules = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
            # A trailing directive covers its own line; a comment-only
            # directive covers the statement below it.  Multi-line
            # statements report the node's *first* line, so that is
            # the line to annotate.
            code_before = text[: match.start()].strip()
            target = lineno if code_before else lineno + 1
            self._by_line.setdefault(target, set()).update(rules)

    def covers(self, rule: str, line: int) -> bool:
        rules = self._by_line.get(line)
        if not rules:
            return False
        return "ALL" in rules or rule.upper() in rules

    def __len__(self) -> int:
        return len(self._by_line)


@dataclass
class FileContext:
    """Everything a rule needs about one parsed file."""

    relpath: str  # root-relative, POSIX separators
    source: str
    tree: ast.AST
    suppressions: Suppressions = field(init=False)

    def __post_init__(self) -> None:
        self.suppressions = Suppressions(self.source)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.rule_id,
            path=self.relpath,
            line=getattr(node, "lineno", 0),
            message=message,
        )


class Rule:
    """Base class for fabriclint rules.

    Subclasses set ``rule_id`` / ``title`` / ``rationale`` and
    implement :meth:`applies_to` + :meth:`check`.  Each rule also
    embeds ``self_test_bad`` / ``self_test_good`` — ``(virtual_path,
    source)`` pairs proving the rule fires and stays quiet — consumed
    by ``run.py --self-test`` and the fixture tests.
    """

    rule_id: str = "FL000"
    title: str = ""
    rationale: str = ""
    # (virtual relpath, source) pairs for --self-test.
    self_test_bad: tuple[str, str] = ("", "")
    self_test_good: tuple[str, str] = ("", "")

    def applies_to(self, relpath: str) -> bool:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


def path_endswith(relpath: str, suffixes: Sequence[str]) -> bool:
    """True when ``relpath`` ends with any suffix on a path boundary.

    ``repro/edge/relay.py`` matches suffix ``edge/relay.py`` but a file
    ``my_edge/relay.py`` does not — the match must start at a
    separator (or the path start).
    """
    for suffix in suffixes:
        if relpath == suffix or relpath.endswith("/" + suffix):
            return True
    return False


def path_in_dirs(relpath: str, dir_suffixes: Sequence[str]) -> bool:
    """True when some directory prefix of ``relpath`` matches.

    ``dir_suffixes`` entries look like ``repro/edge/`` and match both
    ``src/repro/edge/x.py`` and ``repro/edge/x.py`` (fixture trees
    omit the ``src/`` level).
    """
    padded = "/" + relpath
    return any("/" + d in padded for d in dir_suffixes)


def collect_files(root: str, paths: Sequence[str]) -> list[str]:
    """Root-relative POSIX paths of every ``*.py`` under ``paths``.

    ``paths`` may name files or directories (relative to ``root``).
    Hidden directories and ``__pycache__`` are skipped.  Order is
    sorted, so runs are reproducible.
    """
    found: set[str] = set()
    for path in paths:
        absolute = os.path.join(root, path)
        if os.path.isfile(absolute) and absolute.endswith(".py"):
            found.add(os.path.relpath(absolute, root).replace(os.sep, "/"))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = [
                d
                for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            ]
            for name in filenames:
                if name.endswith(".py"):
                    full = os.path.join(dirpath, name)
                    found.add(os.path.relpath(full, root).replace(os.sep, "/"))
    return sorted(found)


def load_baseline(path: str) -> set[str]:
    """Finding keys grandfathered by the committed baseline file."""
    keys: set[str] = set()
    if not os.path.exists(path):
        return keys
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys


@dataclass
class RunResult:
    """Outcome of one lint run, pre-split by the escape hatches."""

    findings: list[Finding]  # actionable: not baselined, not suppressed
    baselined: list[Finding]
    suppressed: list[Finding]
    stale_baseline: list[str]  # baseline keys that no longer fire
    parse_errors: list[str]

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def run_source(
    rules: Iterable[Rule], relpath: str, source: str
) -> list[Finding]:
    """Run ``rules`` over one in-memory file; suppressions honored,
    no baseline.  This is the primitive the self-test and the fixture
    tests drive."""
    tree = ast.parse(source)
    ctx = FileContext(relpath=relpath, source=source, tree=tree)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for item in rule.check(ctx):
            if not ctx.suppressions.covers(item.rule, item.line):
                findings.append(item)
    return findings


def run_paths(
    rules: Iterable[Rule],
    root: str,
    paths: Sequence[str],
    baseline: set[str] | None = None,
) -> RunResult:
    """Run ``rules`` over every ``*.py`` under ``paths``."""
    baseline = baseline or set()
    rules = list(rules)
    findings: list[Finding] = []
    baselined: list[Finding] = []
    suppressed: list[Finding] = []
    parse_errors: list[str] = []
    seen_keys: set[str] = set()
    for relpath in collect_files(root, paths):
        applicable = [r for r in rules if r.applies_to(relpath)]
        if not applicable:
            continue
        try:
            with open(os.path.join(root, relpath)) as fh:
                source = fh.read()
            tree = ast.parse(source, filename=relpath)
        except (OSError, SyntaxError) as exc:
            parse_errors.append(f"{relpath}: {exc}")
            continue
        ctx = FileContext(relpath=relpath, source=source, tree=tree)
        for rule in applicable:
            for item in rule.check(ctx):
                if ctx.suppressions.covers(item.rule, item.line):
                    suppressed.append(item)
                elif item.key in baseline:
                    baselined.append(item)
                    seen_keys.add(item.key)
                else:
                    findings.append(item)
    stale = sorted(baseline - seen_keys)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return RunResult(
        findings=findings,
        baselined=baselined,
        suppressed=suppressed,
        stale_baseline=stale,
        parse_errors=parse_errors,
    )
