"""The fabriclint rule catalog (FL001–FL005).

Each rule machine-enforces one discipline the fabric's security or
liveness argument leans on.  DESIGN.md section 15 is the prose
catalog; ``docs/ARCHITECTURE.md`` section 7 is the table form, and
``tools/check_docs.py`` keeps the table in sync with the
``rule_id``\\ s registered here.

Every rule embeds a known-bad and a known-good source pair
(``self_test_bad`` / ``self_test_good``) so ``run.py --self-test``
can prove the rule is live — a gate that cannot fail gates nothing
(the same contract ``check_regression.py --self-test`` honors for the
benchmark gate).
"""

from __future__ import annotations

import ast
from typing import Iterator

from fabriclint.engine import (
    FileContext,
    Finding,
    Rule,
    path_endswith,
    path_in_dirs,
)

__all__ = ["REGISTRY", "all_rules"]


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call target, best effort (``a.b.c`` or ``c``)."""
    return _dotted(node.func)


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class _ScopedWalker:
    """AST walk that tracks the class/function qualname stack and the
    enclosing ``try`` statements — the two pieces of context rules
    keep needing."""

    def __init__(self, tree: ast.AST) -> None:
        self.tree = tree

    def walk(self) -> Iterator[tuple[ast.AST, tuple[str, ...], list[ast.Try]]]:
        def visit(node, stack, tries):
            for child in ast.iter_child_nodes(node):
                child_stack = stack
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    child_stack = stack + (child.name,)
                child_tries = tries
                if isinstance(child, ast.Try):
                    child_tries = tries + [child]
                yield child, child_stack, child_tries
                yield from visit(child, child_stack, child_tries)

        yield from visit(self.tree, (), [])


def _catches(handler: ast.ExceptHandler, names: set[str]) -> bool:
    """Does this handler's exception expression mention any of
    ``names`` (bare handlers match everything)?"""
    if handler.type is None:
        return True
    nodes = (
        list(ast.walk(handler.type))
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in names:
            return True
        if isinstance(node, ast.Attribute) and node.attr in names:
            return True
    return False


# --------------------------------------------------------------------------
# FL001 — trust boundary
# --------------------------------------------------------------------------


class TrustBoundaryRule(Rule):
    """No signing/private-key API reachable from untrusted modules.

    The verify-only discipline from PR 2: ``edge_server.py``,
    ``relay.py``, ``client.py`` and ``router.py`` run on machines the
    owner does not control.  If one of them can even *name* the
    private-key surface — :class:`DigestSigner`,
    :class:`SigningDigestEngine`, :class:`RSAPrivateKey`, keypair
    generation, or a ``.sign(...)`` call — the "edges need no trust"
    argument is one refactor away from false.
    """

    rule_id = "FL001"
    title = "trust boundary: no signing API in untrusted modules"
    rationale = (
        "edges/relays/clients verify; only the central signs (PR 2)"
    )

    UNTRUSTED = (
        "repro/edge/edge_server.py",
        "repro/edge/relay.py",
        "repro/edge/client.py",
        "repro/edge/router.py",
    )
    BANNED_NAMES = {
        "DigestSigner",
        "SigningDigestEngine",
        "RSAPrivateKey",
        "RSAKeyPair",
        "generate_keypair",
    }
    # Modules whose plain import hands over the whole private surface.
    BANNED_MODULES = {"repro.crypto.rsa"}
    BANNED_ATTRS = {"sign", "sign_value", "sign_tuple", "private", "private_key"}

    self_test_bad = (
        "repro/edge/edge_server.py",
        "from repro.crypto.signatures import DigestSigner\n"
        "import repro.crypto.rsa\n"
        "def refresh(keypair, engine, value):\n"
        "    key = keypair.private\n"
        "    return engine.sign(value)\n",
    )
    self_test_good = (
        "repro/edge/edge_server.py",
        "from repro.crypto.signatures import DigestVerifier, SignedDigest\n"
        "def check(verifier, signed, expected):\n"
        "    return verifier.verify_value(signed, expected)\n",
    )

    def applies_to(self, relpath: str) -> bool:
        return path_endswith(relpath, self.UNTRUSTED)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in self.BANNED_NAMES:
                        yield ctx.finding(
                            self,
                            node,
                            f"import of signing API {alias.name!r} in an "
                            "untrusted module (verify-only discipline)",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self.BANNED_MODULES:
                        yield ctx.finding(
                            self,
                            node,
                            f"import of private-key module {alias.name!r} "
                            "in an untrusted module",
                        )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in self.BANNED_NAMES:
                    yield ctx.finding(
                        self,
                        node,
                        f"reference to signing API {node.id!r} in an "
                        "untrusted module",
                    )
            elif isinstance(node, ast.Attribute):
                if node.attr in self.BANNED_ATTRS:
                    yield ctx.finding(
                        self,
                        node,
                        f"private-key attribute access '.{node.attr}' in an "
                        "untrusted module",
                    )


# --------------------------------------------------------------------------
# FL002 — exception hygiene
# --------------------------------------------------------------------------


class ExceptionHygieneRule(Rule):
    """Broad ``except`` handlers must stay visible.

    Locks in PR 9's silent-swallow sweep: a handler that catches
    ``Exception``/``BaseException`` (or everything, bare) inside
    ``repro/edge/`` or ``repro/chaos/`` must re-raise, route through
    :mod:`repro.edge.telemetry`, or carry an explicit suppression.
    Narrow typed handlers (``except OSError: pass`` on a best-effort
    close) are deliberate control flow and stay out of scope — the
    danger PR 9 swept is the broad catch that swallows *unexpected*
    errors into the same silence as routine connection resets.
    """

    rule_id = "FL002"
    title = "exception hygiene: broad handlers re-raise or hit telemetry"
    rationale = "PR 9's silent-swallow sweep, kept swept"

    SCOPES = ("repro/edge/", "repro/chaos/")
    BROAD = {"Exception", "BaseException"}

    self_test_bad = (
        "repro/edge/handlers.py",
        "def pump(sock):\n"
        "    try:\n"
        "        sock.flush()\n"
        "    except Exception:\n"
        "        pass\n",
    )
    self_test_good = (
        "repro/edge/handlers.py",
        "from repro.edge import telemetry\n"
        "def pump(sock):\n"
        "    try:\n"
        "        sock.flush()\n"
        "    except OSError:\n"
        "        pass  # torn socket: expected, narrow\n"
        "    except Exception as exc:\n"
        "        telemetry.note('handlers.pump.unexpected', exc)\n"
        "    try:\n"
        "        sock.close()\n"
        "    except Exception as exc:\n"
        "        raise RuntimeError('close failed') from exc\n",
    )

    def applies_to(self, relpath: str) -> bool:
        return path_in_dirs(relpath, self.SCOPES)

    @staticmethod
    def _is_compliant(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name == "telemetry.note" or name.endswith(
                    ".telemetry.note"
                ) or name == "note":
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _catches(node, self.BROAD):
                continue
            if self._is_compliant(node):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "<bare>"
            )
            yield ctx.finding(
                self,
                node,
                f"broad handler ({caught}) neither re-raises nor routes "
                "through repro.edge.telemetry — unexpected errors vanish",
            )


# --------------------------------------------------------------------------
# FL003 — determinism
# --------------------------------------------------------------------------


class DeterminismRule(Rule):
    """Chaos/workload/bench code must be a pure function of its seed.

    The chaos battery's replay contract (DESIGN.md section 14) and the
    benchmark regression gate both depend on it: ``time.time`` /
    ``datetime.now`` / the module-level ``random.*`` RNG make a
    "deterministic" trace quietly machine-dependent.  Seeded
    ``random.Random(seed)`` instances are the sanctioned source of
    randomness.  In ``benchmarks/`` only the RNG ban applies —
    benchmarks *print* wall-clock timings, but every gated series is a
    deterministic count, so clocks are fine and unseeded randomness is
    not.
    """

    rule_id = "FL003"
    title = "determinism: no wall clock / unseeded RNG in seeded paths"
    rationale = "chaos replay + benchmark gates are pure functions of seed"

    FULL_SCOPES = ("repro/chaos/", "repro/workloads/")
    RNG_ONLY_SCOPES = ("benchmarks/",)
    WALL_CLOCK = {"time.time", "time.time_ns"}
    DATETIME_ATTRS = {"now", "utcnow", "today"}
    DATETIME_OWNERS = {"datetime", "date"}
    RNG_ALLOWED = {"Random", "SystemRandom"}

    self_test_bad = (
        "repro/chaos/storm.py",
        "import random\n"
        "import time\n"
        "from datetime import datetime\n"
        "def schedule(n):\n"
        "    started = time.time()\n"
        "    stamp = datetime.now()\n"
        "    return [random.randint(0, n) for _ in range(n)], started, stamp\n",
    )
    self_test_good = (
        "repro/chaos/storm.py",
        "import random\n"
        "import time\n"
        "def schedule(n, seed):\n"
        "    rng = random.Random(seed)\n"
        "    deadline = time.monotonic() + 1.0\n"
        "    return [rng.randint(0, n) for _ in range(n)], deadline\n",
    )

    def applies_to(self, relpath: str) -> bool:
        return path_in_dirs(
            relpath, self.FULL_SCOPES + self.RNG_ONLY_SCOPES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        clock_banned = path_in_dirs(ctx.relpath, self.FULL_SCOPES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in self.RNG_ALLOWED:
                            yield ctx.finding(
                                self,
                                node,
                                f"'from random import {alias.name}' uses the "
                                "unseeded module-level RNG; use "
                                "random.Random(seed)",
                            )
                elif clock_banned and node.module == "time":
                    for alias in node.names:
                        if alias.name in ("time", "time_ns"):
                            yield ctx.finding(
                                self,
                                node,
                                "wall-clock import 'from time import "
                                f"{alias.name}' in a seeded path",
                            )
                continue
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            if dotted.startswith("random."):
                tail = dotted.split(".", 1)[1]
                if "." not in tail and tail not in self.RNG_ALLOWED:
                    yield ctx.finding(
                        self,
                        node,
                        f"module-level RNG call 'random.{tail}' — seed a "
                        "random.Random(seed) instance instead",
                    )
            if not clock_banned:
                continue
            if dotted in self.WALL_CLOCK:
                yield ctx.finding(
                    self,
                    node,
                    f"wall clock '{dotted}' in a seeded path — use "
                    "logical ticks (or time.monotonic for local deadlines)",
                )
            elif (
                node.attr in self.DATETIME_ATTRS
                and _dotted(node.value).split(".")[-1] in self.DATETIME_OWNERS
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"wall clock '{dotted}' in a seeded path",
                )


# --------------------------------------------------------------------------
# FL004 — reactor discipline
# --------------------------------------------------------------------------


class ReactorDisciplineRule(Rule):
    """Nothing on the reactor thread may block.

    The single-threaded event loop (PR 6) sustains thousands of edges
    precisely because no callback ever blocks: one ``time.sleep``, one
    blocking ``recv``, one un-timed lock acquisition and every
    connected edge stalls together.  Scope: the whole of
    ``event_loop.py`` plus the :class:`FanoutEngine` /
    :class:`RelayFanout` classes (their pump/settle paths run on the
    reactor).  A ``recv``/``accept``-family call is allowed when its
    enclosing ``try`` catches ``BlockingIOError`` — that is the
    positive proof the socket is non-blocking.
    """

    rule_id = "FL004"
    title = "reactor discipline: no blocking calls on the event loop"
    rationale = "one blocked callback stalls every connected edge (PR 6)"

    MODULE_SCOPES = ("repro/edge/event_loop.py",)
    CLASS_SCOPES = {
        "repro/edge/fanout.py": {"FanoutEngine"},
        "repro/edge/relay.py": {"RelayFanout"},
    }
    BLOCKING_SOCKET_ATTRS = {
        "recv",
        "recv_into",
        "recvfrom",
        "accept",
        "connect",
        "sendall",
        "makefile",
    }
    UNTIMED_WAIT_ATTRS = {"acquire", "wait", "join"}

    self_test_bad = (
        "repro/edge/event_loop.py",
        "import subprocess\n"
        "import time\n"
        "def pump(sock, lock):\n"
        "    time.sleep(0.1)\n"
        "    data = sock.recv(4096)\n"
        "    lock.acquire()\n"
        "    subprocess.run(['true'])\n"
        "    return data\n",
    )
    self_test_good = (
        "repro/edge/event_loop.py",
        "def pump(sock, lock):\n"
        "    try:\n"
        "        data = sock.recv(4096)\n"
        "    except (BlockingIOError, InterruptedError):\n"
        "        return b''\n"
        "    if not lock.acquire(timeout=1.0):\n"
        "        return b''\n"
        "    try:\n"
        "        return data\n"
        "    finally:\n"
        "        lock.release()\n",
    )

    def applies_to(self, relpath: str) -> bool:
        if path_endswith(relpath, self.MODULE_SCOPES):
            return True
        return any(
            path_endswith(relpath, (suffix,)) for suffix in self.CLASS_SCOPES
        )

    def _in_scope(self, relpath: str, stack: tuple[str, ...]) -> bool:
        if path_endswith(relpath, self.MODULE_SCOPES):
            return True
        for suffix, classes in self.CLASS_SCOPES.items():
            if path_endswith(relpath, (suffix,)):
                return bool(set(stack) & classes)
        return False

    @staticmethod
    def _nonblocking_proof(tries: list[ast.Try]) -> bool:
        for stmt in tries:
            for handler in stmt.handlers:
                if _catches(handler, {"BlockingIOError", "InterruptedError"}):
                    return True
        return False

    @staticmethod
    def _has_timeout(node: ast.Call) -> bool:
        if any(kw.arg == "timeout" for kw in node.keywords):
            return True
        if any(
            kw.arg == "blocking"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in node.keywords
        ):
            return True
        # Positional timeout: Lock.acquire(False), Event.wait(0.1),
        # Thread.join(5) all take it first (after self).
        return bool(node.args)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, stack, tries in _ScopedWalker(ctx.tree).walk():
            if not self._in_scope(ctx.relpath, stack):
                continue
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                names = [a.name for a in node.names]
                module = getattr(node, "module", None)
                if "subprocess" in names or module == "subprocess":
                    yield ctx.finding(
                        self,
                        node,
                        "subprocess in a reactor module — process spawns "
                        "block the loop",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in ("time.sleep", "sleep"):
                yield ctx.finding(
                    self,
                    node,
                    "time.sleep on the reactor path stalls every "
                    "connected edge",
                )
            elif name.startswith("subprocess."):
                yield ctx.finding(
                    self, node, f"blocking call '{name}' on the reactor path"
                )
            elif isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in self.BLOCKING_SOCKET_ATTRS:
                    if not self._nonblocking_proof(tries):
                        yield ctx.finding(
                            self,
                            node,
                            f"'.{attr}()' without a BlockingIOError handler "
                            "— on the reactor thread every socket op must "
                            "be provably non-blocking",
                        )
                elif attr in self.UNTIMED_WAIT_ATTRS:
                    if not self._has_timeout(node):
                        yield ctx.finding(
                            self,
                            node,
                            f"un-timed '.{attr}()' can park the reactor "
                            "forever — pass a timeout",
                        )


# --------------------------------------------------------------------------
# FL005 — cursor monotonicity
# --------------------------------------------------------------------------


class CursorMonotonicityRule(Rule):
    """Replication cursors move only through the monotonic helpers.

    The PR 5 / PR 8 regression class: a delayed, duplicated, or
    reordered ack that writes ``acked_lsns``/``acked_epochs``
    *directly* can rewind a cursor, and a rewound cursor silently
    re-ships (or worse, silently skips) replication traffic.  All
    mutation therefore lives in three audited sites —
    ``FanoutEngine.attach`` (handshake resume),
    ``FanoutEngine._advance_cursor`` (the clamp-and-compare apply),
    and ``FanoutEngine._send_snapshot`` (the documented rewind-heal
    drop).  Everything else reads.
    """

    rule_id = "FL005"
    title = "cursor monotonicity: acked_lsns/epochs only via helpers"
    rationale = "direct cursor writes re-created the PR 5/PR 8 rewind bug"

    CURSOR_ATTRS = {"acked_lsns", "acked_epochs"}
    MUTATING_METHODS = {"pop", "clear", "update", "setdefault", "popitem"}
    ALLOWED_QUALNAMES = {
        "FanoutEngine.attach",
        "FanoutEngine._advance_cursor",
        "FanoutEngine._send_snapshot",
    }

    self_test_bad = (
        "repro/edge/fanout.py",
        "class FanoutEngine:\n"
        "    def on_ack(self, peer, table, lsn):\n"
        "        peer.acked_lsns[table] = lsn\n"
        "        peer.acked_epochs.pop(table, None)\n",
    )
    self_test_good = (
        "repro/edge/fanout.py",
        "class FanoutEngine:\n"
        "    def _advance_cursor(self, peer, table, lsn, epoch):\n"
        "        current = peer.acked_lsns.get(table)\n"
        "        if current is None or lsn > current:\n"
        "            peer.acked_lsns[table] = lsn\n"
        "            peer.acked_epochs[table] = epoch\n"
        "    def on_ack(self, peer, table, lsn, epoch):\n"
        "        self._advance_cursor(peer, table, lsn, epoch)\n"
        "        return peer.acked_lsns.get(table)\n",
    )

    def applies_to(self, relpath: str) -> bool:
        # Any scanned file: a cursor write outside the engine would be
        # an even larger breach than one inside it.
        return relpath.endswith(".py")

    def _allowed(self, stack: tuple[str, ...]) -> bool:
        qualname = ".".join(stack)
        for allowed in self.ALLOWED_QUALNAMES:
            if qualname == allowed or qualname.startswith(allowed + "."):
                return True
        return False

    def _is_cursor_attr(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr in self.CURSOR_ATTRS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, stack, _tries in _ScopedWalker(ctx.tree).walk():
            if self._allowed(stack):
                continue
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                base = (
                    target.value
                    if isinstance(target, ast.Subscript)
                    else target
                )
                if self._is_cursor_attr(base):
                    yield ctx.finding(
                        self,
                        node,
                        f"direct write to '.{base.attr}' outside the "
                        "monotonic-apply helpers — use "
                        "FanoutEngine._advance_cursor",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.MUTATING_METHODS
                and self._is_cursor_attr(node.func.value)
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"mutating call '.{node.func.attr}()' on "
                    f"'.{node.func.value.attr}' outside the monotonic-apply "
                    "helpers",
                )


REGISTRY: tuple[Rule, ...] = (
    TrustBoundaryRule(),
    ExceptionHygieneRule(),
    DeterminismRule(),
    ReactorDisciplineRule(),
    CursorMonotonicityRule(),
)


def all_rules() -> tuple[Rule, ...]:
    """The registered rule instances, FL-id order."""
    return REGISTRY
