"""fabriclint — AST invariant checker for the edge fabric's disciplines.

The paper's guarantee (clients verify edge answers against the owner's
signature, so edges and relays need no trust) only holds while the code
keeps a handful of disciplines that no unit test can see from the
outside: the private-key API must stay unreachable from untrusted
modules, swallowed exceptions must stay visible to telemetry,
chaos/bench paths must stay deterministic, the reactor must never
block, and replication cursors must only move through the monotonic
helpers.  ``fabriclint`` turns each of those reviewer-head invariants
into a machine-checked rule over the stdlib ``ast`` (no dependencies —
same precedent as ``tools/check_docs.py``).

Layout:

- :mod:`fabriclint.engine` — findings, suppressions, baseline,
  file walking, the runner.
- :mod:`fabriclint.rules` — the rule catalog (FL001..), each with
  embedded known-bad/known-good sources so ``--self-test`` can prove
  the rule is live.
- ``run.py`` — the CLI (``python tools/fabriclint/run.py src tools
  benchmarks``).

DESIGN.md section 15 is the prose catalog: what each rule enforces and
which PR's security argument it protects.  ``docs/ARCHITECTURE.md``
carries the one-row-per-rule table, kept honest by
``tools/check_docs.py``.
"""

from __future__ import annotations

__all__ = ["__version__"]

__version__ = "1.0"
