"""fabriclint CLI — machine-enforce the fabric's code disciplines.

Usage::

    python tools/fabriclint/run.py src tools benchmarks   # the CI gate
    python tools/fabriclint/run.py --list-rules           # rule catalog
    python tools/fabriclint/run.py --self-test            # prove rules fire
    python tools/fabriclint/run.py --write-baseline src   # grandfather debt

Exit codes:

- ``0`` — no non-baselined findings (the gate passes).
- ``1`` — findings (or, under ``--self-test``, the *expected* outcome:
  every rule demonstrably produced a finding on its known-bad source,
  i.e. the gate can fail.  CI asserts exit code 1 exactly).
- ``2`` — the tool itself is broken: unparseable input, or a
  ``--self-test`` rule that failed to fire / fired on known-good
  source / ignored a suppression (a dead rule).

Findings are keyed ``RULE:path:line`` with root-relative POSIX paths,
so output, suppressions, and the committed baseline
(``tools/fabriclint/baseline.txt``) diff cleanly across machines.
"""

from __future__ import annotations

import argparse
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
TOOLS = os.path.dirname(HERE)
ROOT = os.path.dirname(TOOLS)

if TOOLS not in sys.path:
    sys.path.insert(0, TOOLS)

from fabriclint.engine import (  # noqa: E402 - sys.path bootstrap above
    load_baseline,
    run_paths,
    run_source,
)
from fabriclint.rules import all_rules  # noqa: E402

DEFAULT_PATHS = ("src", "tools", "benchmarks")
DEFAULT_BASELINE = os.path.join(HERE, "baseline.txt")


def self_test() -> int:
    """Prove every registered rule is live (used by CI).

    For each rule: the known-bad source must produce at least one
    finding carrying the rule's own id; the known-good source must be
    clean; a ``disable=<rule>`` suppression on the first bad finding's
    line must silence it.  When all of that holds the self-test
    *passes* — and exits ``1``, because the passing outcome is a
    demonstration of the failing path (a gate that cannot fail gates
    nothing).  A dead or trigger-happy rule exits ``2``.
    """
    rules = all_rules()
    broken: list[str] = []
    for rule in rules:
        bad_path, bad_src = rule.self_test_bad
        good_path, good_src = rule.self_test_good
        bad = run_source([rule], bad_path, bad_src)
        if not bad or any(f.rule != rule.rule_id for f in bad):
            broken.append(
                f"{rule.rule_id}: known-bad source produced "
                f"{[f.key for f in bad]} (expected >=1 {rule.rule_id} finding)"
            )
            continue
        good = run_source([rule], good_path, good_src)
        if good:
            broken.append(
                f"{rule.rule_id}: known-good source produced "
                f"{[f.key for f in good]} (expected none)"
            )
            continue
        # A suppression on the first finding's line must silence it.
        lines = bad_src.splitlines()
        target = bad[0].line - 1
        lines[target] += f"  # fabriclint: disable={rule.rule_id}"
        still = [
            f
            for f in run_source([rule], bad_path, "\n".join(lines) + "\n")
            if f.line == bad[0].line
        ]
        if still:
            broken.append(
                f"{rule.rule_id}: suppression comment did not silence "
                f"{still[0].key}"
            )
            continue
        print(
            f"self-test {rule.rule_id}: fires on known-bad "
            f"({len(bad)} finding(s)), quiet on known-good, suppressible"
        )
    if broken:
        for problem in broken:
            print(f"SELF-TEST BROKEN: {problem}", file=sys.stderr)
        print(
            "\nfabriclint self-test found dead rules — the gate is "
            "vacuous.  Fix the rules before trusting a green run.",
            file=sys.stderr,
        )
        return 2
    print(
        f"\nself-test passed: all {len(rules)} rules can fail "
        "(exiting 1 to demonstrate the failing path — CI asserts this)"
    )
    return 1


def list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.title}")
        print(f"       {rule.rationale}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fabriclint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", default=[],
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", default=ROOT,
        help="repository root paths are resolved against (default: the "
        "checkout containing this tool; tests point it at fixture trees)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help="baseline file of grandfathered RULE:path:line keys",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline (report everything as actionable)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="prove every rule can fail (exits 1 on success by design)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.list_rules:
        return list_rules()

    paths = args.paths or list(DEFAULT_PATHS)
    baseline = (
        set() if args.no_baseline else load_baseline(args.baseline)
    )
    result = run_paths(all_rules(), args.root, paths, baseline=baseline)

    for error in result.parse_errors:
        print(f"PARSE ERROR: {error}", file=sys.stderr)
    for item in result.findings:
        print(item.render())

    if args.write_baseline:
        keys = sorted(
            f.key for f in result.findings + result.baselined
        )
        with open(args.baseline, "w") as fh:
            fh.write(
                "# fabriclint baseline: grandfathered findings "
                "(RULE:path:line).\n"
                "# Shrink this file; never grow it without a review.\n"
            )
            for key in keys:
                fh.write(key + "\n")
        print(f"baseline rewritten: {len(keys)} key(s) -> {args.baseline}")
        return 0

    summary = (
        f"fabriclint: {len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    if result.stale_baseline:
        print(
            "stale baseline entries (fixed — remove them from "
            f"{os.path.relpath(args.baseline, args.root)}):",
        )
        for key in result.stale_baseline:
            print(f"  {key}")
    if result.parse_errors:
        print(summary + f", {len(result.parse_errors)} parse error(s)")
        return 2
    print(summary)
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
