"""Smoke tests: every example script must run clean end-to-end.

Examples are executed in-process (imported as modules and ``main()``
called) so failures surface with real tracebacks and coverage."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart",
    "product_catalog",
    "tamper_detection",
    "update_propagation",
    "paper_evaluation",
]


def _load(name: str):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out  # every example narrates what it does


def test_quickstart_example_asserts_verification(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "ok=True" in out
    assert "ok=False" in out  # the tamper case


def test_paper_evaluation_prints_all_figures(capsys):
    module = _load("paper_evaluation")
    module.main()
    out = capsys.readouterr().out
    for figure in ("Figure 8", "Figure 9", "Figure 10", "Figure 11",
                   "Figure 12", "Figure 13", "Section 4.1", "Section 4.4"):
        assert figure in out


@pytest.mark.socket
@pytest.mark.timeout(120)
def test_socket_deployment_example_runs(capsys):
    """Spawns edge OS processes, so it rides in the socket job."""
    module = _load("socket_deployment")
    module.main()
    out = capsys.readouterr().out
    assert "snapshot heal to cursor parity" in out
    assert "verified: True" in out
